"""Shared fixtures and scale knobs for the benchmark suite.

Each ``bench_*`` module regenerates one table/figure of the paper at a
reduced scale (so the whole suite runs in minutes) and uses pytest-benchmark
to time the heavy step of that experiment.  The printed rows are the ones
EXPERIMENTS.md quotes; run any single figure with e.g.::

    pytest benchmarks/bench_fig12_throughput.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.workload.hap import HAPConfig


#: Default scaled-down HAP instance used by the engine-level figures.
BENCH_ROWS = 65_536
BENCH_BLOCK_VALUES = 1_024
BENCH_OPERATIONS = 1_000


@pytest.fixture(scope="session")
def hap_config() -> HAPConfig:
    """Scaled-down HAP table configuration shared by the benchmarks."""
    return HAPConfig(
        num_rows=BENCH_ROWS, chunk_size=BENCH_ROWS, block_values=BENCH_BLOCK_VALUES
    )
