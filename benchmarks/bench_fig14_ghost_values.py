"""Figure 14 benchmark: insert latency vs ghost-value budget."""

from __future__ import annotations

from repro.bench.experiments import fig14


def test_fig14_ghost_values(benchmark):
    """A larger ghost budget never makes inserts slower (and usually helps)."""
    config = fig14.Figure14Config(
        num_rows=65_536, block_values=1_024, num_operations=1_000,
        ghost_fractions=(0.0001, 0.001, 0.01, 0.1),
    )
    results = benchmark.pedantic(fig14.run, args=(config,), iterations=1, rounds=1)
    print()
    print(fig14.report(results))
    for label, rows in results.items():
        inserts = [row[1] for row in rows]
        assert inserts[-1] <= inserts[0] * 1.1, label
