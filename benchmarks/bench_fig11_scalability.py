"""Figure 11 benchmark: partitioning-decision latency vs data size."""

from __future__ import annotations

from repro.bench.experiments import fig11
from repro.core.chunking import measure_solve_seconds


def test_fig11_scalability(benchmark):
    """Chunking reduces decision latency by orders of magnitude."""
    config = fig11.Figure11Config(
        data_sizes=(10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000),
        chunk_counts=(1, 100, 1_000, 10_000, 100_000),
        calibration_blocks=256,
        measured_max_blocks=1_024,
    )
    results = benchmark.pedantic(fig11.run, args=(config,), iterations=1, rounds=1)
    print()
    print(fig11.report(results))
    rows = results["rows"]
    # At 10^9 values the single-job latency dwarfs the chunked-100000 one.
    last = rows[-1]
    assert last[1] > last[-1] * 1_000


def test_single_chunk_solve_latency(benchmark):
    """Time one DP solve at the paper's chunk granularity (244 blocks)."""
    seconds = benchmark(measure_solve_seconds, 244)
    assert seconds >= 0
