"""Figure 10 reorganization smoke: incremental vs. inline replans.

Two gates on the observation/reorganization spine, emitted together to
``BENCH_fig10_reorg.json`` (uploaded as a CI artifact):

1. **Monitor overhead** -- with a workload monitor attached, the batched
   Fig. 12-style read smoke must regress < 5% vs. monitor-off.  The
   engine's batch-native ``AccessLog`` -> ``observe_batch`` pipeline (one
   vectorized attribution pass per record) replaces what used to be one
   Python ``observe`` call per operation on exactly the hot path the batch
   executor vectorizes.

2. **Incremental reorganization** -- a database planned for an insert-heavy
   phase serves a drifted point-heavy phase in rounds.  Inline
   reorganization (bare ``ReorgPolicy``) replans every drifted chunk inside
   the execute call that trips the check: maximal simulated-cost cut, but
   one batch absorbs the whole stall.  The incremental ``Reorganizer``
   (``chunk_budget=1``) must keep >= ``CUT_KEEP_FRACTION`` of the inline
   cut while its worst per-batch reorganization stall (max simulated
   ``reorg_ns`` over the execute calls) stays <= ``STALL_FRACTION`` of
   inline's.

3. **Concurrent sessions** -- the same drifted phase split across
   ``CONCURRENT_SESSIONS`` reader sessions (one thread each) over one
   database, with a shared *background* ``Reorganizer`` publishing
   copy-on-write replans while they run.  The aggregate read throughput
   must keep >= ``THROUGHPUT_KEEP_FRACTION`` of the single-session
   baseline (same workload, same background reorganizer, one session) --
   i.e. chunk latches plus the O(1) publish may cost at most 10% -- while
   the simulated-cost cut still reaches >= ``CUT_KEEP_FRACTION`` of the
   inline lifecycle's.

Set ``REPRO_BENCH_ROWS`` to scale the monitor-overhead table down on
constrained machines.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.api import Database, Reorganizer, ReorgPolicy, VectorizedPolicy
from repro.storage.layouts import LayoutKind
from repro.workload.generator import WorkloadGenerator, WorkloadMix
from repro.workload.operations import PointQuery, RangeQuery, Workload

OUT_PATH = os.environ.get("REPRO_BENCH_REORG_JSON", "BENCH_fig10_reorg.json")

#: Monitor-overhead gate: batched read smoke, monitored vs. plain.
MONITOR_OVERHEAD_LIMIT = 1.05
MONITOR_REPETITIONS = 7

#: Reorg gates: fraction of the inline simulated-cost cut the incremental
#: lifecycle must keep, and the bound on its worst per-batch stall relative
#: to inline's.
CUT_KEEP_FRACTION = 0.8
STALL_FRACTION = 0.5

#: Concurrent gate: reader sessions sharing the engine with a background
#: reorganizer must keep this fraction of single-session read throughput.
CONCURRENT_SESSIONS = 4
THROUGHPUT_KEEP_FRACTION = 0.9
CONCURRENT_REPETITIONS = 5

_RESULTS: dict[str, dict] = {}


def _flush_results() -> None:
    with open(OUT_PATH, "w") as handle:
        json.dump(_RESULTS, handle, indent=2)


# --------------------------------------------------------------------- #
# Gate 1: monitor overhead on the batched read smoke
# --------------------------------------------------------------------- #


def build_read_workload(num_rows: int, num_ops: int) -> Workload:
    """The Fig. 12 session mix: 1024-point bursts with range-count tails."""
    rng = np.random.default_rng(11)
    keys = np.arange(num_rows, dtype=np.int64) * 2
    domain = num_rows * 2
    operations: list = []
    while len(operations) < num_ops:
        operations.extend(
            PointQuery(key=int(k)) for k in rng.choice(keys, 1_024, replace=True)
        )
        lows = rng.integers(0, domain - 1_100, 128)
        operations.extend(
            RangeQuery(low=int(low), high=int(low) + 1_000) for low in lows
        )
    return Workload(operations=operations[:num_ops], name="fig10 read mix")


def _build_read_database(num_rows: int, *, monitor: bool) -> Database:
    return Database.from_rows(
        np.arange(num_rows, dtype=np.int64) * 2,
        layout=LayoutKind.EQUI,
        partitions=16,
        chunk_size=-(-num_rows // 16),
        block_values=4_096,
        monitor=monitor,
    )


def test_monitor_overhead_on_batched_reads(benchmark):
    """Attached monitor must cost < 5% on the batched read smoke."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    num_rows = int(os.environ.get("REPRO_BENCH_ROWS", 1_048_576))
    num_ops = min(16_384, num_rows // 2)
    oplist = list(build_read_workload(num_rows, num_ops))
    # The workload is read-only, so each database is built once and the
    # timed executes repeat on warm state -- rebuilding a 1M-row table per
    # repetition adds allocator/page-cache noise an order of magnitude
    # larger than the overhead under test.  Repetitions are interleaved so
    # slow drift in machine load (CI runners) hits both configurations
    # alike; best-of-N per configuration.
    plain_db = _build_read_database(num_rows, monitor=False)
    monitored_db = _build_read_database(num_rows, monitor=True)
    plain_seconds = monitored_seconds = float("inf")
    for _ in range(MONITOR_REPETITIONS):
        with plain_db.session(
            execution=VectorizedPolicy(batch_size=1_024)
        ) as session:
            start = time.perf_counter()
            session.execute(oplist)
            plain_seconds = min(plain_seconds, time.perf_counter() - start)
        with monitored_db.session(
            execution=VectorizedPolicy(batch_size=1_024)
        ) as session:
            start = time.perf_counter()
            session.execute(oplist)
            monitored_seconds = min(
                monitored_seconds, time.perf_counter() - start
            )
    overhead = monitored_seconds / plain_seconds
    print(
        f"\nmonitor overhead: {num_ops} batched ops on {num_rows} rows -> "
        f"plain {plain_seconds * 1e3:.1f}ms, monitored "
        f"{monitored_seconds * 1e3:.1f}ms ({overhead:.3f}x)"
    )
    _RESULTS["monitor_overhead"] = {
        "num_rows": num_rows,
        "num_operations": num_ops,
        "plain_ms": plain_seconds * 1e3,
        "monitored_ms": monitored_seconds * 1e3,
        "overhead": overhead,
        "limit": MONITOR_OVERHEAD_LIMIT,
    }
    _flush_results()
    assert overhead < MONITOR_OVERHEAD_LIMIT


# --------------------------------------------------------------------- #
# Gate 2: incremental keeps the cut, bounds the stall
# --------------------------------------------------------------------- #

NUM_ROWS = 16_384
CHUNK_SIZE = 2_048
BLOCK_VALUES = 128
# Long enough that the drifted phase's post-replan tail dominates even
# when 4 concurrent sessions burn through the prefix while the background
# solver is still pricing chunks (the concurrent gate's 0.8x cut floor).
DRIFTED_OPS = 24_000
ROUNDS = 48

INSERT_HEAVY = WorkloadMix(name="insert-heavy", q4_insert=0.9, q1_point=0.1)
# Uniform reads: every chunk's mix flips from insert- to point-heavy at the
# same rate, so the inline policy replans *all* of them in the execute call
# that crosses min_chunk_operations -- the worst-case stall the incremental
# lifecycle exists to bound.
POINT_HEAVY = WorkloadMix(
    name="point-heavy", q1_point=0.97, q2_range_count=0.03
)


def reorg_keys() -> np.ndarray:
    return np.arange(NUM_ROWS, dtype=np.int64) * 2


def planned_db() -> Database:
    training = WorkloadGenerator(
        reorg_keys(), domain_low=0, domain_high=2 * NUM_ROWS - 2, seed=3
    ).generate(INSERT_HEAVY, 2_000)
    return Database.plan_for(
        training, reorg_keys(), chunk_size=CHUNK_SIZE, block_values=BLOCK_VALUES
    )


def reorg_policy() -> ReorgPolicy:
    return ReorgPolicy(drift_threshold=0.25, min_chunk_operations=200)


def run_drifted_phase(reorg):
    """Serve the drifted phase in rounds; returns (report, per-call stalls)."""
    db = planned_db()
    drifted = WorkloadGenerator(
        reorg_keys(), domain_low=0, domain_high=2 * NUM_ROWS - 2, seed=9
    ).generate(POINT_HEAVY, DRIFTED_OPS)
    operations = list(drifted)
    per_round = -(-len(operations) // ROUNDS)
    stalls: list[float] = []
    with db.session(
        execution=VectorizedPolicy(batch_size=256), reorg=reorg
    ) as session:
        for start in range(0, len(operations), per_round):
            outcome = session.execute(operations[start : start + per_round])
            stalls.append(outcome.reorg_ns)
    return session.report(), stalls


def test_incremental_reorg_keeps_cut_and_bounds_stall(benchmark):
    """Incremental must keep the inline cut at a fraction of the stall."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    control_report, _ = run_drifted_phase(None)
    inline_report, inline_stalls = run_drifted_phase(reorg_policy())
    incremental_report, incremental_stalls = run_drifted_phase(
        Reorganizer(reorg_policy(), chunk_budget=1)
    )

    control_s = control_report.simulated_seconds
    inline_cut = control_s - inline_report.simulated_seconds
    incremental_cut = control_s - incremental_report.simulated_seconds
    max_inline_stall = max(inline_stalls)
    max_incremental_stall = max(incremental_stalls)
    print(
        f"\nreorg phase: {DRIFTED_OPS} drifted ops over {ROUNDS} rounds on "
        f"{NUM_ROWS} rows / {NUM_ROWS // CHUNK_SIZE} chunks -> control "
        f"{control_s * 1e3:.2f}ms sim; inline cut {inline_cut * 1e3:.2f}ms "
        f"({inline_report.replans} replans, max stall "
        f"{max_inline_stall * 1e-6:.2f}ms); incremental cut "
        f"{incremental_cut * 1e3:.2f}ms ({incremental_report.replans} "
        f"replans, max stall {max_incremental_stall * 1e-6:.2f}ms)"
    )
    _RESULTS["incremental_reorg"] = {
        "num_rows": NUM_ROWS,
        "num_chunks": NUM_ROWS // CHUNK_SIZE,
        "drifted_operations": DRIFTED_OPS,
        "rounds": ROUNDS,
        "control_simulated_ms": control_s * 1e3,
        "inline_simulated_ms": inline_report.simulated_seconds * 1e3,
        "incremental_simulated_ms": incremental_report.simulated_seconds * 1e3,
        "inline_replans": inline_report.replans,
        "incremental_replans": incremental_report.replans,
        "inline_max_stall_ms": max_inline_stall * 1e-6,
        "incremental_max_stall_ms": max_incremental_stall * 1e-6,
        "cut_keep_fraction_gate": CUT_KEEP_FRACTION,
        "stall_fraction_gate": STALL_FRACTION,
    }
    _flush_results()

    # The inline lifecycle replans several chunks at once, so its worst
    # batch absorbs the whole solver+rebuild stall; budget-1 incremental
    # spreads the same replans across rounds.
    assert inline_report.replans >= 2
    assert incremental_report.replans >= inline_report.replans
    assert inline_cut > 0
    assert incremental_cut >= CUT_KEEP_FRACTION * inline_cut
    assert max_incremental_stall <= STALL_FRACTION * max_inline_stall


# --------------------------------------------------------------------- #
# Gate 3: concurrent reader sessions during background replans
# --------------------------------------------------------------------- #


def run_concurrent_phase(num_sessions: int):
    """Serve the drifted phase with N sessions + a background reorganizer.

    Returns ``(wall_seconds, simulated_seconds, replans)``.  The wall clock
    brackets only the sessions' execute loops (the shared barrier releases
    the threads together); the simulated total is the engine counter
    movement across the whole phase including the close-time drain, the
    same accounting basis as the single-session reports of gate 2.
    """
    db = planned_db()
    drifted = WorkloadGenerator(
        reorg_keys(), domain_low=0, domain_high=2 * NUM_ROWS - 2, seed=9
    ).generate(POINT_HEAVY, DRIFTED_OPS)
    operations = list(drifted)
    per_shard = -(-len(operations) // num_sessions)
    shards = [
        operations[start : start + per_shard]
        for start in range(0, len(operations), per_shard)
    ]
    reorganizer = Reorganizer(reorg_policy(), chunk_budget=1, background=True)
    sessions = [
        db.session(execution=VectorizedPolicy(batch_size=256), reorg=reorganizer)
        for _ in shards
    ]
    rounds = max(1, ROUNDS // num_sessions)
    barrier = threading.Barrier(len(shards) + 1)

    def work(session, operations) -> None:
        per_round = -(-len(operations) // rounds)
        barrier.wait(timeout=60.0)
        for start in range(0, len(operations), per_round):
            session.execute(operations[start : start + per_round])

    threads = [
        threading.Thread(target=work, args=(session, shard))
        for session, shard in zip(sessions, shards)
    ]
    counter_before = db.engine.counter.snapshot()
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60.0)
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300.0)
    wall_seconds = time.perf_counter() - start
    for session in sessions:
        session.close()
    simulated_seconds = (
        db.engine.counter.diff(counter_before).cost(db.constants) * 1e-9
    )
    assert reorganizer.pending_chunks() == []
    assert reorganizer.errors == 0
    return wall_seconds, simulated_seconds, reorganizer.replans


def test_concurrent_sessions_keep_throughput_and_cut(benchmark):
    """4 readers + background reorg: >= 0.9x throughput, >= 0.8x the cut."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    control_report, _ = run_drifted_phase(None)
    inline_report, _ = run_drifted_phase(reorg_policy())
    control_s = control_report.simulated_seconds
    inline_cut = control_s - inline_report.simulated_seconds

    # Best-of-N walls: the gate compares two wall-clock measurements, so
    # take each side's least-noisy repetition on a fresh database.
    single_wall = concurrent_wall = float("inf")
    single_sim = concurrent_sim = float("inf")
    single_replans = concurrent_replans = 0
    for _ in range(CONCURRENT_REPETITIONS):
        wall, sim, replans = run_concurrent_phase(1)
        if wall < single_wall:
            single_wall, single_sim, single_replans = wall, sim, replans
        wall, sim, replans = run_concurrent_phase(CONCURRENT_SESSIONS)
        if wall < concurrent_wall:
            concurrent_wall, concurrent_sim, concurrent_replans = (
                wall,
                sim,
                replans,
            )

    single_throughput = DRIFTED_OPS / single_wall
    concurrent_throughput = DRIFTED_OPS / concurrent_wall
    throughput_keep = concurrent_throughput / single_throughput
    concurrent_cut = control_s - concurrent_sim
    print(
        f"\nconcurrent phase: {DRIFTED_OPS} drifted ops, "
        f"{CONCURRENT_SESSIONS} sessions + background reorg -> single "
        f"session {single_throughput / 1e3:.0f}k ops/s "
        f"({single_replans} replans), concurrent "
        f"{concurrent_throughput / 1e3:.0f}k ops/s "
        f"({concurrent_replans} replans, {throughput_keep:.3f}x kept); "
        f"cut {concurrent_cut * 1e3:.2f}ms vs inline "
        f"{inline_cut * 1e3:.2f}ms"
    )
    _RESULTS["concurrent_reorg"] = {
        "num_rows": NUM_ROWS,
        "drifted_operations": DRIFTED_OPS,
        "sessions": CONCURRENT_SESSIONS,
        "single_session_ops_per_s": single_throughput,
        "concurrent_ops_per_s": concurrent_throughput,
        "throughput_keep": throughput_keep,
        "single_simulated_ms": single_sim * 1e3,
        "concurrent_simulated_ms": concurrent_sim * 1e3,
        "control_simulated_ms": control_s * 1e3,
        "inline_cut_ms": inline_cut * 1e3,
        "concurrent_cut_ms": concurrent_cut * 1e3,
        "single_replans": single_replans,
        "concurrent_replans": concurrent_replans,
        "throughput_keep_gate": THROUGHPUT_KEEP_FRACTION,
        "cut_keep_fraction_gate": CUT_KEEP_FRACTION,
    }
    _flush_results()

    assert concurrent_replans >= 1
    assert inline_cut > 0
    assert concurrent_cut >= CUT_KEEP_FRACTION * inline_cut
    assert throughput_keep >= THROUGHPUT_KEEP_FRACTION


if __name__ == "__main__":
    pytest.main([__file__, "-q", "-s"])
