"""Ablation: solver quality and speed (exact DP vs BIP vs greedy).

DESIGN.md calls out the substitution of Mosek by an exact DP.  This ablation
shows (a) that the DP and the faithful BIP formulation find the same optimum,
(b) what the greedy heuristic loses, and (c) how fast each backend is at the
paper's chunk granularity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.core.dp_solver import solve_dp
from repro.core.bip_solver import solve_bip
from repro.core.greedy_solver import solve_greedy
from repro.core.frequency_model import FrequencyModel
from repro.storage.cost_accounting import constants_for_block_values


def make_cost_model(num_blocks: int, seed: int = 17) -> CostModel:
    rng = np.random.default_rng(seed)
    model = FrequencyModel(num_blocks)
    model.pq[:] = rng.integers(0, 40, num_blocks)
    model.rs[:] = rng.integers(0, 10, num_blocks)
    model.re[:] = rng.integers(0, 10, num_blocks)
    model.sc[:] = rng.integers(0, 20, num_blocks)
    model.ins[:] = rng.integers(0, 40, num_blocks)
    model.de[:] = rng.integers(0, 10, num_blocks)
    return CostModel(model, constants_for_block_values(4_096))


def test_dp_solver_chunk_scale(benchmark):
    """DP solve time at the paper's 1M-value chunk granularity (244 blocks)."""
    cost_model = make_cost_model(244)
    result = benchmark(solve_dp, cost_model)
    assert result.num_partitions >= 1


def test_greedy_solver_chunk_scale(benchmark):
    """Greedy heuristic at the same granularity, for comparison."""
    cost_model = make_cost_model(96)
    result = benchmark.pedantic(solve_greedy, args=(cost_model,), iterations=1, rounds=1)
    optimal = solve_dp(cost_model)
    print(
        f"\ngreedy cost {result.cost:,.0f} vs optimal {optimal.cost:,.0f} "
        f"({result.cost / optimal.cost:.3f}x)"
    )
    assert result.cost >= optimal.cost - 1e-6


def test_bip_solver_small_instance(benchmark):
    """The BIP path (Eq. 20 via HiGHS) matches the DP optimum on small chunks."""
    cost_model = make_cost_model(24)
    result = benchmark.pedantic(solve_bip, args=(cost_model,), iterations=1, rounds=1)
    assert result.cost == pytest.approx(solve_dp(cost_model).cost)
