"""Ablation: sensitivity of the optimal layout to the cost constants.

The RR/SR ratio is fitted per machine (Section 4.5).  This ablation sweeps
the sequential-to-random cost ratio across a realistic range and checks that
the optimizer's layout (and its qualitative shape: fine partitions for read
regions, coarse for write regions) is stable, i.e. the results do not hinge
on one particular calibration.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import CostModel
from repro.core.dp_solver import solve_dp
from repro.core.frequency_model import FrequencyModel
from repro.storage.cost_accounting import CostConstants


def skewed_model(num_blocks: int = 128) -> FrequencyModel:
    model = FrequencyModel(num_blocks)
    # Reads hammer the last quarter of the domain, inserts the first quarter.
    model.pq[3 * num_blocks // 4 :] = 50
    model.ins[: num_blocks // 4] = 50
    return model


def optimal_partitions(seq_to_random_ratio: float) -> int:
    constants = CostConstants(
        random_read=100.0,
        random_write=100.0,
        seq_read=100.0 * seq_to_random_ratio,
        seq_write=100.0 * seq_to_random_ratio,
    )
    result = solve_dp(CostModel(skewed_model(), constants))
    return result.num_partitions


def test_layout_stability_across_constants(benchmark):
    """The read-hot region stays finely partitioned across a 100x ratio sweep."""
    ratios = (0.5, 2.0, 8.0, 32.0)
    counts = benchmark.pedantic(
        lambda: [optimal_partitions(ratio) for ratio in ratios],
        iterations=1,
        rounds=1,
    )
    print(f"\npartition counts across SR/RR ratios {ratios}: {counts}")
    # Every calibration keeps substantial structure (read region needs it)...
    assert all(count >= 8 for count in counts)
    # ...and never explodes into one-partition-per-block everywhere.
    model = skewed_model()
    assert all(count <= model.num_blocks for count in counts)


def test_structure_follows_skew(benchmark):
    """Partitions are finer in the read-hot region than in the insert region."""

    def widths():
        constants = CostConstants(
            random_read=100.0, random_write=100.0, seq_read=800.0, seq_write=800.0
        )
        result = solve_dp(CostModel(skewed_model(), constants))
        ends = result.boundary_blocks
        starts = np.concatenate(([0], ends[:-1]))
        sizes = ends - starts
        mids = (starts + ends) / 2
        read_region = sizes[mids >= 96].mean() if np.any(mids >= 96) else np.inf
        write_region = sizes[mids < 32].mean() if np.any(mids < 32) else np.inf
        return read_region, write_region

    read_width, write_width = benchmark.pedantic(widths, iterations=1, rounds=1)
    print(f"\nmean partition width: read-hot {read_width:.1f} blocks, "
          f"insert-hot {write_width:.1f} blocks")
    assert read_width <= write_width
