"""Section 6.2 benchmark: compression ratios and the partitioning synergy."""

from __future__ import annotations

from repro.bench.experiments import compression


def test_compression_ratios(benchmark):
    """Dictionary/delta compression beats raw storage; partitioning helps FOR."""
    config = compression.CompressionConfig(num_values=131_072)
    results = benchmark.pedantic(compression.run, args=(config,), iterations=1, rounds=1)
    print()
    print(compression.report(results))
    for _name, dict_ratio, _for_ratio, _rle_ratio in results["ratios"]:
        assert dict_ratio > 1.0
    partitioned = dict(results["partitioned_for"])
    assert partitioned[max(partitioned)] >= partitioned[1]
