"""Figure 13 benchmark: per-operation latency drill-down."""

from __future__ import annotations

from repro.bench.experiments import fig13
from repro.storage.layouts import LayoutKind


def test_fig13_latency_drilldown(benchmark):
    """Print the three Fig. 13 panels and check the headline comparisons."""
    config = fig13.Figure13Config(
        num_rows=65_536, block_values=1_024, num_operations=1_000
    )
    results = benchmark.pedantic(fig13.run, args=(config,), iterations=1, rounds=1)
    print()
    print(fig13.report(results))

    hybrid = results["(a) hybrid (Q1, Q4, Q6), skewed"]
    # Casper's inserts are far cheaper than the sorted column's ripples
    # (the paper reports three orders of magnitude vs other layouts).
    assert (
        hybrid[LayoutKind.CASPER].mean_latency_ns["insert"]
        < hybrid[LayoutKind.SORTED].mean_latency_ns["insert"] / 10
    )
    update_only = results["(c) update-only (Q4, Q5, Q6), uniform"]
    assert (
        update_only[LayoutKind.CASPER].throughput_ops
        >= update_only[LayoutKind.SORTED].throughput_ops
    )
