"""Figure 2 benchmark: impact of structure and ghost values."""

from __future__ import annotations

from repro.bench.experiments import fig2


def test_fig2_design_space(benchmark):
    """Time the Fig. 2 sweeps and check the conceptual trends."""
    config = fig2.Figure2Config(num_blocks=128, block_values=512, operations=400)
    results = benchmark.pedantic(fig2.run, args=(config,), iterations=1, rounds=1)
    print()
    print(fig2.report(results))
    structure = results["structure"]
    reads = [row[1] for row in structure]
    writes = [row[2] for row in structure]
    assert reads[0] > reads[-1]            # more partitions -> cheaper reads
    assert writes[0] < writes[-1]          # more partitions -> costlier writes
    ghost = results["ghost_values"]
    assert ghost[0][2] >= ghost[-1][2]     # more ghosts -> cheaper inserts
