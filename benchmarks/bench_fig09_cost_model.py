"""Figure 9 benchmark: cost-model verification (inserts and point queries)."""

from __future__ import annotations

import numpy as np

from repro.bench.experiments import fig9


def test_fig9_cost_model_verification(benchmark):
    """Model-vs-measured ratios stay near 1 and the expected linear trends hold."""
    config = fig9.Figure9Config(
        chunk_values=131_072, block_values=512, insert_partitions=48, pq_partitions=10
    )
    results = benchmark.pedantic(fig9.run, args=(config,), iterations=1, rounds=1)
    print()
    print(fig9.report(results))

    inserts = results["inserts"]
    ratios = [row[3] for row in inserts]
    assert all(0.3 < ratio < 3.0 for ratio in ratios)
    # Insert cost decreases as the target partition moves toward the end
    # (fewer trailing partitions to ripple through).
    measured = [row[1] for row in inserts]
    assert measured[0] > measured[-1]

    point_queries = results["point_queries"]
    ratios = [row[3] for row in point_queries]
    assert all(0.3 < ratio < 3.0 for ratio in ratios)
    # Point-query cost grows with (exponentially growing) partition size.
    measured = np.asarray([row[1] for row in point_queries])
    assert measured[-1] > measured[0]
