"""Figure 15 benchmark: meeting insert SLAs."""

from __future__ import annotations

from repro.bench.experiments import fig15


def test_fig15_insert_sla(benchmark):
    """Tighter insert SLAs reduce insert latency with little throughput loss."""
    config = fig15.Figure15Config(
        num_rows=65_536, block_values=1_024, num_operations=1_000,
        insert_slas_us=(None, 12.5, 7.5, 3.75, 2.0, 1.5),
    )
    rows = benchmark.pedantic(fig15.run, args=(config,), iterations=1, rounds=1)
    print()
    print(fig15.report(rows))
    no_sla = rows[0]
    tightest = rows[-1]
    # The worst-case (p99.9) insert latency drops as the SLA tightens.
    assert tightest[3] <= no_sla[3]
    # The tightest SLA's p99.9 respects the requested bound (1.5us).
    assert tightest[3] <= 1.5 + 0.3
    # Throughput loss stays modest (paper: < 3%; allow slack at small scale).
    assert tightest[5] >= no_sla[5] * 0.7
