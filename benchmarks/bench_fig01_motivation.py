"""Figure 1 benchmark: vanilla column-store vs delta store vs Casper."""

from __future__ import annotations

from repro.bench.experiments import fig1


def test_fig1_motivation(benchmark):
    """Time the full Fig. 1 comparison and print its rows."""
    config = fig1.Figure1Config(num_rows=65_536, block_values=1_024, num_operations=800)
    results = benchmark.pedantic(fig1.run, args=(config,), iterations=1, rounds=1)
    print()
    print(fig1.report(results))
    vanilla, delta, casper = (results[name] for name, _ in fig1.LAYOUTS)
    # The paper's ordering: Casper >= state-of-the-art delta store >> vanilla.
    assert delta.throughput_ops > vanilla.throughput_ops
    assert casper.throughput_ops >= 0.9 * delta.throughput_ops
