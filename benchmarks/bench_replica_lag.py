"""Replica catch-up throughput vs. primary write throughput.

A follower is only useful at *bounded* lag: if it applies the WAL slower
than the primary appends it, lag grows without bound and every read
session drifts arbitrarily stale.  This smoke gates the bound on the
Fig. 12 write-heavy workload (fresh-key insert batches with interleaved
deletes, the same mix the WAL bench ships): catch-up throughput -- write
operations applied per second by a follower tailing the finished log --
must be >= 1.0x the primary's sustained write throughput under
``fsync="os"``.

The follower side has structural slack: it replays pre-encoded bulk
batches through the same vectorized write paths with no WAL append, no
fsync policy and no monitor on its table, so apply-side throughput above
the primary's is the expected shape, not an accident of the machine.
Both sides run in the same process per round and the gate takes the best
per-round ratio, so shared-runner drift that slows both cancels out.

Results land in ``BENCH_replica.json`` before the gate assert (a
regression still leaves the numbers behind for the CI artifact).  Set
``REPRO_BENCH_ROWS`` to scale the table down on constrained machines.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api.database import Database
from repro.durability.manager import DurabilityConfig
from repro.replication import Follower
from repro.workload.operations import MultiDelete, MultiInsert

NUM_BATCHES = 96
BATCH_OPS = 512


def payload_for(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys % 7, (keys * 3) % 11], axis=1)


def build_batches(num_batches: int, batch_ops: int) -> list:
    """Fig. 12 write-heavy mix: fresh-key inserts, every fourth batch
    also deletes a slice of the recently inserted keys."""
    batches = []
    next_key = 1_000_001
    recent: list[int] = []
    for batch_no in range(num_batches):
        fresh = [next_key + 2 * i for i in range(batch_ops)]
        next_key += 2 * batch_ops
        ops = [
            MultiInsert(
                tuple(fresh), tuple(map(tuple, payload_for(fresh).tolist()))
            )
        ]
        if batch_no % 4 == 3 and recent:
            ops.append(MultiDelete(tuple(recent[: batch_ops // 4])))
            recent = recent[batch_ops // 4 :]
        recent.extend(fresh)
        batches.append(ops)
    return batches


def total_write_ops(batches: list) -> int:
    return sum(len(op.keys) for ops in batches for op in ops)


def run_round(num_rows: int) -> tuple[float, float, int]:
    """One round: primary ingest (timed), then a fresh follower catches
    up from the baseline snapshot over the whole log (timed)."""
    with tempfile.TemporaryDirectory(prefix="repro-replica-bench-") as tmp:
        root = Path(tmp)
        keys = np.arange(num_rows, dtype=np.int64) * 2
        db = Database.from_rows(
            keys,
            payload_for(keys),
            chunk_size=max(1, num_rows // 16),
            payload_names=("a", "b"),
            durability=DurabilityConfig(root=root, fsync="os"),
        )
        batches = build_batches(NUM_BATCHES, BATCH_OPS)
        engine = db.engine
        start = time.perf_counter()
        for ops in batches:
            engine.execute_batch(ops)
        primary_seconds = time.perf_counter() - start
        db.close()

        follower = Follower(root)  # offline tail: the whole log is durable
        start = time.perf_counter()
        follower.catch_up()
        catchup_seconds = time.perf_counter() - start
        applied = follower.operations_applied
        assert applied == total_write_ops(batches)
        assert follower.table.num_rows == db.table.num_rows
        return primary_seconds, catchup_seconds, applied


def test_replica_catchup_throughput(benchmark):
    """Follower catch-up stays >= 1.0x the primary's write throughput."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    num_rows = int(os.environ.get("REPRO_BENCH_ROWS", 131_072))

    ratio = 0.0
    best_primary = float("inf")
    best_catchup = float("inf")
    applied = 0
    for _ in range(5):
        primary_seconds, catchup_seconds, applied = run_round(num_rows)
        best_primary = min(best_primary, primary_seconds)
        best_catchup = min(best_catchup, catchup_seconds)
        ratio = max(ratio, primary_seconds / catchup_seconds)
        if ratio >= 1.1:
            break

    primary_ops = applied / best_primary
    catchup_ops = applied / best_catchup
    print(
        f"\nReplica catch-up: {applied} write ops in {NUM_BATCHES} batches "
        f"on {num_rows} rows"
    )
    print(f"  primary ingest   {best_primary * 1e3:8.1f}ms  {primary_ops:12.0f} ops/s")
    print(f"  follower catchup {best_catchup * 1e3:8.1f}ms  {catchup_ops:12.0f} ops/s")
    print(f"  gated best-round ratio: {ratio:.2f}x (gate 1.0x)")

    payload = {
        "rows": num_rows,
        "batches": NUM_BATCHES,
        "write_ops": applied,
        "primary_seconds": best_primary,
        "catchup_seconds": best_catchup,
        "primary_ops_per_s": primary_ops,
        "catchup_ops_per_s": catchup_ops,
        "ratio": ratio,
        "gate": 1.0,
    }
    out_path = os.environ.get("REPRO_BENCH_REPLICA_JSON", "BENCH_replica.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    assert ratio >= 1.0
