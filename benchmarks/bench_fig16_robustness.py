"""Figure 16 benchmark: robustness to workload uncertainty."""

from __future__ import annotations

from repro.bench.experiments import fig16


def test_fig16_robustness(benchmark):
    """Small shifts are absorbed; large rotational shifts hit a cliff."""
    config = fig16.Figure16Config(num_blocks=256, operations=10_000)
    results = benchmark.pedantic(fig16.run, args=(config,), iterations=1, rounds=1)
    print()
    print(fig16.report(results))
    matrix = results["matrix"]
    rotations = list(results["rotational_shifts"])
    zero_mass = matrix[0.0]
    baseline = zero_mass[rotations.index(0.0)]
    small_shift = zero_mass[rotations.index(0.10)]
    large_shift = max(zero_mass)
    assert baseline == 1.0
    # Up to ~10% rotation the penalty is small...
    assert small_shift <= 1.25
    # ...but larger shifts expose a visible penalty (the paper's cliff).
    assert large_shift > small_shift
