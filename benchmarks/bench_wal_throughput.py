"""WAL throughput benchmark: batched durable writes vs. the in-memory path.

The durability design bets that *batch-granular* WAL appends (one framed
record per ``execute_batch``, group-commit fsync) make durable writes
nearly free relative to the in-memory bulk-write fast path.  This smoke
gates that bet: with ``fsync="os"`` (append without fsync, the policy
whose overhead is pure logging), batched write throughput must stay
within 0.9x of the memory-only engine.  The ``"interval"`` and
``"always"`` policies are reported informationally -- ``"always"`` pays
one fsync per batch by design, so it is not gated.

The result trajectory is emitted to ``BENCH_wal.json`` (before the gate
assert, so a regression still leaves the numbers behind for the CI
artifact).  Set ``REPRO_BENCH_ROWS`` to scale the table down on
constrained machines.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api.database import Database
from repro.durability.manager import DurabilityConfig
from repro.workload.operations import MultiDelete, MultiInsert

NUM_BATCHES = 128
BATCH_OPS = 512


def payload_for(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys % 7, (keys * 3) % 11], axis=1)


def build_batches(num_batches: int, batch_ops: int) -> list:
    """Write batches: mostly fresh-key inserts, every fourth also deletes."""
    batches = []
    next_key = 1_000_001
    recent: list[int] = []
    for batch_no in range(num_batches):
        fresh = [next_key + 2 * i for i in range(batch_ops)]
        next_key += 2 * batch_ops
        ops = [
            MultiInsert(
                tuple(fresh), tuple(map(tuple, payload_for(fresh).tolist()))
            )
        ]
        if batch_no % 4 == 3 and recent:
            ops.append(MultiDelete(tuple(recent[:batch_ops // 4])))
            recent = recent[batch_ops // 4:]
        recent.extend(fresh)
        batches.append(ops)
    return batches


def run_once(num_rows: int, durability) -> float:
    """Seconds to push the write batches through one fresh database."""
    keys = np.arange(num_rows, dtype=np.int64) * 2
    db = Database.from_rows(
        keys,
        payload_for(keys),
        chunk_size=max(1, num_rows // 16),
        payload_names=("a", "b"),
        durability=durability,
    )
    batches = build_batches(NUM_BATCHES, BATCH_OPS)
    engine = db.engine
    start = time.perf_counter()
    for ops in batches:
        engine.execute_batch(ops)
    elapsed = time.perf_counter() - start
    # Shutdown (final fsync) is excluded: the gate measures the per-batch
    # append overhead, not the one-off close.
    db.close()
    return elapsed


def best_of(repetitions: int, num_rows: int, make_durability) -> float:
    """Best wall-clock of ``repetitions`` fresh runs (fresh log dir each)."""
    best = float("inf")
    for _ in range(repetitions):
        with tempfile.TemporaryDirectory(prefix="repro-wal-bench-") as tmp:
            best = min(best, run_once(num_rows, make_durability(Path(tmp))))
    return best


def test_wal_append_overhead(benchmark):
    """Durable batched writes (fsync="os") stay >= 0.9x the memory path."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    num_rows = int(os.environ.get("REPRO_BENCH_ROWS", 131_072))
    total_ops = sum(
        sum(len(op.keys) for op in ops) for ops in build_batches(NUM_BATCHES, BATCH_OPS)
    )

    # The true per-batch overhead (~3%) is smaller than the run-to-run
    # drift of a shared CI runner, so the gated pair is measured in
    # *interleaved* (memory, durable) rounds and gated on the best
    # per-round ratio: drift that slows both runs of a round cancels out.
    ratio = 0.0
    memory_seconds = float("inf")
    os_seconds = float("inf")
    for _ in range(5):
        mem = best_of(1, num_rows, lambda root: None)
        dur = best_of(
            1, num_rows, lambda root: DurabilityConfig(root=root, fsync="os")
        )
        memory_seconds = min(memory_seconds, mem)
        os_seconds = min(os_seconds, dur)
        ratio = max(ratio, mem / dur)
        if ratio >= 0.97:
            break
    policies = {"os": os_seconds}
    for policy in ("interval", "always"):
        policies[policy] = best_of(
            3,
            num_rows,
            lambda root, policy=policy: DurabilityConfig(root=root, fsync=policy),
        )

    memory_ops = total_ops / memory_seconds
    print(
        f"\nWAL append overhead: {total_ops} write ops in {NUM_BATCHES} "
        f"batches on {num_rows} rows"
    )
    print(f"  memory-only      {memory_seconds * 1e3:8.1f}ms  {memory_ops:12.0f} ops/s")
    for policy, seconds in policies.items():
        print(
            f"  fsync={policy:<9} {seconds * 1e3:8.1f}ms  "
            f"{total_ops / seconds:12.0f} ops/s  ({memory_seconds / seconds:.2f}x)"
        )
    print(f"  gated best-round ratio (fsync=os): {ratio:.2f}x")

    payload = {
        "rows": num_rows,
        "batches": NUM_BATCHES,
        "write_ops": total_ops,
        "memory_seconds": memory_seconds,
        "durable_seconds": policies,
        "ratio_fsync_os": ratio,
        "gate": 0.9,
    }
    out_path = os.environ.get("REPRO_BENCH_WAL_JSON", "BENCH_wal.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    assert ratio >= 0.9
