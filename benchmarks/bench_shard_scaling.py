"""Shard-scaling benchmark: Fig. 12 mixes at 1/2/4 shards, gated.

Runs the paper's read mix (batched range counts + point lookups) and
write-heavy mix (bulk inserts + deletes) through the sharded dispatcher
at 1, 2 and 4 shards over identical data and operation sequences, and
gates the speedup at 4 shards: **>= 2.5x** on the read mix and
**>= 1.5x** on the write-heavy mix.

The gated metric is the repo's canonical *simulated* throughput
(operations per simulated second, the same block-access cost model every
figure reports): one dispatch round's latency is the **max over shards**
of that shard's tallied :meth:`AccessCounter.cost` -- workers execute a
round concurrently, so the slowest shard is the round.  This measures
what sharding actually changes (per-shard structures shrink, range
batches clip to shard intervals, the fan-out balances) independent of
the runner's core count; wall-clock per mix is reported alongside,
ungated, because CI containers may pin this suite to one core.

Serial-oracle equality is asserted *in the bench*: every shard count's
results are compared against a single-process database replaying the
same sequence (insert row ids excepted -- a documented divergence).

Results land in ``BENCH_shard.json`` before the gate asserts.  Set
``REPRO_BENCH_ROWS`` to scale the table on constrained machines.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.api.database import Database
from repro.storage.cost_accounting import constants_for_block_values
from repro.storage.layouts import LayoutKind
from repro.workload.operations import (
    MultiDelete,
    MultiInsert,
    MultiPointQuery,
    MultiRangeCount,
)

SHARD_COUNTS = (1, 2, 4)
ROUNDS = 10
BATCH = 512
BLOCK_VALUES = 1_024
PARTITIONS = 16
READ_GATE = 2.5
WRITE_GATE = 1.5


def payload_for(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys * 3, keys % 7], axis=1)


def build_mixes(rng, key_domain: int):
    """Identical operation rounds for every shard count and the oracle.

    Read rounds run first so point-query payloads stay comparable; write
    rounds then churn the table with bulk inserts and deletes.
    """
    read_rounds, write_rounds = [], []
    for _ in range(ROUNDS):
        lows = rng.integers(0, key_domain, BATCH)
        widths = rng.integers(1, key_domain // 20, BATCH)
        probes = rng.integers(0, key_domain, BATCH // 2)
        read_rounds.append(
            [
                MultiRangeCount(
                    bounds=tuple(
                        (int(lo), int(lo + w)) for lo, w in zip(lows, widths)
                    )
                ),
                MultiPointQuery(keys=tuple(int(k) for k in probes)),
            ]
        )
        inserts = rng.integers(0, key_domain, BATCH)
        deletes = rng.integers(0, key_domain, BATCH)
        write_rounds.append(
            [
                MultiInsert(
                    keys=tuple(int(k) for k in inserts),
                    payloads=tuple(
                        map(tuple, payload_for(inserts).tolist())
                    ),
                ),
                MultiDelete(keys=tuple(int(k) for k in deletes)),
            ]
        )
    return read_rounds, write_rounds


def ops_in(rounds) -> int:
    return sum(
        len(op.keys) if hasattr(op, "keys") else len(op.bounds)
        for ops in rounds
        for op in ops
    )


def run_sharded(n_shards, keys, payload, read_rounds, write_rounds):
    """One shard count's full run; returns per-mix metrics + results."""
    constants = constants_for_block_values(BLOCK_VALUES)
    database = Database.sharded(
        keys,
        payload,
        n_shards=n_shards,
        partitions=PARTITIONS,
        block_values=BLOCK_VALUES,
        payload_names=["a", "b"],
    )
    out = {}
    try:
        with database.session() as session:
            for mix, rounds in (
                ("read", read_rounds),
                ("write", write_rounds),
            ):
                simulated_ns = 0.0
                start = time.perf_counter()
                results = []
                for ops in rounds:
                    results.append(session.execute(ops).results)
                    # The round runs concurrently across workers: its
                    # simulated latency is the slowest shard's cost.
                    simulated_ns += max(
                        counter.cost(constants)
                        for counter in session.last_shard_accesses.values()
                    )
                wall_s = time.perf_counter() - start
                out[mix] = {
                    "simulated_ns": simulated_ns,
                    "wall_s": wall_s,
                    "throughput_ops": ops_in(rounds)
                    / (simulated_ns / 1e9),
                    "results": results,
                }
    finally:
        database.close()
    return out


def run_oracle(keys, payload, read_rounds, write_rounds):
    """Single-process replay of the same sequence: the equality oracle."""
    database = Database.from_rows(
        keys,
        payload,
        layout=LayoutKind("equi"),
        partitions=PARTITIONS,
        block_values=BLOCK_VALUES,
        payload_names=["a", "b"],
    )
    out = {}
    with database.session() as session:
        for mix, rounds in (("read", read_rounds), ("write", write_rounds)):
            out[mix] = [session.execute(ops).results for ops in rounds]
    return out


def normalize_rows(row_lists):
    return [
        sorted((r.key, tuple(sorted(r.payload.items()))) for r in rows)
        for rows in row_lists
    ]


def assert_oracle_equal(read_rounds, write_rounds, oracle, sharded):
    """Results match the serial oracle exactly (insert row ids excepted)."""
    for mix, rounds in (("read", read_rounds), ("write", write_rounds)):
        for ops, want_round, got_round in zip(
            rounds, oracle[mix], sharded[mix]["results"], strict=True
        ):
            for op, want, got in zip(ops, want_round, got_round, strict=True):
                if isinstance(want, np.ndarray):
                    got = np.asarray(got)
                    if isinstance(op, MultiInsert):
                        # Post-load row ids are a documented divergence.
                        assert got.shape == want.shape
                    else:
                        assert np.array_equal(got, want)
                elif isinstance(want, list):
                    assert normalize_rows(got) == normalize_rows(want)
                else:
                    assert got == want


def test_shard_scaling(benchmark):
    """Read mix >= 2.5x and write mix >= 1.5x at 4 shards vs 1."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    num_rows = int(os.environ.get("REPRO_BENCH_ROWS", 131_072))
    key_domain = num_rows * 2
    rng = np.random.default_rng(42)
    keys = rng.integers(0, key_domain, num_rows).astype(np.int64)
    payload = payload_for(keys)
    read_rounds, write_rounds = build_mixes(rng, key_domain)

    oracle = run_oracle(keys, payload, read_rounds, write_rounds)
    runs = {}
    for n_shards in SHARD_COUNTS:
        runs[n_shards] = run_sharded(
            n_shards, keys, payload, read_rounds, write_rounds
        )
        assert_oracle_equal(read_rounds, write_rounds, oracle, runs[n_shards])

    print(f"\nShard scaling on {num_rows} rows, {ROUNDS} rounds of {BATCH}")
    speedups = {}
    for mix, gate in (("read", READ_GATE), ("write", WRITE_GATE)):
        base = runs[1][mix]["throughput_ops"]
        speedups[mix] = {
            n: runs[n][mix]["throughput_ops"] / base for n in SHARD_COUNTS
        }
        for n in SHARD_COUNTS:
            metrics = runs[n][mix]
            print(
                f"  {mix:5s} x{n}: {metrics['throughput_ops']:14.0f} ops/s "
                f"(simulated)  {metrics['wall_s'] * 1e3:7.1f}ms wall  "
                f"speedup {speedups[mix][n]:.2f}x"
            )
        print(f"  {mix:5s} gate at 4 shards: {gate}x")

    payload_json = {
        "rows": num_rows,
        "rounds": ROUNDS,
        "batch": BATCH,
        "shard_counts": list(SHARD_COUNTS),
        "oracle_equal": True,
        "mixes": {
            mix: {
                str(n): {
                    "throughput_ops": runs[n][mix]["throughput_ops"],
                    "simulated_ns": runs[n][mix]["simulated_ns"],
                    "wall_s": runs[n][mix]["wall_s"],
                    "speedup": speedups[mix][n],
                }
                for n in SHARD_COUNTS
            }
            for mix in ("read", "write")
        },
        "gates": {"read": READ_GATE, "write": WRITE_GATE},
    }
    out_path = os.environ.get("REPRO_BENCH_SHARD_JSON", "BENCH_shard.json")
    with open(out_path, "w") as handle:
        json.dump(payload_json, handle, indent=2)

    assert speedups["read"][4] >= READ_GATE
    assert speedups["write"][4] >= WRITE_GATE
