"""Figure 12 benchmark: normalized throughput across six workloads and layouts.

Also includes two fast-path smoke checks on a 1M-row, 16-chunk table:

* batched point queries must beat per-operation dispatch by >= 3x wall-clock
  (the PR-1 read fast path), and
* a write-heavy Fig. 12-style workload (50% insert/delete, recent-skewed,
  ``batch_size=256``) must beat per-operation dispatch by >= 3x wall-clock on
  the bulk-write fast path, with the result trajectory emitted to
  ``BENCH_fig12_writes.json``.

CI runs both at full scale (the table builds in well under a second); set
``REPRO_BENCH_ROWS`` to scale the table down on constrained machines.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.bench.experiments import fig12
from repro.bench.harness import run_workload
from repro.storage.engine import StorageEngine
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import Table, layout_chunk_builder
from repro.workload.operations import (
    Delete,
    Insert,
    PointQuery,
    RangeQuery,
    Workload,
)


@pytest.fixture(scope="module")
def results():
    config = fig12.Figure12Config(
        num_rows=65_536, block_values=1_024, num_operations=1_000
    )
    return fig12.run(config)


def test_fig12_normalized_throughput(benchmark, results):
    """Print the Fig. 12 matrix and check the headline orderings."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(fig12.report(results))

    def norm(profile, layout):
        return results[profile]["normalized"][layout]

    # Hybrid and update-intensive workloads: Casper matches or beats the
    # state-of-the-art delta store (paper: 1.75x-2.32x).
    for profile in ("hybrid_skewed", "hybrid_range_skewed", "update_only_skewed",
                    "update_only_uniform"):
        assert norm(profile, LayoutKind.CASPER) >= 0.95

    # Casper always beats the unsorted baseline by a wide margin.
    for profile in results:
        assert norm(profile, LayoutKind.CASPER) > norm(profile, LayoutKind.NO_ORDER)

    # Read-only workloads: Casper is competitive with the state of the art
    # (paper: within ~5% for skewed reads, better for uniform reads).
    assert norm("read_only_uniform", LayoutKind.CASPER) >= 0.9


def test_fig12_batch_point_query_speedup(benchmark):
    """Batched point queries beat per-op dispatch >= 3x on a 16-chunk table."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    num_rows = int(os.environ.get("REPRO_BENCH_ROWS", 1_048_576))
    num_chunks = 16
    num_queries = 4_096
    block_values = 4_096
    keys = np.arange(num_rows, dtype=np.int64) * 2
    spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=16, block_values=block_values)
    chunk_size = -(-num_rows // num_chunks)  # ceil: at most num_chunks chunks
    table = Table(
        keys,
        chunk_size=chunk_size,
        chunk_builder=layout_chunk_builder(spec),
        block_values=block_values,
    )
    if num_rows % num_chunks == 0:
        assert table.num_chunks == num_chunks
    num_chunks = table.num_chunks
    rng = np.random.default_rng(11)
    query_keys = rng.choice(keys, size=num_queries, replace=True)
    operations = [PointQuery(key=int(key)) for key in query_keys]

    # Best of three repetitions per mode, so a scheduler hiccup on a shared
    # CI runner cannot flip the ratio below the gate.
    sequential_engine = StorageEngine(table)
    sequential_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        sequential_results = [
            sequential_engine.execute(operation).result for operation in operations
        ]
        sequential_seconds = min(sequential_seconds, time.perf_counter() - start)

    batch_engine = StorageEngine(table)
    batch_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batch = batch_engine.execute_batch(operations)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    assert batch.results == sequential_results
    speedup = sequential_seconds / batch_seconds
    print(
        f"\nbatch point-query fast path: {num_queries} ops on "
        f"{num_rows} rows / {num_chunks} chunks -> per-op "
        f"{sequential_seconds * 1e3:.1f}ms, batch {batch_seconds * 1e3:.1f}ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 3.0


def test_fig12_write_heavy_batch_speedup(benchmark):
    """Bulk-write fast path: a write-heavy Fig. 12-style workload (50%
    insert/delete, recent-skewed like the paper's hybrid profiles) at 1M rows
    and ``batch_size=256`` beats per-op dispatch >= 3x wall-clock."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    num_rows = int(os.environ.get("REPRO_BENCH_ROWS", 1_048_576))
    num_chunks = 16
    batch_size = 256
    # Scale the op count down with the table: each op quarter samples the
    # hot-key pool (1/8th of the rows) without replacement, so it can never
    # exceed that pool on REPRO_BENCH_ROWS-shrunk runs.
    quarter = min(1_024, num_rows // 8)
    num_ops = quarter * 4
    block_values = 4_096
    keys = np.arange(num_rows, dtype=np.int64) * 2
    spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=16, block_values=block_values)
    chunk_size = -(-num_rows // num_chunks)

    def build_engine() -> StorageEngine:
        return StorageEngine(
            Table(
                keys,
                chunk_size=chunk_size,
                chunk_builder=layout_chunk_builder(spec),
                block_values=block_values,
            )
        )

    # Phased write-heavy mix (one op kind per batch_size slice): 25% inserts
    # of fresh odd keys, 25% deletes of loaded keys, 25% point reads, 25%
    # range counts, all recent-skewed onto the top 1/8th of the key domain.
    rng = np.random.default_rng(11)
    domain = num_rows * 2
    hot_low = (domain * 7) // 8
    hot_keys = keys[keys >= hot_low]
    fresh = (hot_low | 1) + 2 * rng.choice(
        (domain - hot_low) // 2, quarter, replace=False
    )
    victims = rng.choice(hot_keys, quarter, replace=False)
    reads = rng.choice(hot_keys, quarter, replace=True)
    range_width = min(1_000, (domain - hot_low) // 4)
    lows = rng.integers(hot_low, domain - range_width - 1, quarter)
    operations: list = []
    cursor = 0
    while cursor < quarter:
        stop = cursor + batch_size
        operations.extend(Insert(key=int(k)) for k in fresh[cursor:stop])
        operations.extend(PointQuery(key=int(k)) for k in reads[cursor:stop])
        operations.extend(Delete(key=int(k)) for k in victims[cursor:stop])
        operations.extend(
            RangeQuery(low=int(low), high=int(low) + range_width)
            for low in lows[cursor:stop]
        )
        cursor = stop
    workload = Workload(operations=operations, name="fig12 write-heavy")

    # Writes mutate the table, so every repetition gets a fresh build; the
    # best of three keeps a shared-runner hiccup from flipping the gate.
    sequential_seconds = float("inf")
    for _ in range(3):
        sequential_engine = build_engine()
        start = time.perf_counter()
        sequential_result = run_workload(sequential_engine, workload)
        sequential_seconds = min(sequential_seconds, time.perf_counter() - start)
    batch_seconds = float("inf")
    for _ in range(3):
        batch_engine = build_engine()
        start = time.perf_counter()
        batch_result = run_workload(batch_engine, workload, batch_size=batch_size)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    assert sequential_result.errors == 0
    assert batch_result.errors == 0
    assert np.array_equal(
        np.sort(sequential_engine.table.keys()),
        np.sort(batch_engine.table.keys()),
    )
    batch_engine.table.check_invariants()
    speedup = sequential_seconds / batch_seconds
    print(
        f"\nbulk-write fast path: {num_ops} ops (50% insert/delete) on "
        f"{num_rows} rows / {num_chunks} chunks -> per-op "
        f"{sequential_seconds * 1e3:.1f}ms, batch {batch_seconds * 1e3:.1f}ms "
        f"({speedup:.1f}x)"
    )
    payload = {
        "experiment": "fig12_write_heavy_batch",
        "num_rows": num_rows,
        "num_chunks": num_chunks,
        "num_operations": num_ops,
        "write_fraction": 0.5,
        "batch_size": batch_size,
        "sequential_ms": sequential_seconds * 1e3,
        "batch_ms": batch_seconds * 1e3,
        "speedup": speedup,
    }
    out_path = os.environ.get("REPRO_BENCH_WRITES_JSON", "BENCH_fig12_writes.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    assert speedup >= 3.0
