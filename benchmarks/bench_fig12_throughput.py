"""Figure 12 benchmark: normalized throughput across six workloads and layouts.

Also includes the routing fast-path smoke check: batched point queries on a
1M-row, 16-chunk table must beat per-operation dispatch by >= 3x wall-clock.
CI runs it at full scale (the table builds in about a second); set
``REPRO_BENCH_ROWS`` to scale the table down on constrained machines.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench.experiments import fig12
from repro.storage.engine import StorageEngine
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import Table, layout_chunk_builder
from repro.workload.operations import PointQuery


@pytest.fixture(scope="module")
def results():
    config = fig12.Figure12Config(
        num_rows=65_536, block_values=1_024, num_operations=1_000
    )
    return fig12.run(config)


def test_fig12_normalized_throughput(benchmark, results):
    """Print the Fig. 12 matrix and check the headline orderings."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(fig12.report(results))

    def norm(profile, layout):
        return results[profile]["normalized"][layout]

    # Hybrid and update-intensive workloads: Casper matches or beats the
    # state-of-the-art delta store (paper: 1.75x-2.32x).
    for profile in ("hybrid_skewed", "hybrid_range_skewed", "update_only_skewed",
                    "update_only_uniform"):
        assert norm(profile, LayoutKind.CASPER) >= 0.95

    # Casper always beats the unsorted baseline by a wide margin.
    for profile in results:
        assert norm(profile, LayoutKind.CASPER) > norm(profile, LayoutKind.NO_ORDER)

    # Read-only workloads: Casper is competitive with the state of the art
    # (paper: within ~5% for skewed reads, better for uniform reads).
    assert norm("read_only_uniform", LayoutKind.CASPER) >= 0.9


def test_fig12_batch_point_query_speedup(benchmark):
    """Batched point queries beat per-op dispatch >= 3x on a 16-chunk table."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    num_rows = int(os.environ.get("REPRO_BENCH_ROWS", 1_048_576))
    num_chunks = 16
    num_queries = 4_096
    block_values = 4_096
    keys = np.arange(num_rows, dtype=np.int64) * 2
    spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=16, block_values=block_values)
    chunk_size = -(-num_rows // num_chunks)  # ceil: at most num_chunks chunks
    table = Table(
        keys,
        chunk_size=chunk_size,
        chunk_builder=layout_chunk_builder(spec),
        block_values=block_values,
    )
    if num_rows % num_chunks == 0:
        assert table.num_chunks == num_chunks
    num_chunks = table.num_chunks
    rng = np.random.default_rng(11)
    query_keys = rng.choice(keys, size=num_queries, replace=True)
    operations = [PointQuery(key=int(key)) for key in query_keys]

    # Best of three repetitions per mode, so a scheduler hiccup on a shared
    # CI runner cannot flip the ratio below the gate.
    sequential_engine = StorageEngine(table)
    sequential_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        sequential_results = [
            sequential_engine.execute(operation).result for operation in operations
        ]
        sequential_seconds = min(sequential_seconds, time.perf_counter() - start)

    batch_engine = StorageEngine(table)
    batch_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batch = batch_engine.execute_batch(operations)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    assert batch.results == sequential_results
    speedup = sequential_seconds / batch_seconds
    print(
        f"\nbatch point-query fast path: {num_queries} ops on "
        f"{num_rows} rows / {num_chunks} chunks -> per-op "
        f"{sequential_seconds * 1e3:.1f}ms, batch {batch_seconds * 1e3:.1f}ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 3.0
