"""Figure 12 benchmark: normalized throughput across six workloads and layouts."""

from __future__ import annotations

import pytest

from repro.bench.experiments import fig12
from repro.storage.layouts import LayoutKind


@pytest.fixture(scope="module")
def results():
    config = fig12.Figure12Config(
        num_rows=65_536, block_values=1_024, num_operations=1_000
    )
    return fig12.run(config)


def test_fig12_normalized_throughput(benchmark, results):
    """Print the Fig. 12 matrix and check the headline orderings."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(fig12.report(results))

    def norm(profile, layout):
        return results[profile]["normalized"][layout]

    # Hybrid and update-intensive workloads: Casper matches or beats the
    # state-of-the-art delta store (paper: 1.75x-2.32x).
    for profile in ("hybrid_skewed", "hybrid_range_skewed", "update_only_skewed",
                    "update_only_uniform"):
        assert norm(profile, LayoutKind.CASPER) >= 0.95

    # Casper always beats the unsorted baseline by a wide margin.
    for profile in results:
        assert norm(profile, LayoutKind.CASPER) > norm(profile, LayoutKind.NO_ORDER)

    # Read-only workloads: Casper is competitive with the state of the art
    # (paper: within ~5% for skewed reads, better for uniform reads).
    assert norm("read_only_uniform", LayoutKind.CASPER) >= 0.9
