"""Figure 12 session-API smoke: adaptive batching vs. fixed batch sizes.

Drives the ``Database``/``Session`` façade end-to-end on a 1M-row, 16-chunk
table with a read-mostly Fig. 12-style workload (point-query runs, range
counts and a trickle of key updates -- the operation classes whose batched
dispatch is *exactly* access-count equivalent to serial execution):

* every policy (serial, fixed ``VectorizedPolicy`` sizes, ``AdaptivePolicy``)
  must return identical results and identical simulated access counts, and
* ``AdaptivePolicy`` must reach >= 0.9x the wall-clock throughput of the
  best fixed batch size, without being told what that size is.

A second phase mixes insert/delete runs into the read bursts -- now that
observation is batch-native it no longer compounds the sorted-view cache
thrash the writes cause -- asserting result equivalence between serial and
vectorized dispatch and recording the read-only vs. mixed speedup gap.

The measured trajectory is emitted to ``BENCH_fig12_session.json`` (uploaded
as a CI artifact).  Set ``REPRO_BENCH_ROWS`` to scale the table down on
constrained machines.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter

import numpy as np

from repro.api import AdaptivePolicy, Database, SerialPolicy, VectorizedPolicy
from repro.storage.layouts import LayoutKind
from repro.workload.operations import (
    Delete,
    Insert,
    PointQuery,
    RangeQuery,
    Update,
    Workload,
)

FIXED_BATCH_SIZES = (64, 256, 1_024)
REPETITIONS = 3

OUT_PATH = os.environ.get(
    "REPRO_BENCH_SESSION_JSON", "BENCH_fig12_session.json"
)

_RESULTS: dict[str, dict] = {}


def _flush_results() -> None:
    with open(OUT_PATH, "w") as handle:
        json.dump(_RESULTS, handle, indent=2)


def build_database(num_rows: int, num_chunks: int, block_values: int) -> Database:
    keys = np.arange(num_rows, dtype=np.int64) * 2
    return Database.from_rows(
        keys,
        layout=LayoutKind.EQUI,
        partitions=16,
        chunk_size=-(-num_rows // num_chunks),
        block_values=block_values,
    )


def build_workload(num_rows: int, num_ops: int) -> Workload:
    """Read-mostly Fig. 12 mix in bursts: 1024 Q1 then 128 Q2, repeating.

    Long read bursts (a dashboard refresh, a report) are the case batched
    dispatch exists for, and they make the *batch size* matter: a 64-op
    slice truncates every burst 16-fold while a 1024-op slice rides it
    whole, which is the spread the adaptive policy has to navigate.  The
    timed workload is read-only on purpose: interleaving writes at odd
    cadence invalidates the per-partition sorted-view cache between batches,
    which measures cache-thrash rather than batching (the write fast path
    has its own gate in ``bench_fig12_throughput.py``).  Read batches are
    exactly access-count equivalent to serial dispatch, so the smoke can
    assert full counter equality across every policy.
    """
    rng = np.random.default_rng(11)
    keys = np.arange(num_rows, dtype=np.int64) * 2
    domain = num_rows * 2
    operations: list = []
    while len(operations) < num_ops:
        operations.extend(
            PointQuery(key=int(k))
            for k in rng.choice(keys, 1_024, replace=True)
        )
        lows = rng.integers(0, domain - 1_100, 128)
        operations.extend(
            RangeQuery(low=int(low), high=int(low) + 1_000) for low in lows
        )
    return Workload(operations=operations[:num_ops], name="fig12 session mix")


def timed_run(policy_factory, database_factory, workload):
    """Best-of-N wall seconds; returns (seconds, results, counter, policy)."""
    best = float("inf")
    results = counter = policy = None
    for _ in range(REPETITIONS):
        database = database_factory()
        policy = policy_factory()
        session = database.session(execution=policy)
        start = time.perf_counter()
        outcome = session.execute(list(workload))
        elapsed = time.perf_counter() - start
        session.close()
        if elapsed < best:
            best = elapsed
        results = outcome.results
        counter = database.engine.counter.snapshot()
    return best, results, counter, policy


def test_fig12_session_adaptive_vs_fixed(benchmark):
    """Session façade: adaptive batching >= 0.9x the best fixed size."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    num_rows = int(os.environ.get("REPRO_BENCH_ROWS", 1_048_576))
    num_chunks = 16
    block_values = 4_096
    # Enough operations that the adaptive policy's exploration slices
    # (growing 128 -> 256 -> 512 -> ... before settling) amortize to a few
    # percent of the run; at 8K ops they are ~12%, which eats straight into
    # the 0.9x gate's margin on a noisy runner.
    num_ops = min(16_384, num_rows // 2)
    workload = build_workload(num_rows, num_ops)

    def database_factory():
        return build_database(num_rows, num_chunks, block_values)

    # Untimed preamble: a session mixing all five operation kinds -- update
    # runs included -- stays exactly result/access-count equivalent between
    # serial and adaptive dispatch.
    rng = np.random.default_rng(7)
    mixed = list(build_workload(num_rows, 512))
    mixed[64:64] = [
        Update(old_key=int(2 * src), new_key=int(2 * src) + 1)
        for src in rng.choice(num_rows, 16, replace=False)
    ]
    db_serial, db_adaptive = database_factory(), database_factory()
    serial_mixed = SerialPolicy().execute(db_serial.engine, mixed)
    adaptive_mixed = AdaptivePolicy(initial_batch_size=64).execute(
        db_adaptive.engine, mixed
    )
    assert adaptive_mixed.results == serial_mixed.results
    assert (
        db_adaptive.engine.counter.snapshot()
        == db_serial.engine.counter.snapshot()
    )

    serial_seconds, serial_results, serial_counter, _ = timed_run(
        SerialPolicy, database_factory, workload
    )

    fixed: dict[int, float] = {}
    for batch_size in FIXED_BATCH_SIZES:
        seconds, results, counter, _ = timed_run(
            lambda batch_size=batch_size: VectorizedPolicy(
                batch_size=batch_size
            ),
            database_factory,
            workload,
        )
        assert results == serial_results
        assert counter == serial_counter
        fixed[batch_size] = seconds

    adaptive_seconds, results, counter, adaptive_policy = timed_run(
        lambda: AdaptivePolicy(
            initial_batch_size=128, min_batch_size=32, max_batch_size=2_048
        ),
        database_factory,
        workload,
    )
    assert results == serial_results
    assert counter == serial_counter

    best_size, best_seconds = min(fixed.items(), key=lambda item: item[1])
    ratio = best_seconds / adaptive_seconds
    chosen = Counter(adaptive_policy.chosen_batch_sizes)
    print(
        f"\nsession fast path: {num_ops} ops on {num_rows} rows / "
        f"{num_chunks} chunks -> serial {serial_seconds * 1e3:.1f}ms, "
        + ", ".join(
            f"fixed[{size}] {seconds * 1e3:.1f}ms"
            for size, seconds in sorted(fixed.items())
        )
        + f", adaptive {adaptive_seconds * 1e3:.1f}ms "
        f"({ratio:.2f}x of best fixed[{best_size}]; "
        f"sizes {dict(sorted(chosen.items()))})"
    )
    _RESULTS["fig12_session_adaptive"] = {
        "num_rows": num_rows,
        "num_chunks": num_chunks,
        "num_operations": num_ops,
        "serial_ms": serial_seconds * 1e3,
        "fixed_ms": {str(size): seconds * 1e3 for size, seconds in fixed.items()},
        "best_fixed_batch_size": best_size,
        "adaptive_ms": adaptive_seconds * 1e3,
        "adaptive_vs_best_fixed": ratio,
        "adaptive_batch_sizes": dict(
            sorted((str(size), count) for size, count in chosen.items())
        ),
    }
    _flush_results()
    # The adaptive policy must compete with the best fixed size without
    # being told what it is (and must beat serial dispatch outright).
    assert adaptive_seconds < serial_seconds
    assert ratio >= 0.9


def build_mixed_workload(num_rows: int, num_ops: int) -> Workload:
    """Read bursts interleaved with insert/delete runs (the mixed phase).

    Each round is a 512-op point burst, a 64-row insert run of fresh odd
    keys, a 128-op range-count burst and a 64-row delete run removing the
    keys inserted two rounds earlier.  Inserted (and deleted) keys are
    unique in the table, so batched delete runs return exactly the serial
    results (the ascending-replay caveat of ``execute_batch`` only bites
    duplicate keys); simulated write charges may coalesce below serial's,
    so the mixed phase asserts result equivalence and records wall-clock,
    without the read-phase counter-equality gate.
    """
    rng = np.random.default_rng(23)
    keys = np.arange(num_rows, dtype=np.int64) * 2
    domain = num_rows * 2
    operations: list = []
    fresh = iter(range(1, 2 * num_ops, 2))  # odd keys: never in the table
    pending: list[list[int]] = []
    while len(operations) < num_ops:
        operations.extend(
            PointQuery(key=int(k)) for k in rng.choice(keys, 512, replace=True)
        )
        batch = [next(fresh) for _ in range(64)]
        operations.extend(Insert(key=key) for key in batch)
        pending.append(batch)
        lows = rng.integers(0, domain - 1_100, 128)
        operations.extend(
            RangeQuery(low=int(low), high=int(low) + 1_000) for low in lows
        )
        if len(pending) > 2:
            operations.extend(Delete(key=key) for key in pending.pop(0))
    return Workload(operations=operations[:num_ops], name="fig12 mixed mix")


def test_fig12_session_mixed_read_write_phase(benchmark):
    """Mixed phase: vectorized == serial results, speedup gap recorded."""
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    num_rows = int(os.environ.get("REPRO_BENCH_ROWS", 1_048_576))
    num_chunks = 16
    block_values = 4_096
    num_ops = min(16_384, num_rows // 2)
    read_only = build_workload(num_rows, num_ops)
    mixed = build_mixed_workload(num_rows, num_ops)

    def database_factory():
        return build_database(num_rows, num_chunks, block_values)

    serial_mixed_s, serial_mixed_results, _, _ = timed_run(
        SerialPolicy, database_factory, mixed
    )
    vector_mixed_s, vector_mixed_results, _, _ = timed_run(
        lambda: VectorizedPolicy(batch_size=256), database_factory, mixed
    )
    # Dispatch strategy must stay invisible to results even when write runs
    # interleave with the read bursts.
    assert vector_mixed_results == serial_mixed_results

    serial_read_s, _, _, _ = timed_run(SerialPolicy, database_factory, read_only)
    vector_read_s, _, _, _ = timed_run(
        lambda: VectorizedPolicy(batch_size=256), database_factory, read_only
    )
    read_speedup = serial_read_s / vector_read_s
    mixed_speedup = serial_mixed_s / vector_mixed_s
    print(
        f"\nmixed phase: {num_ops} ops on {num_rows} rows -> read-only "
        f"speedup {read_speedup:.2f}x (serial {serial_read_s * 1e3:.1f}ms), "
        f"mixed speedup {mixed_speedup:.2f}x (serial "
        f"{serial_mixed_s * 1e3:.1f}ms, vectorized "
        f"{vector_mixed_s * 1e3:.1f}ms); gap "
        f"{read_speedup / mixed_speedup:.2f}x"
    )
    _RESULTS["fig12_session_mixed"] = {
        "num_rows": num_rows,
        "num_operations": num_ops,
        "serial_read_only_ms": serial_read_s * 1e3,
        "vectorized_read_only_ms": vector_read_s * 1e3,
        "serial_mixed_ms": serial_mixed_s * 1e3,
        "vectorized_mixed_ms": vector_mixed_s * 1e3,
        "read_only_speedup": read_speedup,
        "mixed_speedup": mixed_speedup,
        "read_only_vs_mixed_gap": read_speedup / mixed_speedup,
    }
    _flush_results()
    # Batched dispatch must still win outright on the mixed phase (the
    # sorted-view cache thrash narrows the gap; it must not erase it).
    assert mixed_speedup > 1.0
