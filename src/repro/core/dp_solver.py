"""Exact dynamic-programming solver for the column-layout problem.

The paper formulates layout selection as a binary integer program (Eq. 19/20)
and solves it with Mosek.  The objective, however, decomposes cleanly:

* the ``bck``/``fwd`` terms only depend on the partition a block belongs to
  (they are the distances to the partition's first/last block), and
* the ``parts`` term can be re-written as a sum over *boundaries*:
  ``sum_i parts_i * trail_parts(i) = sum_{boundaries b} prefix_parts(b)``
  where ``prefix_parts(b) = sum_{i<=b} parts_i``.

Hence the total cost is ``sum(fixed) + sum over partitions [a..b] of
intra(a, b) + prefix_parts(b)`` and an interval dynamic program over the
position of the last boundary finds the *provably optimal* partitioning in
O(N^2) (O(N^2 * K) when the number of partitions is capped by an update SLA).
This replaces the off-the-shelf BIP solver without changing the problem; the
BIP path is kept in :mod:`repro.core.bip_solver` for cross-validation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .cost_model import CostModel, validate_partitioning


@dataclass(frozen=True)
class PartitioningResult:
    """Solution of one chunk's layout problem."""

    vector: np.ndarray
    cost: float
    solver: str
    solve_seconds: float

    @property
    def num_partitions(self) -> int:
        """Number of partitions in the solution."""
        return int(np.count_nonzero(self.vector))

    @property
    def boundary_blocks(self) -> np.ndarray:
        """Exclusive block end offsets of every partition."""
        return np.nonzero(self.vector)[0] + 1

    def partition_widths(self) -> np.ndarray:
        """Width (in blocks) of every partition."""
        ends = self.boundary_blocks
        starts = np.concatenate(([0], ends[:-1]))
        return ends - starts


class _IntraCost:
    """O(1) intra-partition cost queries via prefix sums."""

    def __init__(self, bck: np.ndarray, fwd: np.ndarray) -> None:
        n = bck.shape[0]
        indices = np.arange(n, dtype=np.float64)
        self.bck_prefix = np.concatenate(([0.0], np.cumsum(bck)))
        self.fwd_prefix = np.concatenate(([0.0], np.cumsum(fwd)))
        self.bck_weighted = np.concatenate(([0.0], np.cumsum(bck * indices)))
        self.fwd_weighted = np.concatenate(([0.0], np.cumsum(fwd * indices)))

    def cost(self, starts: np.ndarray, end: int) -> np.ndarray:
        """Intra cost of partitions ``[start .. end]`` for a vector of starts."""
        starts = np.asarray(starts)
        hi = end + 1
        bck_sum = self.bck_prefix[hi] - self.bck_prefix[starts]
        bck_weighted = self.bck_weighted[hi] - self.bck_weighted[starts]
        fwd_sum = self.fwd_prefix[hi] - self.fwd_prefix[starts]
        fwd_weighted = self.fwd_weighted[hi] - self.fwd_weighted[starts]
        return (
            (bck_weighted - starts * bck_sum)
            + (end * fwd_sum - fwd_weighted)
        )


def solve_dp(
    cost_model: CostModel,
    *,
    max_partition_blocks: int | None = None,
    max_partitions: int | None = None,
) -> PartitioningResult:
    """Find the optimal partitioning for ``cost_model``.

    Parameters
    ----------
    max_partition_blocks:
        Read-SLA constraint (Eq. 21): no partition may span more blocks.
    max_partitions:
        Update-SLA constraint (Eq. 21): at most this many partitions.
    """
    start_time = time.perf_counter()
    terms = cost_model.terms
    n = cost_model.num_blocks
    if max_partition_blocks is not None and max_partition_blocks < 1:
        raise ValueError("max_partition_blocks must be at least 1")
    if max_partitions is not None and max_partitions < 1:
        raise ValueError("max_partitions must be at least 1")
    if max_partition_blocks is not None and max_partitions is not None:
        if max_partition_blocks * max_partitions < n:
            raise ValueError(
                "infeasible constraints: max_partitions * max_partition_blocks "
                "cannot cover the chunk"
            )

    width_cap = max_partition_blocks if max_partition_blocks is not None else n
    prefix_parts = np.cumsum(terms.parts)
    intra = _IntraCost(terms.bck, terms.fwd)

    if max_partitions is None:
        vector, variable_cost = _solve_unbounded(n, width_cap, prefix_parts, intra)
    else:
        vector, variable_cost = _solve_bounded(
            n, width_cap, int(max_partitions), prefix_parts, intra
        )

    total = float(terms.fixed.sum() + variable_cost)
    elapsed = time.perf_counter() - start_time
    return PartitioningResult(
        vector=vector, cost=total, solver="dp", solve_seconds=elapsed
    )


def _solve_unbounded(
    n: int, width_cap: int, prefix_parts: np.ndarray, intra: _IntraCost
) -> tuple[np.ndarray, float]:
    best = np.full(n, np.inf)
    choice = np.zeros(n, dtype=np.int64)
    # best_before[a] = optimal cost of blocks [0, a); best_before[0] = 0.
    best_before = np.full(n + 1, np.inf)
    best_before[0] = 0.0
    for end in range(n):
        first_start = max(0, end - width_cap + 1)
        starts = np.arange(first_start, end + 1)
        candidates = best_before[starts] + intra.cost(starts, end) + prefix_parts[end]
        winner = int(np.argmin(candidates))
        best[end] = candidates[winner]
        choice[end] = starts[winner]
        best_before[end + 1] = best[end]
    vector = _reconstruct(n, choice)
    return vector, float(best[n - 1])


def _solve_bounded(
    n: int,
    width_cap: int,
    max_partitions: int,
    prefix_parts: np.ndarray,
    intra: _IntraCost,
) -> tuple[np.ndarray, float]:
    limit = min(max_partitions, n)
    # best[k][b]: optimal cost of blocks [0, b] using exactly k+1 partitions.
    best = np.full((limit, n), np.inf)
    choice = np.zeros((limit, n), dtype=np.int64)
    for k in range(limit):
        if k == 0:
            # One partition spanning [0, end]: only feasible within the width cap.
            for end in range(min(width_cap, n)):
                starts = np.asarray([0])
                best[0, end] = float(
                    intra.cost(starts, end)[0] + prefix_parts[end]
                )
                choice[0, end] = 0
            continue
        prev = np.concatenate(([np.inf], best[k - 1, :]))
        for end in range(n):
            first_start = max(1, end - width_cap + 1)
            if first_start > end:
                continue
            starts = np.arange(first_start, end + 1)
            candidates = prev[starts] + intra.cost(starts, end) + prefix_parts[end]
            winner = int(np.argmin(candidates))
            if np.isfinite(candidates[winner]):
                best[k, end] = candidates[winner]
                choice[k, end] = starts[winner]
    final = best[:, n - 1]
    k_star = int(np.argmin(final))
    if not np.isfinite(final[k_star]):
        raise ValueError("no feasible partitioning under the given constraints")
    vector = _reconstruct_bounded(n, choice, k_star)
    return vector, float(final[k_star])


def _reconstruct(n: int, choice: np.ndarray) -> np.ndarray:
    vector = np.zeros(n, dtype=bool)
    end = n - 1
    while end >= 0:
        vector[end] = True
        start = int(choice[end])
        end = start - 1
    return vector


def _reconstruct_bounded(n: int, choice: np.ndarray, k_star: int) -> np.ndarray:
    vector = np.zeros(n, dtype=bool)
    end = n - 1
    k = k_star
    while end >= 0:
        vector[end] = True
        start = int(choice[k, end])
        end = start - 1
        k -= 1
    return vector


def brute_force(
    cost_model: CostModel,
    *,
    max_partition_blocks: int | None = None,
    max_partitions: int | None = None,
) -> PartitioningResult:
    """Exhaustive search over all 2^(N-1) partitionings (testing only)."""
    start_time = time.perf_counter()
    n = cost_model.num_blocks
    if n > 20:
        raise ValueError("brute force is limited to 20 blocks")
    best_vector = None
    best_cost = np.inf
    for mask in range(2 ** (n - 1)):
        vector = np.zeros(n, dtype=bool)
        vector[n - 1] = True
        for bit in range(n - 1):
            if mask & (1 << bit):
                vector[bit] = True
        widths = np.diff(np.concatenate(([0], np.nonzero(vector)[0] + 1)))
        if max_partition_blocks is not None and widths.max() > max_partition_blocks:
            continue
        if max_partitions is not None and np.count_nonzero(vector) > max_partitions:
            continue
        cost = cost_model.total_cost(vector)
        if cost < best_cost:
            best_cost = cost
            best_vector = vector
    elapsed = time.perf_counter() - start_time
    if best_vector is None:
        raise ValueError("no feasible partitioning under the given constraints")
    return PartitioningResult(
        vector=validate_partitioning(best_vector),
        cost=float(best_cost),
        solver="brute_force",
        solve_seconds=elapsed,
    )
