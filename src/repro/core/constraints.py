"""Performance SLA constraints (Section 5, Eq. 21).

The optimization problem can be augmented with service-level agreements:

* an *update SLA* caps the latency of the most expensive insert/update, which
  (because the worst case ripples through every partition) translates into a
  cap on the number of partitions:
  ``sum p_i <= updateSLA / (RR + RW) - 1``;
* a *read SLA* caps the latency of a point query, which translates into a
  maximum partition size (MPS, in blocks):
  ``MPS = (readSLA - RR) / SR`` and every window of MPS consecutive blocks
  must contain at least one boundary.

:class:`SLAConstraints` converts nanosecond SLAs into the two structural
bounds consumed by the solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.cost_accounting import DEFAULT_COST_CONSTANTS, CostConstants


class InfeasibleSLAError(ValueError):
    """Raised when an SLA cannot be satisfied by any partitioning."""


@dataclass(frozen=True)
class StructuralBounds:
    """Solver-facing bounds derived from the SLAs."""

    max_partitions: int | None = None
    max_partition_blocks: int | None = None


@dataclass(frozen=True)
class SLAConstraints:
    """Latency SLAs (in nanoseconds) for updates/inserts and point reads."""

    update_sla_ns: float | None = None
    read_sla_ns: float | None = None

    def to_bounds(
        self,
        num_blocks: int,
        constants: CostConstants = DEFAULT_COST_CONSTANTS,
    ) -> StructuralBounds:
        """Translate the SLAs into structural bounds (Eq. 21)."""
        max_partitions: int | None = None
        max_partition_blocks: int | None = None

        if self.update_sla_ns is not None:
            per_partition = constants.random_read + constants.random_write
            limit = int(self.update_sla_ns / per_partition) - 1
            if limit < 1:
                raise InfeasibleSLAError(
                    f"update SLA of {self.update_sla_ns}ns cannot be met: even a "
                    "single-partition layout exceeds it"
                )
            max_partitions = min(limit, num_blocks)

        if self.read_sla_ns is not None:
            budget = self.read_sla_ns - constants.random_read
            if budget < 0:
                raise InfeasibleSLAError(
                    f"read SLA of {self.read_sla_ns}ns is below the cost of a "
                    "single random block read"
                )
            mps = int(budget / constants.seq_read)
            if mps < 1:
                mps = 1
            max_partition_blocks = min(mps, num_blocks)

        if (
            max_partitions is not None
            and max_partition_blocks is not None
            and max_partitions * max_partition_blocks < num_blocks
        ):
            raise InfeasibleSLAError(
                "update and read SLAs are jointly infeasible: "
                f"{max_partitions} partitions of at most "
                f"{max_partition_blocks} blocks cannot cover {num_blocks} blocks"
            )
        return StructuralBounds(
            max_partitions=max_partitions,
            max_partition_blocks=max_partition_blocks,
        )

    def max_insert_latency_ns(
        self,
        max_partitions: int,
        constants: CostConstants = DEFAULT_COST_CONSTANTS,
    ) -> float:
        """Worst-case insert latency implied by a partition count."""
        per_partition = constants.random_read + constants.random_write
        return per_partition * (1 + max_partitions)
