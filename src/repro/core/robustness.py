"""Robustness to workload uncertainty (Section 7.5, Fig. 16).

A layout optimized for one workload may be exercised by a slightly different
one.  The paper studies two kinds of drift between the *training* and the
*actual* workload:

* **mass shift** -- operation mass moves between operation classes (e.g. 15%
  of the point-query mass becomes insert mass), and
* **rotational shift** -- the targeted part of the domain rotates by a
  fraction of the normalized domain (every access histogram is circularly
  shifted).

``evaluate_robustness`` optimizes a layout on the training model and reports
its cost on each perturbed model, normalized by the cost of the layout that
would have been optimal for that perturbed model -- values near 1.0 mean the
trained layout absorbs the drift, larger values expose the performance cliff
the paper observes beyond ~10-15% shifts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.cost_accounting import DEFAULT_COST_CONSTANTS, CostConstants
from .cost_model import CostModel
from .dp_solver import solve_dp
from .frequency_model import HISTOGRAM_NAMES, FrequencyModel

#: Histograms affected by read-mass shifts vs write-mass shifts.
READ_HISTOGRAMS = ("pq", "rs", "sc", "re")
WRITE_HISTOGRAMS = ("in",)


def rotational_shift(model: FrequencyModel, fraction: float) -> FrequencyModel:
    """Circularly shift every histogram by ``fraction`` of the domain."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    offset = int(round(fraction * model.num_blocks)) % model.num_blocks
    shifted = {
        name: np.roll(model.histograms[name], offset) for name in HISTOGRAM_NAMES
    }
    return FrequencyModel(model.num_blocks, shifted)


def mass_shift(model: FrequencyModel, fraction: float) -> FrequencyModel:
    """Move operation mass between point queries and inserts.

    A positive ``fraction`` moves that share of the point-query mass to the
    insert histogram (at the blocks the inserts already target); a negative
    ``fraction`` moves insert mass to point queries.  This mirrors the
    "mass shift from point queries to inserts" axis of Fig. 16b.
    """
    if not -1.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [-1, 1]")
    shifted = model.copy()
    if fraction == 0.0:
        return shifted
    if fraction > 0:
        moved = float(shifted.pq.sum()) * fraction
        shifted.histograms["pq"] *= 1.0 - fraction
        insert_total = float(shifted.ins.sum())
        if insert_total > 0:
            shifted.histograms["in"] += shifted.ins / insert_total * moved
        else:
            shifted.histograms["in"] += moved / shifted.num_blocks
    else:
        fraction = -fraction
        moved = float(shifted.ins.sum()) * fraction
        shifted.histograms["in"] *= 1.0 - fraction
        read_total = float(shifted.pq.sum())
        if read_total > 0:
            shifted.histograms["pq"] += shifted.pq / read_total * moved
        else:
            shifted.histograms["pq"] += moved / shifted.num_blocks
    return shifted


@dataclass(frozen=True)
class RobustnessPoint:
    """One cell of the robustness sweep."""

    mass_shift: float
    rotational_shift: float
    trained_cost: float
    oracle_cost: float

    @property
    def normalized_latency(self) -> float:
        """Trained-layout cost divided by the perturbation-optimal cost."""
        if self.oracle_cost <= 0:
            return 1.0
        return self.trained_cost / self.oracle_cost


def evaluate_robustness(
    training_model: FrequencyModel,
    *,
    mass_shifts: list[float],
    rotational_shifts: list[float],
    constants: CostConstants = DEFAULT_COST_CONSTANTS,
) -> list[RobustnessPoint]:
    """Sweep mass and rotational shifts and score the trained layout."""
    trained = solve_dp(CostModel(training_model, constants))
    points: list[RobustnessPoint] = []
    for mass in mass_shifts:
        mass_model = mass_shift(training_model, mass)
        for rotation in rotational_shifts:
            actual = rotational_shift(mass_model, rotation)
            actual_cost_model = CostModel(actual, constants)
            trained_cost = actual_cost_model.total_cost(trained.vector)
            oracle = solve_dp(actual_cost_model)
            points.append(
                RobustnessPoint(
                    mass_shift=mass,
                    rotational_shift=rotation,
                    trained_cost=trained_cost,
                    oracle_cost=oracle.cost,
                )
            )
    return points
