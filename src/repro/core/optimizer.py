"""Layout optimizer facade.

``optimize_layout`` ties the pieces of Sections 4 and 5 together: it takes a
Frequency Model (plus cost constants and optional SLAs), dispatches to one of
the solver backends and converts the block-level solution into value-offset
partition boundaries that the storage layer understands.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..storage.cost_accounting import DEFAULT_COST_CONSTANTS, CostConstants
from .bip_solver import solve_bip
from .constraints import SLAConstraints, StructuralBounds
from .cost_model import CostModel
from .dp_solver import PartitioningResult, brute_force, solve_dp
from .frequency_model import FrequencyModel
from .greedy_solver import solve_greedy


class SolverBackend(Enum):
    """Available solver backends."""

    DP = "dp"
    BIP = "bip"
    GREEDY = "greedy"
    BRUTE_FORCE = "brute_force"


@dataclass(frozen=True)
class LayoutSolution:
    """A solved layout for one column chunk."""

    result: PartitioningResult
    cost_model: CostModel
    block_values: int
    chunk_size: int

    @property
    def cost(self) -> float:
        """Optimal workload cost (simulated nanoseconds)."""
        return self.result.cost

    @property
    def num_partitions(self) -> int:
        """Number of partitions in the solution."""
        return self.result.num_partitions

    @property
    def boundary_blocks(self) -> np.ndarray:
        """Exclusive block end offsets of every partition."""
        return self.result.boundary_blocks

    def boundary_offsets(self) -> np.ndarray:
        """Exclusive *value* end offsets of every partition within the chunk."""
        offsets = self.boundary_blocks.astype(np.int64) * self.block_values
        offsets = np.minimum(offsets, self.chunk_size)
        offsets[-1] = self.chunk_size
        return np.unique(offsets)

    def partition_widths_blocks(self) -> np.ndarray:
        """Width of every partition in blocks."""
        return self.result.partition_widths()


def optimize_layout(
    frequency_model: FrequencyModel,
    *,
    chunk_size: int,
    block_values: int,
    constants: CostConstants = DEFAULT_COST_CONSTANTS,
    sla: SLAConstraints | None = None,
    bounds: StructuralBounds | None = None,
    solver: SolverBackend | str = SolverBackend.DP,
) -> LayoutSolution:
    """Solve the column-layout problem for one chunk.

    Parameters
    ----------
    frequency_model:
        The chunk's Frequency Model.
    chunk_size:
        Number of values in the chunk (used to convert block boundaries to
        value offsets).
    block_values:
        Values per logical block.
    constants:
        Block access cost constants (micro-benchmarked per deployment).
    sla:
        Optional latency SLAs translated into structural bounds (Eq. 21).
    bounds:
        Pre-computed structural bounds (overrides ``sla``).
    solver:
        Which backend to use; the exact DP is the default.
    """
    if isinstance(solver, str):
        solver = SolverBackend(solver)
    cost_model = CostModel(frequency_model, constants)
    if bounds is None:
        bounds = (
            sla.to_bounds(frequency_model.num_blocks, constants)
            if sla is not None
            else StructuralBounds()
        )
    kwargs = dict(
        max_partition_blocks=bounds.max_partition_blocks,
        max_partitions=bounds.max_partitions,
    )
    if solver is SolverBackend.DP:
        result = solve_dp(cost_model, **kwargs)
    elif solver is SolverBackend.BIP:
        result = solve_bip(cost_model, **kwargs)
    elif solver is SolverBackend.GREEDY:
        result = solve_greedy(cost_model, **kwargs)
    elif solver is SolverBackend.BRUTE_FORCE:
        result = brute_force(cost_model, **kwargs)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown solver backend: {solver!r}")
    return LayoutSolution(
        result=result,
        cost_model=cost_model,
        block_values=block_values,
        chunk_size=chunk_size,
    )
