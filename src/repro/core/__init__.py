"""Casper's contribution: the workload-driven column layout optimizer.

This subpackage contains the Frequency Model (Section 4.2), the cost model
over partitioned columns (Section 4.4), the layout solvers (exact DP, the
paper's BIP formulation via scipy/HiGHS, and a greedy baseline), SLA
constraints (Eq. 21), ghost-value allocation (Eq. 18), per-chunk problem
decomposition (Section 6.3), robustness analysis (Section 7.5) and the
planner facade that turns a workload sample into a physical layout.
"""

from .bip_solver import solve_bip
from .chunking import (
    ScalabilityModel,
    measure_solve_seconds,
    split_into_chunks,
    synthetic_frequency_model,
)
from .constraints import InfeasibleSLAError, SLAConstraints, StructuralBounds
from .cost_model import (
    CostModel,
    WorkloadTerms,
    bck_read,
    boundaries_to_vector,
    fwd_read,
    partition_of_blocks,
    trail_parts,
    validate_partitioning,
    vector_to_boundaries,
)
from .dp_solver import PartitioningResult, brute_force, solve_dp
from .frequency_model import (
    HISTOGRAM_NAMES,
    BlockMapper,
    FrequencyModel,
    learn_from_distributions,
    learn_from_workload,
)
from .ghost_allocation import (
    GhostAllocation,
    allocate_ghost_values,
    data_movement_per_block,
    data_movement_per_partition,
)
from .greedy_solver import solve_greedy
from .monitor import (
    ChunkActivity,
    RecentSample,
    WorkloadMonitor,
    mix_distance,
    synthesize_operation,
)
from .optimizer import LayoutSolution, SolverBackend, optimize_layout
from .planner import CasperPlanner, ChunkPlan
from .robustness import (
    RobustnessPoint,
    evaluate_robustness,
    mass_shift,
    rotational_shift,
)

__all__ = [
    "BlockMapper",
    "CasperPlanner",
    "ChunkActivity",
    "ChunkPlan",
    "CostModel",
    "FrequencyModel",
    "GhostAllocation",
    "HISTOGRAM_NAMES",
    "InfeasibleSLAError",
    "LayoutSolution",
    "PartitioningResult",
    "RecentSample",
    "RobustnessPoint",
    "SLAConstraints",
    "ScalabilityModel",
    "SolverBackend",
    "StructuralBounds",
    "WorkloadMonitor",
    "WorkloadTerms",
    "allocate_ghost_values",
    "bck_read",
    "boundaries_to_vector",
    "brute_force",
    "data_movement_per_block",
    "data_movement_per_partition",
    "evaluate_robustness",
    "fwd_read",
    "learn_from_distributions",
    "learn_from_workload",
    "mass_shift",
    "measure_solve_seconds",
    "mix_distance",
    "synthesize_operation",
    "optimize_layout",
    "partition_of_blocks",
    "rotational_shift",
    "solve_bip",
    "solve_dp",
    "solve_greedy",
    "split_into_chunks",
    "synthetic_frequency_model",
    "trail_parts",
    "validate_partitioning",
    "vector_to_boundaries",
]
