"""Greedy baseline solver for the layout problem.

Used by the solver ablation benchmark to show what the exact solvers buy:
the greedy heuristic starts from the finest partitioning (every block its own
partition) and repeatedly removes the boundary whose removal reduces the
total workload cost the most, stopping when no single removal helps.  It is
fast but can get stuck in local minima, unlike the DP/BIP solvers.
"""

from __future__ import annotations

import time

import numpy as np

from .cost_model import CostModel
from .dp_solver import PartitioningResult


def solve_greedy(
    cost_model: CostModel,
    *,
    max_partition_blocks: int | None = None,
    max_partitions: int | None = None,
) -> PartitioningResult:
    """Greedy boundary-removal heuristic."""
    start_time = time.perf_counter()
    n = cost_model.num_blocks
    vector = np.ones(n, dtype=bool)
    cost = cost_model.total_cost(vector)

    improved = True
    while improved:
        improved = False
        best_delta = 0.0
        best_index = None
        removable = np.nonzero(vector[:-1])[0]
        for index in removable:
            candidate = vector.copy()
            candidate[index] = False
            if max_partition_blocks is not None:
                widths = np.diff(
                    np.concatenate(([0], np.nonzero(candidate)[0] + 1))
                )
                if widths.max() > max_partition_blocks:
                    continue
            candidate_cost = cost_model.total_cost(candidate)
            delta = cost - candidate_cost
            if delta > best_delta:
                best_delta = delta
                best_index = index
        if best_index is not None:
            vector[best_index] = False
            cost -= best_delta
            improved = True

    # Enforce the partition-count cap by removing the cheapest boundaries.
    if max_partitions is not None:
        while np.count_nonzero(vector) > max_partitions:
            removable = np.nonzero(vector[:-1])[0]
            best_cost = np.inf
            best_index = None
            for index in removable:
                candidate = vector.copy()
                candidate[index] = False
                if max_partition_blocks is not None:
                    widths = np.diff(
                        np.concatenate(([0], np.nonzero(candidate)[0] + 1))
                    )
                    if widths.max() > max_partition_blocks:
                        continue
                candidate_cost = cost_model.total_cost(candidate)
                if candidate_cost < best_cost:
                    best_cost = candidate_cost
                    best_index = index
            if best_index is None:
                break
            vector[best_index] = False
            cost = best_cost

    elapsed = time.perf_counter() - start_time
    return PartitioningResult(
        vector=vector,
        cost=float(cost_model.total_cost(vector)),
        solver="greedy",
        solve_seconds=elapsed,
    )
