"""Per-chunk decomposition and scalability model (Section 6.3, Fig. 11).

Casper keeps the layout-decision cost low by dividing a column into chunks
and solving each chunk's layout problem independently; the sub-problems are
embarrassingly parallel.  For a dataset of ``M`` values, block size ``B``
values, ``C`` chunks and ``CPU`` cores the paper models the decision latency
as ``O((C / CPU) * (M / (B * C))^3)`` (cubic because of the BIP relaxation).

This module provides

* :func:`measure_solve_seconds` -- the measured per-chunk solve time of this
  repository's DP solver for a given number of blocks, and
* :class:`ScalabilityModel` -- the analytic latency model used to regenerate
  Fig. 11 for data sizes far beyond what a single solve can be timed on
  (the paper itself reports the un-chunked 10^9-value point as an estimate of
  10^15 seconds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..storage.cost_accounting import DEFAULT_COST_CONSTANTS, CostConstants
from .cost_model import CostModel
from .dp_solver import solve_dp
from .frequency_model import FrequencyModel


def synthetic_frequency_model(num_blocks: int, seed: int = 3) -> FrequencyModel:
    """A mixed read/write Frequency Model used for solver timing."""
    rng = np.random.default_rng(seed)
    model = FrequencyModel(num_blocks)
    model.pq[:] = rng.integers(0, 50, num_blocks)
    model.rs[:] = rng.integers(0, 10, num_blocks)
    model.re[:] = rng.integers(0, 10, num_blocks)
    model.sc[:] = rng.integers(0, 20, num_blocks)
    model.ins[:] = rng.integers(0, 30, num_blocks)
    model.de[:] = rng.integers(0, 10, num_blocks)
    return model


def measure_solve_seconds(
    num_blocks: int,
    *,
    constants: CostConstants = DEFAULT_COST_CONSTANTS,
    seed: int = 3,
) -> float:
    """Wall-clock seconds for one DP solve over ``num_blocks`` blocks."""
    model = synthetic_frequency_model(num_blocks, seed)
    cost_model = CostModel(model, constants)
    start = time.perf_counter()
    solve_dp(cost_model)
    return time.perf_counter() - start


@dataclass(frozen=True)
class ScalabilityModel:
    """Analytic partitioning-decision latency model.

    ``per_block_unit_seconds`` is calibrated from a measured solve so the
    model's absolute scale matches this machine; the exponent defaults to the
    paper's cubic complexity (Mosek's semidefinite relaxation) and can be set
    to 2 to describe the DP solver instead.
    """

    per_block_unit_seconds: float
    exponent: float = 3.0

    @classmethod
    def calibrate(
        cls,
        *,
        calibration_blocks: int = 256,
        exponent: float = 3.0,
        constants: CostConstants = DEFAULT_COST_CONSTANTS,
    ) -> "ScalabilityModel":
        """Fit the unit cost from a real solve of ``calibration_blocks`` blocks."""
        measured = measure_solve_seconds(calibration_blocks, constants=constants)
        unit = measured / float(calibration_blocks) ** exponent
        return cls(per_block_unit_seconds=unit, exponent=exponent)

    def single_chunk_seconds(self, num_blocks: int) -> float:
        """Latency of solving one chunk with ``num_blocks`` blocks."""
        return self.per_block_unit_seconds * float(num_blocks) ** self.exponent

    def decision_latency_seconds(
        self,
        data_size: int,
        *,
        block_values: int,
        chunks: int = 1,
        cpus: int = 1,
    ) -> float:
        """End-to-end decision latency for ``data_size`` values.

        ``chunks`` sub-problems are solved, ``cpus`` at a time
        (``ceil(chunks / cpus)`` sequential waves), matching the paper's
        ``O((C / CPU) * (M / (B * C))^3)`` model.
        """
        if data_size <= 0:
            raise ValueError("data_size must be positive")
        if chunks <= 0 or cpus <= 0:
            raise ValueError("chunks and cpus must be positive")
        per_chunk_values = max(1, data_size // chunks)
        per_chunk_blocks = max(1, int(np.ceil(per_chunk_values / block_values)))
        waves = int(np.ceil(chunks / cpus))
        return waves * self.single_chunk_seconds(per_chunk_blocks)


def split_into_chunks(values: np.ndarray, chunk_size: int) -> list[np.ndarray]:
    """Split a sorted value array into consecutive chunks of ``chunk_size``."""
    values = np.asarray(values)
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [
        values[start : start + chunk_size]
        for start in range(0, values.shape[0], chunk_size)
    ] or [values]
