"""Casper layout planner: workload sample -> per-chunk physical layout.

This is the component marked (A)-(C) in the paper's architecture diagram
(Fig. 10): it learns the Frequency Model from an offline workload sample,
solves the layout optimization problem per chunk, allocates ghost values and
applies the physical layout by constructing the storage structures.

The planner also serves as the ``chunk_builder`` plug-in for
:class:`repro.storage.table.Table`, which is how the benchmark harness builds
the Casper operation mode of the Fig. 12/13 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..storage.column import PartitionedColumn, snap_boundaries_to_duplicates
from ..storage.cost_accounting import (
    DEFAULT_BLOCK_VALUES,
    DEFAULT_COST_CONSTANTS,
    AccessCounter,
    CostConstants,
)
from ..storage.ghost_values import ghost_budget_from_fraction
from ..workload.operations import Workload
from .constraints import SLAConstraints
from .cost_model import CostModel, boundaries_to_vector
from .frequency_model import FrequencyModel, learn_from_workload
from .ghost_allocation import GhostAllocation, allocate_ghost_values
from .optimizer import LayoutSolution, SolverBackend, optimize_layout


@dataclass
class ChunkPlan:
    """Physical layout decision for one column chunk."""

    boundaries: np.ndarray
    ghost_allocation: np.ndarray | None
    solution: LayoutSolution
    frequency_model: FrequencyModel

    @property
    def num_partitions(self) -> int:
        """Number of partitions in the plan."""
        return int(self.boundaries.shape[0])

    @property
    def estimated_cost(self) -> float:
        """Optimizer-estimated workload cost for the chunk."""
        return self.solution.cost


@dataclass
class CasperPlanner:
    """Workload-driven layout planner (the Casper column layout tool).

    Parameters
    ----------
    sample_workload:
        Representative workload sample used to learn the Frequency Model.
    block_values:
        Values per logical block (16KB blocks by default).
    ghost_fraction:
        Total ghost-value budget as a fraction of each chunk's size.
    constants:
        Block-access cost constants.
    sla:
        Optional latency SLAs (Eq. 21).
    solver:
        Solver backend (exact DP by default).
    """

    sample_workload: Workload
    block_values: int = DEFAULT_BLOCK_VALUES
    ghost_fraction: float = 0.001
    constants: CostConstants = DEFAULT_COST_CONSTANTS
    sla: SLAConstraints | None = None
    solver: SolverBackend | str = SolverBackend.DP
    plans: list[ChunkPlan] = field(default_factory=list)

    def with_sample(self, workload: Workload) -> "CasperPlanner":
        """A new planner with the same tuning but a fresh workload sample.

        Used by the online loop (:class:`repro.core.monitor.WorkloadMonitor`)
        to re-plan a drifted chunk against its *observed* operation mix
        instead of the original offline training sample.  The plan history
        starts empty so the caller can inspect exactly the replan decisions.
        """
        return replace(self, sample_workload=workload, plans=[])

    def plan_chunk(self, sorted_values: np.ndarray | list[int]) -> ChunkPlan:
        """Decide the layout of one chunk holding ``sorted_values``."""
        values = np.asarray(sorted_values, dtype=np.int64)
        if values.size == 0:
            raise ValueError("cannot plan an empty chunk")
        relevant = self._restrict_workload(values)
        frequency_model = learn_from_workload(
            relevant, values, block_values=self.block_values
        )
        solution = optimize_layout(
            frequency_model,
            chunk_size=int(values.size),
            block_values=self.block_values,
            constants=self.constants,
            sla=self.sla,
            solver=self.solver,
        )
        boundaries = snap_boundaries_to_duplicates(
            values, solution.boundary_offsets()
        )
        ghosts = self._allocate_ghosts(frequency_model, solution, boundaries, values)
        plan = ChunkPlan(
            boundaries=boundaries,
            ghost_allocation=ghosts.per_partition if ghosts is not None else None,
            solution=solution,
            frequency_model=frequency_model,
        )
        self.plans.append(plan)
        return plan

    def evaluate_layout(
        self,
        frequency_model: FrequencyModel,
        boundary_offsets: np.ndarray | Sequence[int],
    ) -> float:
        """Modeled workload cost (Eq. 16) of an *existing* layout.

        ``boundary_offsets`` are the exclusive value end offsets of the
        layout's partitions within the chunk (e.g. the cumulative live
        partition counts of a :class:`PartitionedColumn`); they are mapped
        onto block granularity and priced under ``frequency_model`` with this
        planner's cost constants.  Comparing the result against
        :attr:`ChunkPlan.estimated_cost` of a fresh plan over the *same*
        frequency model yields the modeled savings of a replan, which is what
        the session reorganization policy's cost gate charges against the
        rebuild cost.
        """
        offsets = np.asarray(boundary_offsets, dtype=np.int64).ravel()
        if offsets.size == 0 or int(offsets[-1]) <= 0:
            raise ValueError("boundary offsets must end at the chunk size")
        num_blocks = frequency_model.num_blocks
        blocks = -(-offsets // self.block_values)  # ceil to block granularity
        blocks = np.unique(np.clip(blocks, 1, num_blocks))
        if blocks[-1] != num_blocks:
            blocks = np.append(blocks, num_blocks)
        vector = boundaries_to_vector(num_blocks, blocks)
        return CostModel(frequency_model, self.constants).total_cost(vector)

    def _restrict_workload(self, values: np.ndarray) -> Workload:
        """Keep only the sample operations that touch this chunk's key range."""
        low, high = int(values[0]), int(values[-1])
        from ..workload.operations import (
            Delete,
            Insert,
            PointQuery,
            RangeQuery,
            Update,
        )

        kept = []
        for operation in self.sample_workload:
            if isinstance(operation, PointQuery) and low <= operation.key <= high:
                kept.append(operation)
            elif isinstance(operation, RangeQuery) and not (
                operation.high < low or operation.low > high
            ):
                kept.append(operation)
            elif isinstance(operation, Insert) and low <= operation.key <= high:
                kept.append(operation)
            elif isinstance(operation, Delete) and low <= operation.key <= high:
                kept.append(operation)
            elif isinstance(operation, Update) and (
                low <= operation.old_key <= high or low <= operation.new_key <= high
            ):
                kept.append(operation)
        return Workload(operations=kept, name=f"{self.sample_workload.name}[chunk]")

    def _allocate_ghosts(
        self,
        frequency_model: FrequencyModel,
        solution: LayoutSolution,
        boundaries: np.ndarray,
        values: np.ndarray,
    ) -> GhostAllocation | None:
        budget = ghost_budget_from_fraction(int(values.size), self.ghost_fraction)
        if budget <= 0:
            return None
        allocation = allocate_ghost_values(
            frequency_model, solution.result.vector, budget
        )
        per_partition = allocation.per_partition
        if per_partition.shape[0] != boundaries.shape[0]:
            # Boundary snapping (duplicate runs) may have merged partitions;
            # re-aggregate the block-level allocation onto the final layout.
            per_partition = self._reaggregate(
                allocation.per_partition, solution.boundary_offsets(), boundaries
            )
        return GhostAllocation(per_partition=per_partition, total=allocation.total)

    @staticmethod
    def _reaggregate(
        allocation: np.ndarray, original_offsets: np.ndarray, final_offsets: np.ndarray
    ) -> np.ndarray:
        result = np.zeros(final_offsets.shape[0], dtype=np.int64)
        for original_index, end in enumerate(original_offsets):
            target = int(np.searchsorted(final_offsets, end, side="left"))
            target = min(target, final_offsets.shape[0] - 1)
            result[target] += int(allocation[original_index])
        return result

    # ------------------------------------------------------------------ #
    # Table integration
    # ------------------------------------------------------------------ #

    def build_chunk(
        self,
        sorted_values: np.ndarray,
        rowids: np.ndarray,
        counter: AccessCounter,
    ) -> PartitionedColumn:
        """``ChunkBuilder`` entry point used by :class:`repro.storage.table.Table`."""
        plan = self.plan_chunk(sorted_values)
        return self.build_chunk_from_plan(plan, sorted_values, rowids, counter)

    def build_chunk_from_plan(
        self,
        plan: ChunkPlan,
        sorted_values: np.ndarray,
        rowids: np.ndarray,
        counter: AccessCounter,
    ) -> PartitionedColumn:
        """Materialize an already-solved :class:`ChunkPlan` as a column.

        Lets callers that planned a chunk for another reason -- e.g. the
        session reorganization policy's cost gate -- apply that plan without
        paying the layout solve a second time.  ``sorted_values`` must be
        the values the plan was computed for.
        """
        ghosts = plan.ghost_allocation
        return PartitionedColumn(
            sorted_values,
            plan.boundaries,
            block_values=self.block_values,
            ghost_allocation=ghosts,
            dense=ghosts is None,
            track_rowids=True,
            rowids=rowids,
            counter=counter,
        )
