"""Ghost-value allocation across partitions (Section 4.6, Eq. 18).

Given a partitioning, the Frequency Model and a total ghost-value budget, the
allocator distributes empty slots to partitions proportionally to the data
movement that inserts and incoming updates would otherwise cause there:
``GValloc(i) = dm_part(i) / dm_tot * GVtot``.

The data movement attributed to a block is the number of ripple inserts it
receives (inserts plus update targets) times the length of the ripple chain
those operations would trigger (``1 + trail_parts``), so partitions that
absorb many writes deep inside the chunk get the most slack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.ghost_values import spread_proportionally
from .cost_model import trail_parts, validate_partitioning
from .frequency_model import FrequencyModel


@dataclass(frozen=True)
class GhostAllocation:
    """Per-partition ghost-slot allocation."""

    per_partition: np.ndarray
    total: int

    @property
    def num_partitions(self) -> int:
        """Number of partitions covered by the allocation."""
        return int(self.per_partition.shape[0])


def data_movement_per_block(
    frequency_model: FrequencyModel, p: np.ndarray
) -> np.ndarray:
    """Expected ripple-insert data movement caused by writes to each block."""
    vector = validate_partitioning(p)
    arrivals = frequency_model.ins + frequency_model.utf + frequency_model.utb
    return arrivals * (1.0 + trail_parts(vector))


def data_movement_per_partition(
    frequency_model: FrequencyModel, p: np.ndarray
) -> np.ndarray:
    """Aggregate the per-block data movement over each partition."""
    vector = validate_partitioning(p)
    per_block = data_movement_per_block(frequency_model, vector)
    ends = np.nonzero(vector)[0] + 1
    starts = np.concatenate(([0], ends[:-1]))
    return np.asarray(
        [per_block[start:end].sum() for start, end in zip(starts, ends, strict=True)]
    )


def allocate_ghost_values(
    frequency_model: FrequencyModel,
    p: np.ndarray,
    total_budget: int,
) -> GhostAllocation:
    """Distribute ``total_budget`` ghost slots across partitions (Eq. 18)."""
    if total_budget < 0:
        raise ValueError("total_budget must be non-negative")
    weights = data_movement_per_partition(frequency_model, p)
    allocation = spread_proportionally(weights, int(total_budget))
    return GhostAllocation(per_partition=allocation, total=int(total_budget))
