"""Binary integer programming formulation of the layout problem (Eq. 20).

The paper linearizes the products of Eq. 19 by introducing auxiliary binary
variables ``y[i, j]`` that stand for ``prod_{k=i..j} (1 - p_k)`` and solves
the resulting binary linear program with Mosek.  Mosek is not available in
this environment, so this module builds exactly the same formulation and
hands it to ``scipy.optimize.milp`` (the HiGHS solver).

The formulation has O(N^2) auxiliary variables, so it is practical for small
chunks only; its purpose in this reproduction is fidelity and
cross-validation of the exact DP solver (tests assert both return the same
optimal cost).  The SLA bounds of Eq. 21 are supported.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize, sparse

from .cost_model import CostModel
from .dp_solver import PartitioningResult


def solve_bip(
    cost_model: CostModel,
    *,
    max_partition_blocks: int | None = None,
    max_partitions: int | None = None,
    time_limit: float | None = 60.0,
) -> PartitioningResult:
    """Solve Eq. 20 (plus the Eq. 21 bounds) with scipy's MILP solver."""
    start_time = time.perf_counter()
    terms = cost_model.terms
    n = cost_model.num_blocks
    if n > 64:
        raise ValueError(
            "the BIP formulation has O(N^2) variables; use the DP solver for "
            f"chunks with more than 64 blocks (got {n})"
        )

    # Variable layout: p_0..p_{n-1}, then y_{i,j} for 0 <= i <= j <= n-1.
    y_index: dict[tuple[int, int], int] = {}
    next_var = n
    for i in range(n):
        for j in range(i, n):
            y_index[(i, j)] = next_var
            next_var += 1
    num_vars = next_var

    objective = np.zeros(num_vars)
    # parts term: sum_i parts_i * sum_{j >= i} p_j  ==  sum_j p_j * prefix_parts(j)
    prefix_parts = np.cumsum(terms.parts)
    objective[:n] += prefix_parts
    # bck term: sum_i bck_i * sum_{j=0}^{i-1} y_{j, i-1}
    for i in range(n):
        for j in range(i):
            objective[y_index[(j, i - 1)]] += terms.bck[i]
    # fwd term: sum_i fwd_i * sum_{m=i}^{n-1} y_{i, m}
    for i in range(n):
        for m in range(i, n):
            objective[y_index[(i, m)]] += terms.fwd[i]

    rows: list[np.ndarray] = []
    lower: list[float] = []
    upper: list[float] = []

    def add_constraint(coefficients: dict[int, float], lo: float, hi: float) -> None:
        row = np.zeros(num_vars)
        for var, coefficient in coefficients.items():
            row[var] = coefficient
        rows.append(row)
        lower.append(lo)
        upper.append(hi)

    for i in range(n):
        # y_{i,i} = 1 - p_i
        add_constraint({y_index[(i, i)]: 1.0, i: 1.0}, 1.0, 1.0)
        for j in range(i + 1, n):
            # y_{i,j} <= 1 - p_j
            add_constraint({y_index[(i, j)]: 1.0, j: 1.0}, -np.inf, 1.0)
            # y_{i,j} >= 1 - sum_{k=i..j} p_k
            coefficients = {y_index[(i, j)]: 1.0}
            for k in range(i, j + 1):
                coefficients[k] = coefficients.get(k, 0.0) + 1.0
            add_constraint(coefficients, 1.0, np.inf)

    if max_partitions is not None:
        add_constraint({i: 1.0 for i in range(n)}, -np.inf, float(max_partitions))
    if max_partition_blocks is not None and max_partition_blocks < n:
        window = int(max_partition_blocks)
        for start in range(0, n - window + 1):
            add_constraint(
                {i: 1.0 for i in range(start, start + window)}, 1.0, np.inf
            )

    bounds_lower = np.zeros(num_vars)
    bounds_upper = np.ones(num_vars)
    bounds_lower[n - 1] = 1.0  # p_{N-1} = 1

    constraints = optimize.LinearConstraint(
        sparse.csr_matrix(np.vstack(rows)), np.asarray(lower), np.asarray(upper)
    )
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = optimize.milp(
        c=objective,
        constraints=constraints,
        integrality=np.ones(num_vars),
        bounds=optimize.Bounds(bounds_lower, bounds_upper),
        options=options,
    )
    if not result.success:
        raise RuntimeError(f"MILP solver failed: {result.message}")

    vector = np.asarray(np.round(result.x[:n]), dtype=bool)
    vector[n - 1] = True
    cost = cost_model.total_cost(vector)
    elapsed = time.perf_counter() - start_time
    return PartitioningResult(
        vector=vector, cost=float(cost), solver="bip", solve_seconds=elapsed
    )
