"""Online workload monitor: close the Fig. 10 A->C loop at runtime.

The paper's architecture learns a Frequency Model from an *offline* workload
sample, optimizes per-chunk layouts and applies them.  Production systems see
workloads drift, so the reproduction adds the online counterpart: a
:class:`WorkloadMonitor` attached to a
:class:`~repro.storage.engine.StorageEngine` records the per-chunk operation
mix as operations execute (attributing each operation to the chunk span the
table's router resolves, without charging simulated accesses) and can
re-lay-out a drifted chunk in place via :meth:`replan_chunk`, feeding the
recorded operations back through a :class:`~repro.core.planner.CasperPlanner`
as the fresh workload sample.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..workload.operations import (
    Aggregate,
    Delete,
    Insert,
    MultiDelete,
    MultiInsert,
    MultiPointQuery,
    MultiRangeCount,
    MultiUpdate,
    Operation,
    PointQuery,
    RangeQuery,
    Update,
    Workload,
)

#: Default bound on the per-chunk operation sample retained for replans.
DEFAULT_SAMPLE_LIMIT = 4_096


def mix_distance(a: dict[str, float], b: dict[str, float]) -> float:
    """Total-variation distance between two operation-mix dictionaries.

    Both arguments map operation kinds to fractions (as returned by
    :meth:`ChunkActivity.mix`); missing kinds count as zero.  The result lies
    in ``[0, 1]``: 0 for identical mixes, 1 for disjoint ones.  This is the
    drift metric the session reorganization policy thresholds.
    """
    kinds = set(a) | set(b)
    return 0.5 * sum(abs(a.get(kind, 0.0) - b.get(kind, 0.0)) for kind in kinds)


@dataclass
class ChunkActivity:
    """Recorded activity of one chunk: kind counts plus a bounded op sample.

    ``sample`` is a bounded deque holding the most recent operations, so
    appends stay O(1) on the engine's hot path.
    """

    counts: dict[str, int] = field(default_factory=dict)
    sample: deque[Operation] = field(
        default_factory=lambda: deque(maxlen=DEFAULT_SAMPLE_LIMIT)
    )

    @property
    def total(self) -> int:
        """Total operations attributed to the chunk."""
        return sum(self.counts.values())

    def mix(self) -> dict[str, float]:
        """Fraction of operations of each kind."""
        total = self.total
        if total == 0:
            return {}
        return {kind: count / total for kind, count in self.counts.items()}


class WorkloadMonitor:
    """Records per-chunk operation mixes and drives online re-planning.

    Parameters
    ----------
    sample_limit:
        Maximum number of operation objects retained per chunk as the replan
        workload sample.  The sample is a sliding window of the *most recent*
        operations, so a replan reflects the drifted mix rather than startup
        traffic; counts keep accumulating beyond the limit.
    """

    def __init__(self, sample_limit: int = DEFAULT_SAMPLE_LIMIT) -> None:
        if sample_limit < 0:
            raise ValueError("sample_limit must be non-negative")
        self.sample_limit = int(sample_limit)
        self._activity: dict[int, ChunkActivity] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def observe(
        self,
        table,
        kind: str,
        low: int,
        high: int | None = None,
        *,
        write_target: bool = False,
    ) -> None:
        """Attribute one operation to the chunk span it touches.

        ``low``/``high`` carry the operation's key (point kinds) or inclusive
        range; routing uses :meth:`Table.chunk_span`, which does not charge
        the access counter (monitoring is bookkeeping, not storage work).
        Inserts and update *targets* land in the first candidate chunk only
        (the table's insert routing rule), so they are attributed to that
        single chunk; reads, deletes and update sources probe the full
        candidate span and are attributed to every chunk in it.
        """
        first, last = table.chunk_span(low, high)
        if kind == "insert" or write_target:
            last = first
        operation = self._synthesize(kind, int(low), high)
        for chunk_index in range(first, last + 1):
            activity = self._activity.get(chunk_index)
            if activity is None:
                activity = ChunkActivity(
                    sample=deque(maxlen=self.sample_limit)
                )
                self._activity[chunk_index] = activity
            activity.counts[kind] = activity.counts.get(kind, 0) + 1
            if operation is not None:
                activity.sample.append(operation)

    def observe_workload(self, table, workload) -> None:
        """Attribute every operation of ``workload`` as the engine would.

        Translates operation objects into the ``(kind, low, high)`` calls the
        engine's dispatch methods make, including the per-element expansion
        of the ``Multi*`` batch forms and the source/target split of updates.
        Useful for seeding baseline chunk mixes from an offline training
        sample without executing it.
        """
        for operation in workload:
            if isinstance(operation, PointQuery):
                self.observe(table, "point_query", operation.key)
            elif isinstance(operation, RangeQuery):
                kind = (
                    "range_count"
                    if operation.aggregate is Aggregate.COUNT
                    else "range_sum"
                )
                self.observe(table, kind, operation.low, operation.high)
            elif isinstance(operation, Insert):
                self.observe(table, "insert", operation.key)
            elif isinstance(operation, Delete):
                self.observe(table, "delete", operation.key)
            elif isinstance(operation, Update):
                self.observe(table, "update", operation.old_key)
                self.observe(table, "update", operation.new_key, write_target=True)
            elif isinstance(operation, MultiPointQuery):
                for key in operation.keys:
                    self.observe(table, "point_query", int(key))
            elif isinstance(operation, MultiRangeCount):
                for low, high in operation.bounds:
                    self.observe(table, "range_count", int(low), int(high))
            elif isinstance(operation, MultiInsert):
                for key in operation.keys:
                    self.observe(table, "insert", int(key))
            elif isinstance(operation, MultiDelete):
                for key in operation.keys:
                    self.observe(table, "delete", int(key))
            elif isinstance(operation, MultiUpdate):
                for old_key, new_key in operation.pairs:
                    self.observe(table, "update", int(old_key))
                    self.observe(table, "update", int(new_key), write_target=True)

    @staticmethod
    def _synthesize(kind: str, low: int, high: int | None) -> Operation | None:
        """Reconstruct a workload operation object for the replan sample."""
        if kind == "point_query":
            return PointQuery(key=low)
        if kind in ("range_count", "range_sum"):
            return RangeQuery(low=low, high=int(high if high is not None else low))
        if kind == "insert":
            return Insert(key=low)
        if kind == "delete":
            return Delete(key=low)
        if kind == "update":
            # The engine reports the source and target keys separately; model
            # each side as an in-place correction so the Frequency Model sees
            # update pressure at the right location.
            return Update(old_key=low, new_key=low)
        return None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def observed_chunks(self) -> list[int]:
        """Chunk indices with any recorded activity, ascending."""
        return sorted(self._activity)

    def operation_counts(self, chunk_index: int) -> dict[str, int]:
        """Raw per-kind operation counts for one chunk."""
        activity = self._activity.get(chunk_index)
        return dict(activity.counts) if activity is not None else {}

    def chunk_mix(self, chunk_index: int) -> dict[str, float]:
        """Operation-mix fractions for one chunk (empty when unobserved)."""
        activity = self._activity.get(chunk_index)
        return activity.mix() if activity is not None else {}

    def hot_chunks(self, top: int | None = None) -> list[int]:
        """Chunk indices ordered by recorded operation volume, hottest first."""
        ranked = sorted(
            self._activity, key=lambda chunk: self._activity[chunk].total, reverse=True
        )
        return ranked[:top] if top is not None else ranked

    def recorded_workload(self, chunk_index: int) -> Workload:
        """The retained operation sample for one chunk as a ``Workload``."""
        activity = self._activity.get(chunk_index)
        operations = list(activity.sample) if activity is not None else []
        return Workload(operations=operations, name=f"monitor[chunk={chunk_index}]")

    def reset_chunk(self, chunk_index: int) -> None:
        """Forget one chunk's recorded activity (after a replan)."""
        self._activity.pop(chunk_index, None)

    def reset(self) -> None:
        """Forget all recorded activity."""
        self._activity.clear()

    # ------------------------------------------------------------------ #
    # Online reorganization
    # ------------------------------------------------------------------ #

    def replan_chunk(self, table, chunk_index: int, planner):
        """Re-lay-out ``chunk_index`` of ``table`` in place via ``planner``.

        When the monitor holds a recorded sample for the chunk, the planner
        is re-targeted at it (:meth:`CasperPlanner.with_sample`), so the new
        layout reflects the observed -- possibly drifted -- mix rather than
        the offline training sample.  The chunk's recorded activity is reset
        afterwards so the next drift decision starts fresh.  Returns the
        rebuilt chunk.
        """
        sample = self.recorded_workload(chunk_index)
        if len(sample) and hasattr(planner, "with_sample"):
            planner = planner.with_sample(sample)
        rebuilt = table.rebuild_chunk(chunk_index, planner.build_chunk)
        self.reset_chunk(chunk_index)
        return rebuilt
