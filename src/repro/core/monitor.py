"""Online workload monitor: close the Fig. 10 A->C loop at runtime.

The paper's architecture learns a Frequency Model from an *offline* workload
sample, optimizes per-chunk layouts and applies them.  Production systems see
workloads drift, so the reproduction adds the online counterpart: a
:class:`WorkloadMonitor` attached to a
:class:`~repro.storage.engine.StorageEngine` records the per-chunk operation
mix as operations execute and can re-lay-out a drifted chunk in place via
:meth:`replan_chunk`, feeding the recorded operations back through a
:class:`~repro.core.planner.CasperPlanner` as the fresh workload sample.

Observation is *batch-native*: the engine appends one compact
:class:`~repro.storage.access_log.AccessRecord` per dispatched run (kind,
key/bound arrays, write-target flag) and :meth:`observe_batch` attributes
each record's whole key array with a single ``searchsorted`` pass against
the table's chunk fences, bulk-updating per-chunk counts (``np.add.at`` on
a kind-by-chunk count matrix) and bounded ring-buffer samples -- no
per-operation Python on the hot path, and no simulated accesses charged
(monitoring is bookkeeping, not storage work).  The per-operation
:meth:`observe` and the offline :meth:`observe_workload` seeding are thin
wrappers over the same attribution routine, so engine dispatch and baseline
seeding cannot drift apart.

Updates are attributed as two distinct kinds: ``update_source`` (the old
key's full candidate-chunk span) and ``update_target`` (the new key's
insert route).  A single update therefore contributes one count to each
side's kind instead of inflating a shared ``"update"`` fraction in both
chunks' mixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro import discipline
from repro.discipline import guarded_class, requires_lock

from ..storage.access_log import (
    ATTRIBUTION_KINDS,
    FIRST_CANDIDATE_KINDS,
    KIND_CODES,
    PAIRED_UPDATE_KIND,
    RANGE_KINDS,
    AccessLog,
    AccessRecord,
)
from ..storage.column import expand_ranges
from ..workload.operations import (
    Aggregate,
    Delete,
    Insert,
    MultiDelete,
    MultiInsert,
    MultiPointQuery,
    MultiRangeCount,
    MultiUpdate,
    Operation,
    PointQuery,
    RangeQuery,
    Update,
    Workload,
)

#: Default bound on the per-chunk operation sample retained for replans.
DEFAULT_SAMPLE_LIMIT = 4_096

_SOURCE_CODE = KIND_CODES["update_source"]
_TARGET_CODE = KIND_CODES["update_target"]


def mix_distance(a: dict[str, float], b: dict[str, float]) -> float:
    """Total-variation distance between two operation-mix dictionaries.

    Both arguments map operation kinds to fractions (as returned by
    :meth:`ChunkActivity.mix`); missing kinds count as zero.  The result lies
    in ``[0, 1]``: 0 for identical mixes, 1 for disjoint ones.  This is the
    drift metric the session reorganization policy thresholds.
    """
    kinds = set(a) | set(b)
    return 0.5 * sum(abs(a.get(kind, 0.0) - b.get(kind, 0.0)) for kind in kinds)


def synthesize_operation(kind: str, low: int, high: int) -> Operation | None:
    """Reconstruct a workload operation object for the replan sample.

    Both update sides are modelled as in-place corrections so the Frequency
    Model sees update pressure at the routed location.
    """
    if kind == "point_query":
        return PointQuery(key=low)
    if kind == "range_count":
        return RangeQuery(low=low, high=high)
    if kind == "range_sum":
        return RangeQuery(low=low, high=high, aggregate=Aggregate.SUM)
    if kind == "insert":
        return Insert(key=low)
    if kind == "delete":
        return Delete(key=low)
    if kind in ("update_source", "update_target"):
        return Update(old_key=low, new_key=low)
    return None


class RecentSample:
    """Bounded sliding window over the most recent attributed operations.

    Semantically a ``deque(maxlen=limit)`` of operations, stored columnar --
    ring buffers of kind codes and key bounds -- so the batched observation
    path appends whole arrays without materializing operation objects.
    Operation objects are synthesized lazily by :meth:`operations` (replans
    are rare; observations are not).
    """

    __slots__ = ("limit", "_codes", "_lows", "_highs", "_size", "_cursor")

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError("sample limit must be non-negative")
        self.limit = int(limit)
        self._codes = np.empty(self.limit, dtype=np.int8)
        self._lows = np.empty(self.limit, dtype=np.int64)
        self._highs = np.empty(self.limit, dtype=np.int64)
        self._size = 0
        self._cursor = 0

    def __len__(self) -> int:
        return self._size

    def append(self, code: int, low: int, high: int) -> None:
        """Append one operation (the scalar fast path's entry point)."""
        limit = self.limit
        if limit == 0:
            return
        cursor = self._cursor
        self._codes[cursor] = code
        self._lows[cursor] = low
        self._highs[cursor] = high
        self._cursor = (cursor + 1) % limit
        if self._size < limit:
            self._size += 1

    def extend(
        self,
        code: int | np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray | None = None,
    ) -> None:
        """Append ``lows.size`` operations, oldest evicted first.

        ``code`` is a single kind code, or an aligned code array for runs
        that mix kinds (paired update records interleave source and target
        entries).
        """
        limit = self.limit
        count = int(lows.shape[0])
        if limit == 0 or count == 0:
            return
        if highs is None:
            highs = lows
        scalar_code = not isinstance(code, np.ndarray)
        if count >= limit:
            # The whole window is replaced by the run's most recent entries.
            self._codes[:] = code if scalar_code else code[count - limit :]
            self._lows[:] = lows[count - limit :]
            self._highs[:] = highs[count - limit :]
            self._size = limit
            self._cursor = 0
            return
        cursor = self._cursor
        end = cursor + count
        if end <= limit:
            # Contiguous write: plain slice assignment, no index arrays.
            self._codes[cursor:end] = code
            self._lows[cursor:end] = lows
            self._highs[cursor:end] = highs
        else:
            head = limit - cursor
            self._codes[cursor:] = code if scalar_code else code[:head]
            self._lows[cursor:] = lows[:head]
            self._highs[cursor:] = highs[:head]
            tail = count - head
            self._codes[:tail] = code if scalar_code else code[head:]
            self._lows[:tail] = lows[head:]
            self._highs[:tail] = highs[head:]
        self._cursor = end % limit
        self._size = min(self._size + count, limit)

    def _ordered_indices(self) -> np.ndarray:
        if self._size < self.limit:
            return np.arange(self._size)
        return (self._cursor + np.arange(self.limit)) % self.limit

    def operations(self) -> list[Operation]:
        """The retained window as operation objects, oldest first."""
        indices = self._ordered_indices()
        out: list[Operation] = []
        for code, low, high in zip(
            self._codes[indices].tolist(),
            self._lows[indices].tolist(),
            self._highs[indices].tolist(),
            strict=True,
        ):
            operation = synthesize_operation(ATTRIBUTION_KINDS[code], low, high)
            if operation is not None:
                out.append(operation)
        return out

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations())


@dataclass
class ChunkActivity:
    """Recorded activity of one chunk: kind counts plus a bounded op sample.

    ``sample_limit`` bounds the retained operation window; the default
    matches :data:`DEFAULT_SAMPLE_LIMIT`, and a monitor constructs
    activities with its *configured* limit (directly-constructed activities
    honour whatever limit they are given, rather than silently falling back
    to the module default as the old hardcoded deque factory did).
    """

    counts: dict[str, int] = field(default_factory=dict)
    sample_limit: int = DEFAULT_SAMPLE_LIMIT
    sample: RecentSample | None = None

    def __post_init__(self) -> None:
        if self.sample is None:
            self.sample = RecentSample(self.sample_limit)
        else:
            self.sample_limit = self.sample.limit

    @property
    def total(self) -> int:
        """Total operations attributed to the chunk."""
        return sum(self.counts.values())

    def mix(self) -> dict[str, float]:
        """Fraction of operations of each kind."""
        total = self.total
        if total == 0:
            return {}
        return {kind: count / total for kind, count in self.counts.items()}


@guarded_class
class WorkloadMonitor:
    """Records per-chunk operation mixes and drives online re-planning.

    Parameters
    ----------
    sample_limit:
        Maximum number of operations retained per chunk as the replan
        workload sample.  The sample is a sliding window of the *most
        recent* operations, so a replan reflects the drifted mix rather
        than startup traffic; counts keep accumulating beyond the limit.
        Pass 0 to disable sampling entirely (drift counts only), which
        also skips the per-chunk grouping work on the batched ingest path.
    """

    def __init__(self, sample_limit: int = DEFAULT_SAMPLE_LIMIT) -> None:
        if sample_limit < 0:
            raise ValueError("sample_limit must be non-negative")
        self.sample_limit = int(sample_limit)
        self._activity: dict[int, ChunkActivity] = {}
        # Concurrent sessions flush their per-batch access logs against one
        # monitor; the re-entrant ingest lock serializes whole-record
        # ingestion, so count updates never lose a racing increment and a
        # ring-buffer window is only ever extended by one record at a time
        # -- which is what preserves the paired-update source_i/target_i
        # interleave (and every record's submission order) even when two
        # flushes truncate the same window concurrently.  Introspection
        # snapshots (counts, mixes, recorded windows) take the same lock so
        # a reorganization decision never reads a half-ingested record.
        self._lock = discipline.make_rlock("monitor")

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    @requires_lock("monitor")
    def _activity_for(self, chunk_index: int) -> ChunkActivity:
        activity = self._activity.get(chunk_index)
        if activity is None:
            activity = ChunkActivity(sample_limit=self.sample_limit)
            self._activity[chunk_index] = activity
        return activity

    def observe_batch(self, table, log: AccessLog) -> None:
        """Attribute every record of ``log`` in one vectorized pass each.

        Point-kind keys route through one ``searchsorted`` against the
        chunk fences (:meth:`Table.chunk_span_batch`, which charges no
        accesses); reads, deletes and update sources are attributed to the
        full candidate-chunk span, while write-target records (inserts,
        update targets) land in the first candidate chunk only.  Per-chunk
        counts accumulate on a kind-by-chunk matrix merged once per log;
        bounded samples take each record's per-chunk suffix in submission
        order, exactly as per-operation appends would retain it.
        """
        records = log.records if isinstance(log, AccessLog) else list(log)
        if not records:
            return
        with self._lock:
            counts = None
            for record in records:
                if record.lows.shape[0] <= 1:
                    # Scalar fast path: serial dispatch flushes one
                    # single-op record per operation; the vectorized
                    # machinery's fixed per-call overhead (count matrix,
                    # argsort, unique) would dominate it.
                    self._ingest_scalar(table, record)
                    continue
                if counts is None:
                    counts = np.zeros(
                        (len(ATTRIBUTION_KINDS), table.num_chunks),
                        dtype=np.int64,
                    )
                if record.kind == PAIRED_UPDATE_KIND:
                    self._ingest_update(table, record, counts)
                else:
                    self._ingest(table, record, counts)
            if counts is None:
                return
            kind_ids, chunk_ids = np.nonzero(counts)
            for kind_id, chunk_id in zip(kind_ids.tolist(), chunk_ids.tolist(), strict=True):
                activity = self._activity_for(chunk_id)
                kind = ATTRIBUTION_KINDS[kind_id]
                activity.counts[kind] = activity.counts.get(kind, 0) + int(
                    counts[kind_id, chunk_id]
                )

    @requires_lock("monitor")
    def _attribute_scalar(
        self,
        table,
        kind: str,
        low: int,
        high: int,
        *,
        range_kind: bool = False,
        first_only: bool = False,
    ) -> None:
        if range_kind:
            first, last = table.chunk_span(low, high)
        else:
            first, last = table.chunk_span(low)
            if first_only:
                last = first
        code = KIND_CODES[kind]
        for chunk_index in range(first, last + 1):
            activity = self._activity_for(chunk_index)
            activity.counts[kind] = activity.counts.get(kind, 0) + 1
            if self.sample_limit:
                activity.sample.append(code, low, high)

    @requires_lock("monitor")
    def _ingest_scalar(self, table, record: AccessRecord) -> None:
        """Single-operation attribution without the vectorized machinery."""
        if record.lows.shape[0] == 0:
            return
        low = int(record.lows[0])
        if record.kind == PAIRED_UPDATE_KIND:
            target = int(record.highs[0])
            self._attribute_scalar(table, "update_source", low, low)
            self._attribute_scalar(
                table, "update_target", target, target, first_only=True
            )
        elif record.kind in RANGE_KINDS:
            high = int(record.highs[0]) if record.highs is not None else low
            self._attribute_scalar(table, record.kind, low, high, range_kind=True)
        else:
            self._attribute_scalar(
                table, record.kind, low, low, first_only=record.write_target
            )

    @requires_lock("monitor")
    def _ingest_update(
        self, table, record: AccessRecord, counts: np.ndarray
    ) -> None:
        """Attribute one paired update record (sources + aligned targets).

        Counts split into ``update_source`` (full candidate span of each
        old key) and ``update_target`` (insert route of each new key);
        samples interleave source_i before target_i in submission order,
        exactly as per-pair serial dispatch appends them, so the bounded
        window is identical on both paths even under truncation.
        """
        sources = record.lows
        targets = record.highs
        m = int(sources.shape[0])
        source_first, source_last = table.chunk_span_batch(sources)
        target_first, _ = table.chunk_span_batch(targets)
        spans = source_last - source_first + 1
        source_positions = np.repeat(np.arange(m, dtype=np.int64), spans)
        source_chunks = expand_ranges(source_first, spans)
        np.add.at(counts[_SOURCE_CODE], source_chunks, 1)
        np.add.at(counts[_TARGET_CODE], target_first, 1)
        if self.sample_limit == 0:
            return
        chunks = np.concatenate((source_chunks, target_first))
        # Submission-order key: source_i at 2i, target_i at 2i + 1.
        order = np.concatenate(
            (2 * source_positions, 2 * np.arange(m, dtype=np.int64) + 1)
        )
        codes = np.concatenate(
            (
                np.full(source_chunks.shape[0], _SOURCE_CODE, dtype=np.int8),
                np.full(m, _TARGET_CODE, dtype=np.int8),
            )
        )
        values = np.concatenate((sources[source_positions], targets))
        sel = np.lexsort((order, chunks))
        sorted_chunks = chunks[sel]
        unique_chunks, group_starts, group_counts = np.unique(
            sorted_chunks, return_index=True, return_counts=True
        )
        for chunk_id, start, count in zip(
            unique_chunks.tolist(),
            group_starts.tolist(),
            group_counts.tolist(),
            strict=True,
        ):
            idx = sel[start : start + count]
            activity = self._activity_for(int(chunk_id))
            activity.sample.extend(codes[idx], values[idx], values[idx])

    @requires_lock("monitor")
    def _ingest(self, table, record: AccessRecord, counts: np.ndarray) -> None:
        """Attribute one record: count-matrix update plus sample appends."""
        lows = record.lows
        code = KIND_CODES[record.kind]
        if record.kind in RANGE_KINDS:
            highs = record.highs if record.highs is not None else lows
            first, last = table.chunk_span_batch(lows, highs)
        else:
            highs = None
            first, last = table.chunk_span_batch(lows)
            if record.write_target:
                last = first
        spans = last - first + 1
        if int(spans.max()) == 1:
            expanded_chunks = first
            expanded_positions = None  # positions are 0..m-1 in order
        else:
            expanded_positions = np.repeat(
                np.arange(lows.shape[0], dtype=np.int64), spans
            )
            expanded_chunks = expand_ranges(first, spans)
        np.add.at(counts[code], expanded_chunks, 1)
        if self.sample_limit == 0:
            return
        highs_arr = highs if highs is not None else lows
        # Group attributed positions by chunk; the stable sort keeps each
        # chunk's positions ascending, i.e. in submission order.
        order = np.argsort(expanded_chunks, kind="stable")
        sorted_chunks = expanded_chunks[order]
        sorted_positions = (
            order if expanded_positions is None else expanded_positions[order]
        )
        unique_chunks, group_starts, group_counts = np.unique(
            sorted_chunks, return_index=True, return_counts=True
        )
        for chunk_id, start, count in zip(
            unique_chunks.tolist(),
            group_starts.tolist(),
            group_counts.tolist(),
            strict=True,
        ):
            positions = sorted_positions[start : start + count]
            activity = self._activity_for(int(chunk_id))
            activity.sample.extend(code, lows[positions], highs_arr[positions])

    def observe(
        self,
        table,
        kind: str,
        low: int,
        high: int | None = None,
        *,
        write_target: bool = False,
    ) -> None:
        """Attribute one operation to the chunk span it touches.

        The scalar entry point of the same attribution routine
        :meth:`observe_batch` vectorizes (single-op records take this path
        too), so the per-operation and batched paths cannot drift apart.
        The legacy ``"update"`` kind is accepted and resolved to
        ``update_source`` / ``update_target`` via ``write_target``.
        """
        if kind == "update":
            kind = "update_target" if write_target else "update_source"
        if kind not in KIND_CODES:
            raise ValueError(f"unknown attribution kind: {kind!r}")
        low = int(low)
        with self._lock:
            if kind in RANGE_KINDS:
                self._attribute_scalar(
                    table,
                    kind,
                    low,
                    int(high) if high is not None else low,
                    range_kind=True,
                )
            else:
                self._attribute_scalar(
                    table,
                    kind,
                    low,
                    low,
                    first_only=write_target or kind in FIRST_CANDIDATE_KINDS,
                )

    def observe_workload(self, table, workload) -> None:
        """Attribute every operation of ``workload`` as the engine would.

        Translates operation objects into the access records the engine's
        dispatch methods append -- including the vectorized ``Multi*``
        batch forms and the source/target split of updates -- and ingests
        them through :meth:`observe_batch`.  Useful for seeding baseline
        chunk mixes from an offline training sample without executing it.
        """
        log = AccessLog()
        for operation in workload:
            if isinstance(operation, PointQuery):
                log.record("point_query", (operation.key,))
            elif isinstance(operation, RangeQuery):
                kind = (
                    "range_count"
                    if operation.aggregate is Aggregate.COUNT
                    else "range_sum"
                )
                log.record(kind, (operation.low,), (operation.high,))
            elif isinstance(operation, Insert):
                log.record("insert", (operation.key,))
            elif isinstance(operation, Delete):
                log.record("delete", (operation.key,))
            elif isinstance(operation, Update):
                log.record(
                    PAIRED_UPDATE_KIND,
                    (operation.old_key,),
                    (operation.new_key,),
                )
            elif isinstance(operation, MultiPointQuery):
                log.record("point_query", operation.keys)
            elif isinstance(operation, MultiRangeCount):
                bounds = np.asarray(operation.bounds, dtype=np.int64).reshape(
                    -1, 2
                )
                log.record("range_count", bounds[:, 0], bounds[:, 1])
            elif isinstance(operation, MultiInsert):
                log.record("insert", operation.keys)
            elif isinstance(operation, MultiDelete):
                log.record("delete", operation.keys)
            elif isinstance(operation, MultiUpdate):
                pairs = np.asarray(operation.pairs, dtype=np.int64).reshape(
                    -1, 2
                )
                log.record(PAIRED_UPDATE_KIND, pairs[:, 0], pairs[:, 1])
        self.observe_batch(table, log)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def observed_chunks(self) -> list[int]:
        """Chunk indices with any recorded activity, ascending."""
        with self._lock:
            return sorted(self._activity)

    def operation_counts(self, chunk_index: int) -> dict[str, int]:
        """Raw per-kind operation counts for one chunk."""
        with self._lock:
            activity = self._activity.get(chunk_index)
            return dict(activity.counts) if activity is not None else {}

    def chunk_mix(self, chunk_index: int) -> dict[str, float]:
        """Operation-mix fractions for one chunk (empty when unobserved)."""
        with self._lock:
            activity = self._activity.get(chunk_index)
            return activity.mix() if activity is not None else {}

    def hot_chunks(self, top: int | None = None) -> list[int]:
        """Chunk indices ordered by recorded operation volume, hottest first."""
        with self._lock:
            ranked = sorted(
                self._activity,
                key=lambda chunk: self._activity[chunk].total,
                reverse=True,
            )
        return ranked[:top] if top is not None else ranked

    def recorded_workload(self, chunk_index: int) -> Workload:
        """The retained operation sample for one chunk as a ``Workload``."""
        with self._lock:
            activity = self._activity.get(chunk_index)
            operations = (
                activity.sample.operations() if activity is not None else []
            )
        return Workload(operations=operations, name=f"monitor[chunk={chunk_index}]")

    def reset_chunk(self, chunk_index: int) -> None:
        """Forget one chunk's recorded activity (after a replan)."""
        with self._lock:
            self._activity.pop(chunk_index, None)

    def reset(self) -> None:
        """Forget all recorded activity."""
        with self._lock:
            self._activity.clear()

    # ------------------------------------------------------------------ #
    # Online reorganization
    # ------------------------------------------------------------------ #

    def replan_chunk(self, table, chunk_index: int, planner):
        """Re-lay-out ``chunk_index`` of ``table`` in place via ``planner``.

        When the monitor holds a recorded sample for the chunk, the planner
        is re-targeted at it (:meth:`CasperPlanner.with_sample`), so the new
        layout reflects the observed -- possibly drifted -- mix rather than
        the offline training sample.  The chunk's recorded activity is reset
        afterwards so the next drift decision starts fresh.  Returns the
        rebuilt chunk.
        """
        sample = self.recorded_workload(chunk_index)
        if len(sample) and hasattr(planner, "with_sample"):
            planner = planner.with_sample(sample)
        rebuilt = table.rebuild_chunk(chunk_index, planner.build_chunk)
        self.reset_chunk(chunk_index)
        return rebuilt
