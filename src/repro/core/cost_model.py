"""Cost model for operations over partitioned columns (Section 4.4).

Given a Frequency Model and a candidate partitioning, the cost model predicts
the total block-access cost of executing the sample workload.  A partitioning
over ``N`` logical blocks is represented by a boolean vector ``p`` where
``p[i] = 1`` means a partition ends at block ``i`` (Section 4.1); ``p[N-1]``
must always be 1.

The model is built from three structural quantities (Eqs. 2, 4 and 8):

* ``bck_read(i)`` -- blocks before ``i`` inside the same partition,
* ``fwd_read(i)`` -- blocks after ``i`` inside the same partition,
* ``trail_parts(i)`` -- partitions ending at or after block ``i``,

and the per-block workload terms of Eq. 17.  The total workload cost (Eq. 16)
is what the optimizer minimizes; per-operation costs (Eqs. 3-15) are exposed
for the cost-model-verification experiment (Fig. 9) and for SLA reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.cost_accounting import DEFAULT_COST_CONSTANTS, CostConstants
from .frequency_model import FrequencyModel


def validate_partitioning(p: np.ndarray | list[int]) -> np.ndarray:
    """Validate and normalize a partition-boundary vector.

    Returns a boolean numpy array.  The last element must be set (the chunk
    always forms at least one partition).
    """
    vector = np.asarray(p)
    if vector.ndim != 1 or vector.size == 0:
        raise ValueError("partitioning vector must be a non-empty 1-D array")
    vector = vector.astype(bool)
    if not vector[-1]:
        raise ValueError("the last block must be a partition boundary (p[N-1]=1)")
    return vector


def boundaries_to_vector(num_blocks: int, boundary_blocks: np.ndarray | list[int]) -> np.ndarray:
    """Convert exclusive block end offsets into a boundary bit vector."""
    vector = np.zeros(num_blocks, dtype=bool)
    for end in boundary_blocks:
        end = int(end)
        if end <= 0 or end > num_blocks:
            raise ValueError(f"boundary block {end} out of range (0, {num_blocks}]")
        vector[end - 1] = True
    vector[num_blocks - 1] = True
    return vector


def vector_to_boundaries(p: np.ndarray) -> np.ndarray:
    """Convert a boundary bit vector into exclusive block end offsets."""
    vector = validate_partitioning(p)
    return np.nonzero(vector)[0] + 1


def partition_of_blocks(p: np.ndarray) -> np.ndarray:
    """Partition id of every block under partitioning ``p``."""
    vector = validate_partitioning(p)
    ends = np.nonzero(vector)[0]
    return np.searchsorted(ends, np.arange(vector.size), side="left")


def bck_read(p: np.ndarray) -> np.ndarray:
    """Eq. 2: for each block, the number of preceding blocks in its partition."""
    vector = validate_partitioning(p)
    n = vector.size
    result = np.zeros(n, dtype=np.float64)
    run = 0
    for i in range(n):
        result[i] = run
        run = 0 if vector[i] else run + 1
    return result


def fwd_read(p: np.ndarray) -> np.ndarray:
    """Eq. 4: for each block, the number of following blocks in its partition."""
    vector = validate_partitioning(p)
    n = vector.size
    result = np.zeros(n, dtype=np.float64)
    run = 0
    for i in range(n - 1, -1, -1):
        if vector[i]:
            run = 0
        result[i] = run
        run += 1
    return result


def trail_parts(p: np.ndarray) -> np.ndarray:
    """Eq. 8: for each block, the number of partitions ending at or after it."""
    vector = validate_partitioning(p)
    return np.cumsum(vector[::-1])[::-1].astype(np.float64)


@dataclass(frozen=True)
class WorkloadTerms:
    """The per-block terms of Eq. 17."""

    fixed: np.ndarray
    bck: np.ndarray
    fwd: np.ndarray
    parts: np.ndarray


class CostModel:
    """Workload cost model over a single column chunk."""

    def __init__(
        self,
        frequency_model: FrequencyModel,
        constants: CostConstants = DEFAULT_COST_CONSTANTS,
    ) -> None:
        self.frequency_model = frequency_model
        self.constants = constants
        self._terms = self._compute_terms()

    @property
    def num_blocks(self) -> int:
        """Number of logical blocks in the chunk."""
        return self.frequency_model.num_blocks

    @property
    def terms(self) -> WorkloadTerms:
        """The per-block terms of Eq. 17."""
        return self._terms

    def _compute_terms(self) -> WorkloadTerms:
        fm = self.frequency_model
        rr = self.constants.random_read
        rw = self.constants.random_write
        sr = self.constants.seq_read

        fixed = (
            rr * (fm.rs + fm.pq + fm.ins + fm.de + 2 * fm.udf + 2 * fm.udb)
            + sr * (fm.re + fm.sc)
            + rw * (fm.ins + fm.de + 2 * fm.udf + 2 * fm.udb)
        )
        bck = sr * (fm.rs + fm.pq + fm.de + fm.udf + fm.udb)
        fwd = sr * (fm.re + fm.pq + fm.de + fm.udf + fm.udb)
        parts = (rr + rw) * (
            fm.ins + fm.de + fm.udf - fm.utf - fm.udb + fm.utb
        )
        return WorkloadTerms(fixed=fixed, bck=bck, fwd=fwd, parts=parts)

    # ------------------------------------------------------------------ #
    # Total workload cost (Eq. 16)
    # ------------------------------------------------------------------ #

    def total_cost(self, p: np.ndarray | list[int]) -> float:
        """Total workload cost (Eq. 16) under partitioning ``p``."""
        vector = validate_partitioning(p)
        if vector.size != self.num_blocks:
            raise ValueError("partitioning length must equal num_blocks")
        terms = self._terms
        return float(
            terms.fixed.sum()
            + (terms.bck * bck_read(vector)).sum()
            + (terms.fwd * fwd_read(vector)).sum()
            + (terms.parts * trail_parts(vector)).sum()
        )

    def cost_breakdown(self, p: np.ndarray | list[int]) -> dict[str, float]:
        """Total cost split into its four structural components."""
        vector = validate_partitioning(p)
        terms = self._terms
        return {
            "fixed": float(terms.fixed.sum()),
            "bck": float((terms.bck * bck_read(vector)).sum()),
            "fwd": float((terms.fwd * fwd_read(vector)).sum()),
            "parts": float((terms.parts * trail_parts(vector)).sum()),
        }

    # ------------------------------------------------------------------ #
    # Per-operation costs (Eqs. 3-15) -- used by Fig. 9 and the SLA logic
    # ------------------------------------------------------------------ #

    def point_query_cost(self, block: int, p: np.ndarray) -> float:
        """Eq. 7 for a single point query landing in ``block``."""
        vector = validate_partitioning(p)
        rr, sr = self.constants.random_read, self.constants.seq_read
        return float(
            rr + sr * (fwd_read(vector)[block] + bck_read(vector)[block])
        )

    def range_query_cost(self, start_block: int, end_block: int, p: np.ndarray) -> float:
        """Eqs. 3, 5 and 6 for a single range query."""
        vector = validate_partitioning(p)
        rr, sr = self.constants.random_read, self.constants.seq_read
        cost = rr + sr * bck_read(vector)[start_block]
        if end_block > start_block:
            cost += sr + sr * fwd_read(vector)[end_block]
            cost += sr * max(end_block - start_block - 1, 0)
        return float(cost)

    def insert_cost(self, block: int, p: np.ndarray) -> float:
        """Eq. 9 for a single insert landing in ``block``."""
        vector = validate_partitioning(p)
        rr, rw = self.constants.random_read, self.constants.random_write
        return float((rr + rw) * (1 + trail_parts(vector)[block]))

    def delete_cost(self, block: int, p: np.ndarray) -> float:
        """Eq. 11 for a single delete targeting ``block``."""
        vector = validate_partitioning(p)
        rr, rw = self.constants.random_read, self.constants.random_write
        ripple = rw + (rr + rw) * trail_parts(vector)[block]
        return float(self.point_query_cost(block, vector) + ripple)

    def update_cost(self, from_block: int, to_block: int, p: np.ndarray) -> float:
        """Eqs. 12-15 for a single (direct ripple) update."""
        vector = validate_partitioning(p)
        rr, rw = self.constants.random_read, self.constants.random_write
        base = self.point_query_cost(from_block, vector) + (rr + 2 * rw)
        trail = trail_parts(vector)
        ripple = (rr + rw) * abs(trail[from_block] - trail[to_block])
        return float(base + ripple)

    def per_operation_totals(self, p: np.ndarray | list[int]) -> dict[str, float]:
        """Estimated total cost per operation class for the whole workload."""
        vector = validate_partitioning(p)
        fm = self.frequency_model
        rr, rw, sr = (
            self.constants.random_read,
            self.constants.random_write,
            self.constants.seq_read,
        )
        back = bck_read(vector)
        forward = fwd_read(vector)
        trailing = trail_parts(vector)

        point = (fm.pq * (rr + sr * (back + forward))).sum()
        ranges = (
            fm.rs * (rr + sr * back)
            + fm.re * (sr + sr * forward)
            + fm.sc * sr
        ).sum()
        inserts = (fm.ins * (rr + rw) * (1 + trailing)).sum()
        deletes = (
            fm.de * (rr + sr * (back + forward))
            + fm.de * rw
            + fm.de * (rr + rw) * trailing
        ).sum()
        updates_f = (
            fm.udf * (rr + sr * (back + forward))
            + fm.udf * (rr + 2 * rw)
            + (fm.udf - fm.utf) * (rr + rw) * trailing
        ).sum()
        updates_b = (
            fm.udb * (rr + sr * (back + forward))
            + fm.udb * (rr + 2 * rw)
            + (fm.utb - fm.udb) * (rr + rw) * trailing
        ).sum()
        return {
            "point_query": float(point),
            "range_query": float(ranges),
            "insert": float(inserts),
            "delete": float(deletes),
            "update": float(updates_f + updates_b),
        }

    # ------------------------------------------------------------------ #
    # Design-space sweeps (Fig. 2)
    # ------------------------------------------------------------------ #

    def equi_width_cost_curve(self, partition_counts: list[int]) -> dict[int, float]:
        """Total cost under equi-width partitioning for each partition count."""
        curve: dict[int, float] = {}
        for k in partition_counts:
            k = max(1, min(int(k), self.num_blocks))
            ends = np.unique(
                np.round(np.linspace(0, self.num_blocks, k + 1)[1:]).astype(int)
            )
            vector = boundaries_to_vector(self.num_blocks, ends)
            curve[k] = self.total_cost(vector)
        return curve
