"""Durability subsystem: batch-delta WAL, chunk snapshots, crash recovery.

Layered bottom-up:

* :mod:`~repro.durability.faults` -- injectable crash points, transient
  I/O errors and the :func:`retry_io` bounded-backoff helper;
* :mod:`~repro.durability.wal` -- LSN-prefixed, CRC-checksummed segments
  of encoded batch deltas with group-commit fsync and torn-tail
  truncation on open;
* :mod:`~repro.durability.snapshot` -- chunk-level snapshots (consistent
  ``Table.snapshot_chunk`` copies) committed by atomic directory rename;
* :mod:`~repro.durability.manager` -- the commit lock, fsync policies,
  checkpoints, segment rotation/GC and read-only degradation;
* :mod:`~repro.durability.recovery` -- latest snapshot + idempotent WAL
  replay back to an oracle-equal table.

The storage engine integrates through
:meth:`StorageEngine.attach_durability`; most callers go through
``Database.from_rows(..., durability=...)`` / ``Database.open(...)``.
"""

from .errors import (
    DurabilityError,
    ReadOnlyError,
    RecoveryError,
    SnapshotCorruptionError,
    WalCorruptionError,
    WalUnavailableError,
)
from .faults import CRASH_POINTS, FaultInjector, InjectedCrash, retry_io
from .manager import FSYNC_POLICIES, DurabilityConfig, DurabilityManager
from .recovery import (
    RecoveryReport,
    apply_delta_log,
    recover,
    replay,
    spec_to_meta,
    table_from_snapshot,
)
from .snapshot import (
    LoadedSnapshot,
    SnapshotInfo,
    list_snapshots,
    load_latest_snapshot,
    load_snapshot,
    write_snapshot,
)
from .wal import (
    SegmentScan,
    WalWriter,
    decode_delta_log,
    encode_delta_log,
    scan_segment,
)

__all__ = [
    "CRASH_POINTS",
    "FSYNC_POLICIES",
    "DurabilityConfig",
    "DurabilityError",
    "DurabilityManager",
    "FaultInjector",
    "InjectedCrash",
    "LoadedSnapshot",
    "ReadOnlyError",
    "RecoveryError",
    "RecoveryReport",
    "SegmentScan",
    "SnapshotCorruptionError",
    "SnapshotInfo",
    "WalCorruptionError",
    "WalUnavailableError",
    "WalWriter",
    "apply_delta_log",
    "decode_delta_log",
    "encode_delta_log",
    "list_snapshots",
    "load_latest_snapshot",
    "load_snapshot",
    "recover",
    "replay",
    "retry_io",
    "scan_segment",
    "spec_to_meta",
    "table_from_snapshot",
    "write_snapshot",
]
