"""The durability manager: commit scope, group commit, checkpoints, GC.

One :class:`DurabilityManager` owns a log directory::

    <root>/
      wal/        wal-<first lsn>.log segments (rotated at checkpoints)
      snapshots/  snap-<lsn>/ chunk snapshots (see snapshot.py)

and exposes the three verbs the engine needs:

* ``append(delta_log)`` -- encode one commit scope's deltas as the next
  WAL record.  Callers hold :attr:`commit_lock` (order name
  ``wal_commit``, declared *outside* the chunk latches in
  :data:`repro.discipline.LOCK_ORDER`) across **apply + append**, which is
  the invariant the whole design rests on: a checkpoint takes the same
  lock, so a snapshot can never capture table state whose deltas are not
  yet in the log (which replay would then apply twice).  Read-only batches
  never touch the lock.
* ``sync()`` / ``sync_for_policy()`` -- group-commit fsync under the
  writer's ``wal_sync`` lock, governed by the fsync policy:
  ``"always"`` fsyncs before every commit acknowledgement, ``"interval"``
  fsyncs once at least ``sync_interval_bytes`` have accumulated, ``"os"``
  leaves flushing to the OS (fastest, loses the un-synced tail on power
  failure -- never on a mere process kill).
* ``checkpoint(table)`` -- snapshot every chunk at the current LSN,
  rotate to a fresh WAL segment and garbage-collect snapshots beyond
  ``keep_snapshots`` plus every segment fully covered by the oldest kept
  snapshot.

Failure handling: when the WAL writer exhausts its bounded I/O retries
(the log directory became unwritable), the manager trips into *read-only
degradation* -- ``require_writable`` raises
:class:`~repro.durability.errors.ReadOnlyError` for every later write
while reads keep flowing.  In-memory state may then be ahead of the
durable log; the un-acknowledged tail is lost on restart, which is
exactly what the missing acknowledgement promised.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro import discipline
from repro.discipline import guarded_class, requires_lock

from .errors import ReadOnlyError, WalUnavailableError
from .faults import FaultInjector, InjectedCrash
from .snapshot import (
    SnapshotInfo,
    list_snapshots,
    snapshot_lsn,
    write_snapshot,
)
from .wal import WalWriter, encode_delta_log, segment_first_lsn, segment_name

if TYPE_CHECKING:
    from ..storage.access_log import DeltaLog
    from ..storage.table import Table

#: Valid fsync policies, strongest first.
FSYNC_POLICIES = ("always", "interval", "os")


@dataclass(frozen=True)
class DurabilityConfig:
    """Behavioral knobs of a durability manager.

    ``root`` is the log directory; everything else tunes the write path.
    ``faults`` attaches a :class:`FaultInjector` to every I/O site (tests
    and the crash-recovery demo only).
    """

    root: str | os.PathLike
    fsync: str = "always"
    sync_interval_bytes: int = 1 << 20
    max_retries: int = 4
    retry_backoff_s: float = 0.002
    keep_snapshots: int = 2
    #: Retention fallback for followers that cannot register a cursor pin
    #: (e.g. a replica process that tails the log directory without a
    #: primary endpoint): checkpoint GC always keeps this many rotated
    #: segments behind the live one, on top of whatever registered pins
    #: demand.
    keep_segments: int = 0
    faults: FaultInjector | None = None

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )


@guarded_class
class DurabilityManager:
    """Durability engine-side façade over one log directory."""

    def __init__(
        self,
        config: DurabilityConfig,
        *,
        meta: dict,
        next_lsn: int | None = None,
        sleep=time.sleep,
    ) -> None:
        self.config = config
        self.root = Path(config.root)
        self.wal_dir = self.root / "wal"
        self.snapshot_dir = self.root / "snapshots"
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_dir.mkdir(parents=True, exist_ok=True)
        #: Table-reconstruction metadata stamped into every snapshot
        #: manifest (chunk size, payload names, layout spec).
        self.meta = dict(meta)
        self._sleep = sleep
        self._commit_lock = discipline.make_lock("wal_commit")
        # Replication cursor pins: owner -> last applied LSN.  Checkpoint
        # GC never deletes a segment holding records above the lowest pin,
        # so a live cursor can never land on a deleted segment.
        self._pins_lock = discipline.make_lock("replica_pins")
        self._pins: dict[str, int] = {}
        self._read_only = False
        self._last_checkpoint = self._latest_snapshot_lsn()
        segments = self.segments()
        if segments:
            segment_path = segments[-1]
        else:
            first = next_lsn if next_lsn is not None else self._last_checkpoint + 1
            segment_path = self.wal_dir / segment_name(first)
        self.wal = self._open_writer(segment_path)

    # -- construction helpers ------------------------------------------ #

    def _open_writer(self, path: Path) -> WalWriter:
        return WalWriter(
            path,
            faults=self.config.faults,
            max_retries=self.config.max_retries,
            retry_backoff_s=self.config.retry_backoff_s,
            sleep=self._sleep,
        )

    def _latest_snapshot_lsn(self) -> int:
        snapshots = list_snapshots(self.snapshot_dir)
        return snapshot_lsn(snapshots[0]) if snapshots else 0

    def segments(self) -> list[Path]:
        """WAL segment files in ascending first-LSN order."""
        return sorted(
            self.wal_dir.glob("wal-*.log"), key=segment_first_lsn
        )

    # -- introspection -------------------------------------------------- #

    @property
    def commit_lock(self):
        """The ``wal_commit`` lock: held across [apply + append] by every
        durable write scope and across the whole of :meth:`checkpoint`."""
        return self._commit_lock

    @property
    def last_lsn(self) -> int:
        """LSN of the last appended (not necessarily durable) commit."""
        return self.wal.appended_lsn

    @property
    def durable_lsn(self) -> int:
        """LSN of the last commit covered by an fsync."""
        return self.wal.synced_lsn

    @property
    def last_checkpoint_lsn(self) -> int:
        """LSN of the most recent committed snapshot."""
        return self._last_checkpoint

    @property
    def read_only(self) -> bool:
        """Whether the manager degraded to read-only mode."""
        return self._read_only or self.wal.failed

    def require_writable(self) -> None:
        """Raise :class:`ReadOnlyError` when writes can no longer be
        made durable (reads are unaffected)."""
        if self.read_only:
            raise ReadOnlyError(
                "durability layer is in read-only degradation: the write-ahead "
                "log became unwritable; reopen the database to resume writes"
            )

    # -- replication cursor pins ---------------------------------------- #

    def pin_lsn(self, owner: str, lsn: int) -> None:
        """Declare that ``owner`` has applied the log through ``lsn``.

        Every record with a larger LSN stays replayable: checkpoint GC
        will not delete the segments holding them until the pin advances
        past them or is released.  Re-pinning moves the watermark (it
        normally only grows, but a re-bootstrapping follower may legally
        move it back to its new snapshot's LSN).
        """
        with self._pins_lock:
            self._pins[owner] = int(lsn)

    def release_pin(self, owner: str) -> None:
        """Drop ``owner``'s retention pin (idempotent)."""
        with self._pins_lock:
            self._pins.pop(owner, None)

    def pins(self) -> dict[str, int]:
        """A copy of the live cursor pins (owner -> applied LSN)."""
        with self._pins_lock:
            return dict(self._pins)

    def retention_floor(self) -> int | None:
        """Lowest pinned LSN, or ``None`` when no cursor is registered."""
        with self._pins_lock:
            return min(self._pins.values(), default=None)

    # -- commit path ---------------------------------------------------- #

    @requires_lock("wal_commit")
    def append(self, deltas: "DeltaLog") -> int:
        """Encode one commit scope's deltas as the next WAL record.

        Returns the record's LSN.  On persistent I/O failure the writer
        shuts down and the manager degrades to read-only; the in-memory
        state keeps the applied writes (they were never acknowledged as
        durable, and their loss surface is a restart)."""
        lsn = self.wal.appended_lsn + 1
        try:
            self.wal.append(lsn, encode_delta_log(deltas))
        except WalUnavailableError:
            self._read_only = True
            raise
        return lsn

    def sync(self) -> int:
        """Force a group-commit fsync; return the durable LSN."""
        try:
            return self.wal.sync()
        except WalUnavailableError:
            with self._commit_lock:
                self._read_only = True
            raise

    def sync_for_policy(self) -> int:
        """Apply the configured fsync policy after an append."""
        if self.config.fsync == "always":
            return self.sync()
        if (
            self.config.fsync == "interval"
            and self.wal.unsynced_bytes >= self.config.sync_interval_bytes
        ):
            return self.sync()
        return self.durable_lsn

    # -- checkpoint / GC ------------------------------------------------ #

    def checkpoint(self, table: "Table") -> SnapshotInfo:
        """Snapshot ``table``, rotate the WAL and collect garbage.

        Runs under the commit lock, so the snapshot captures exactly the
        state described by WAL records ``<= lsn`` -- durable writers are
        excluded for the duration (reads are not).  The tail of the old
        segment is fsynced before the snapshot commits, then appends
        continue into a fresh ``wal-<lsn + 1>.log`` segment.
        """
        with self._commit_lock:
            self.require_writable()
            lsn = self.wal.appended_lsn
            try:
                self.wal.sync()
                info = write_snapshot(
                    self.snapshot_dir,
                    table,
                    lsn,
                    self.meta,
                    faults=self.config.faults,
                    max_retries=self.config.max_retries,
                    retry_backoff_s=self.config.retry_backoff_s,
                    sleep=self._sleep,
                )
                self.wal.close()
                self.wal = self._open_writer(
                    self.wal_dir / segment_name(lsn + 1)
                )
            except InjectedCrash:
                # Simulated process death mid-checkpoint: release the fd
                # (what the OS would do) and let the "kill" propagate.
                self.wal.abandon()
                raise
            except WalUnavailableError:
                self._read_only = True
                raise
            self._last_checkpoint = info.lsn
            self._collect_garbage(info.lsn)
            return info

    def _collect_garbage(self, newest_lsn: int) -> None:
        """Drop snapshots beyond ``keep_snapshots`` (plus stale partials)
        and WAL segments fully covered by the oldest *kept* snapshot.

        Registered replication cursors lower the deletion floor to their
        lowest pinned LSN, and ``keep_segments`` additionally exempts the
        newest rotated segments, so a follower tailing the log -- pinned
        or merely configured for -- never lands on a deleted segment.
        """
        keep = max(1, int(self.config.keep_snapshots))
        snapshots = list_snapshots(self.snapshot_dir)
        for stale in snapshots[keep:]:
            shutil.rmtree(stale, ignore_errors=True)
        for partial in self.snapshot_dir.glob("snap-*.partial"):
            if snapshot_lsn(Path(str(partial)[: -len(".partial")])) <= newest_lsn:
                shutil.rmtree(partial, ignore_errors=True)
        kept = list_snapshots(self.snapshot_dir)
        floor = snapshot_lsn(kept[-1]) if kept else 0
        pin_floor = self.retention_floor()
        if pin_floor is not None:
            floor = min(floor, pin_floor)
        segments = self.segments()
        # Segment k covers LSNs [first_k, first_{k+1}); it is garbage once
        # the *next* segment starts at or below the replay floor + 1.  The
        # live segment and the ``keep_segments`` newest rotated ones are
        # never candidates.
        stop = len(segments) - 1 - max(0, int(self.config.keep_segments))
        for index in range(max(0, stop)):
            if segment_first_lsn(segments[index + 1]) <= floor + 1:
                segments[index].unlink(missing_ok=True)

    # -- lifecycle ------------------------------------------------------ #

    def close(self) -> None:
        """Fsync the tail (best effort once degraded) and release fds."""
        try:
            self.wal.close(sync=not self.read_only)
        except WalUnavailableError:
            self.wal.abandon()
