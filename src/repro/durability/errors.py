"""Exception hierarchy for the durability subsystem."""

from __future__ import annotations


class DurabilityError(RuntimeError):
    """Base class for all durability-layer errors."""


class WalCorruptionError(DurabilityError):
    """A WAL segment failed structural validation (bad magic, CRC mismatch
    or an LSN gap) somewhere other than its tail.

    A *torn tail* -- an incomplete or CRC-rejected final record -- is not an
    error: it is the expected shape of a crash mid-append and is silently
    truncated on open.  This exception marks corruption the torn-tail rule
    cannot explain, i.e. data loss in the middle of the committed history.
    """


class SnapshotCorruptionError(DurabilityError):
    """A snapshot directory failed validation (missing manifest, CRC
    mismatch, short chunk file).  Recovery falls back to the next older
    snapshot; the error surfaces only when no intact snapshot remains."""


class WalUnavailableError(DurabilityError):
    """The WAL writer exhausted its bounded retries against persistent I/O
    failures and shut itself down.  The owning manager degrades the engine
    to read-only mode; see :class:`ReadOnlyError`."""


class ReadOnlyError(DurabilityError):
    """A write was attempted while the durability layer is in read-only
    degradation (the log directory became unwritable).  Reads keep working;
    writes are refused rather than silently accepted without durability."""


class RecoveryError(DurabilityError):
    """Recovery could not reconstruct a table (no intact snapshot, or the
    WAL history between the snapshot and the head has a gap)."""
