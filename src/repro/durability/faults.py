"""Fault injection for the durability subsystem.

The WAL writer and the snapshot writer call :meth:`FaultInjector.hit` at
named *crash points* along their I/O paths.  A test (or the
``examples/crash_recovery.py`` demo) configures an injector to raise at one
of them, which simulates a process kill at exactly that instant:

===========================  ====================================================
crash point                  the process dies ...
===========================  ====================================================
``wal.append.begin``         before any byte of the record reaches the file
``wal.append.header``        after the 16-byte record header, body missing
``wal.append.partial``       mid-body -- a torn record with a valid header
``wal.append.full``          after the full record, before the commit returns
``wal.fsync``                during the fsync that would make the tail durable
``snapshot.chunk``           while writing a snapshot chunk file
``snapshot.manifest``        after chunk files, before the manifest commits
===========================  ====================================================

Crashes are raised as :class:`InjectedCrash`, a ``BaseException`` subclass
so no library-level ``except Exception`` handler can accidentally swallow
the "process death" and keep running.  The I/O layer catches it only to
close file descriptors (what the OS would do) and re-raises.

The same injector also models *transient* I/O failures: ``io_error_at``
makes the first ``io_errors`` hits of a point raise :class:`OSError`, which
exercises the WAL writer's bounded retry-with-backoff; setting ``io_errors``
higher than the retry budget models a log directory that became unwritable
and drives the graceful degradation to read-only mode.

With ``power_loss=True`` a crash additionally drops every WAL byte that was
written but not yet fsynced (the file is truncated back to the last synced
offset), modelling power failure rather than a mere process kill.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

#: Every named crash point, in pipeline order (the CI fault-injection job
#: runs a matrix over this tuple; keep it in sync with the table above).
CRASH_POINTS = (
    "wal.append.begin",
    "wal.append.header",
    "wal.append.partial",
    "wal.append.full",
    "wal.fsync",
    "snapshot.chunk",
    "snapshot.manifest",
)

#: Points that may also raise transient ``OSError`` via ``io_error_at``.
IO_POINTS = ("wal.write", "wal.fsync", "snapshot.write")

#: Kill points along the two-phase cross-shard move window.  These are
#: *worker* kill hooks, not injector crash points: the shard worker
#: counts its move verbs and ``os._exit(1)``-s when the attach request's
#: fault dict maps one of these names to the current count (mirroring the
#: ``exit_before_apply`` / ``exit_before_ack`` batch hooks).  They are
#: deliberately not part of :data:`CRASH_POINTS` -- the single-process
#: crash-recovery example matrix stays valid -- and are consumed by the
#: mid-move kill matrix in ``tests/sharding/test_recovery.py``.
MOVE_POINTS = (
    "move.take.before_apply",
    "move.take.before_ack",
    "move.put.before_apply",
    "move.put.before_ack",
    "move.forget.before_apply",
)


class InjectedCrash(BaseException):
    """A simulated process kill at a named crash point.

    Deliberately *not* an :class:`Exception` subclass: nothing below the
    test harness may catch-and-continue past a simulated death.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point}")
        self.point = point


@dataclass
class FaultInjector:
    """Configurable fault source shared by the WAL and snapshot writers.

    Parameters
    ----------
    crash_at:
        Crash-point name (one of :data:`CRASH_POINTS`) to die at, or
        ``None`` for no crash.
    crash_hit:
        Die on the N-th hit of ``crash_at`` (1-based), so a test can let a
        few commits succeed before the kill.
    power_loss:
        When true, a WAL crash also discards the un-fsynced tail (the
        writer truncates the file back to its last synced offset before
        dying), modelling power failure instead of a process kill.
    io_error_at:
        Point name whose next ``io_errors`` hits raise a transient
        :class:`OSError` before any crash check.
    io_errors:
        Number of transient failures to inject at ``io_error_at``.
    """

    crash_at: str | None = None
    crash_hit: int = 1
    power_loss: bool = False
    io_error_at: str | None = None
    io_errors: int = 0
    hits: Counter = field(default_factory=Counter)
    crashed: bool = False

    def hit(self, point: str) -> None:
        """Record one pass through ``point``; raise any configured fault."""
        self.hits[point] += 1
        if self.io_error_at == point and self.io_errors > 0:
            self.io_errors -= 1
            raise OSError(f"injected transient I/O failure at {point}")
        if (
            not self.crashed
            and self.crash_at == point
            and self.hits[point] >= self.crash_hit
        ):
            self.crashed = True
            raise InjectedCrash(point)


def retry_io(
    fn,
    *,
    point: str,
    faults: FaultInjector | None = None,
    max_retries: int = 4,
    backoff_s: float = 0.002,
    sleep=time.sleep,
    on_crash=None,
):
    """Run ``fn`` with bounded retry-with-backoff against transient I/O.

    Each attempt first consults ``faults`` (when attached), so injected
    transient errors and injected crashes flow through the *same* path real
    ``OSError`` / real death would.  Transient failures back off
    exponentially (``backoff_s``, doubled per retry, capped at 100ms) for at
    most ``max_retries`` retries; exhaustion re-raises the last ``OSError``
    for the caller to convert into its degradation mode.  An
    :class:`InjectedCrash` runs ``on_crash`` (fd cleanup -- what the OS
    would do to a dead process) and propagates immediately: death is not
    retriable.
    """
    delay = backoff_s
    last: OSError | None = None
    for attempt in range(max_retries + 1):
        try:
            if faults is not None:
                faults.hit(point)
            return fn()
        except InjectedCrash:
            if on_crash is not None:
                on_crash()
            raise
        except OSError as exc:
            last = exc
            if attempt == max_retries:
                break
            sleep(delay)
            delay = min(delay * 2, 0.1)
    raise last
