"""LSN-prefixed, checksummed write-ahead log of batch deltas.

One WAL *record* is one durable commit scope -- the whole delta log of an
``execute_batch`` call (or one serial write) -- framed as::

    +--------+----------+---------+------------------+
    | lsn u64| length u32| crc u32 | body (length B)  |
    +--------+----------+---------+------------------+

with ``crc = crc32(lsn || length || body)``.  The body packs the scope's
:class:`~repro.storage.access_log.DeltaRecord` list: a ``u32`` record
count (high bit = the scope was one atomic transaction commit), then per
record a ``u8`` kind code, a ``u32`` run length and the key / payload /
target-key arrays as little-endian ``int64`` bytes.  No pickle anywhere:
a corrupted log can at worst fail a CRC, never execute.

A segment file starts with the 8-byte magic ``RPROWAL1`` and is named
``wal-<first lsn>.log``; the manager rotates to a fresh segment at every
checkpoint so segments fully covered by a retained snapshot can be
garbage-collected as whole files.

Crash safety on the write path:

* records are appended with ``os.write`` on an unbuffered descriptor, so a
  simulated crash leaves exactly the bytes that were written -- including
  torn tails, which :func:`scan_segment` detects by CRC and the writer
  truncates away on reopen;
* ``sync`` implements *group commit*: it latches the current appended
  offset, fsyncs once under the sync lock and publishes the durable
  watermark, so every record appended before the fsync -- possibly by many
  committers -- is covered by that one fsync, and a committer arriving
  while a sync is in flight coalesces onto the next one;
* all I/O runs through bounded retry-with-backoff
  (:func:`repro.durability.faults.retry_io`); exhausting the retries
  marks the writer failed, which the manager converts into read-only
  degradation.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import discipline
from repro.discipline import guarded_class, requires_lock

from ..storage.access_log import DELTA_KIND_CODES, DELTA_KINDS, DeltaLog, DeltaRecord
from .errors import WalCorruptionError, WalUnavailableError
from .faults import FaultInjector, InjectedCrash, retry_io

#: Segment file magic: format name + version, bumped on layout changes.
MAGIC = b"RPROWAL1"

#: Record frame: LSN, body length, CRC-32 of (lsn || length || body).
_FRAME = struct.Struct("<QII")

#: CRC input prefix: the frame minus the CRC field itself.
_CRC_PREFIX = struct.Struct("<QI")

#: Per-delta-record header inside a body: kind code, run length, payload
#: width (0 for kinds without payload rows).
_RECORD = struct.Struct("<BII")

_COUNT = struct.Struct("<I")

#: High bit of the body's record-count word: set when the body is one
#: atomic commit unit (an MVCC transaction's write set).  Old readers
#: never saw the bit set, so the encoding stays backward compatible.
_ATOMIC_FLAG = 0x8000_0000


def segment_name(first_lsn: int) -> str:
    """File name of the segment whose first record is ``first_lsn``."""
    return f"wal-{first_lsn:020d}.log"


def segment_first_lsn(path: str | os.PathLike) -> int:
    """Inverse of :func:`segment_name`."""
    stem = Path(path).name
    if not (stem.startswith("wal-") and stem.endswith(".log")):
        raise WalCorruptionError(f"not a WAL segment name: {stem!r}")
    return int(stem[4:-4])


# --------------------------------------------------------------------- #
# Codec
# --------------------------------------------------------------------- #


def encode_delta_log(log: DeltaLog) -> bytes:
    """Pack a delta log into one WAL record body."""
    count = len(log.records)
    if log.atomic:
        count |= _ATOMIC_FLAG
    parts = [_COUNT.pack(count)]
    for record in log.records:
        code = DELTA_KIND_CODES[record.kind]
        if record.kind in ("insert", "move_intent"):
            n = int(record.keys.shape[0])
            width = int(record.payloads.shape[1])
            parts.append(_RECORD.pack(code, n, width))
            parts.append(record.keys.astype("<i8", copy=False).tobytes())
            parts.append(record.payloads.astype("<i8", copy=False).tobytes())
        elif record.kind == "update":
            n = int(record.keys.shape[0])
            parts.append(_RECORD.pack(code, n, 0))
            parts.append(record.keys.astype("<i8", copy=False).tobytes())
            parts.append(record.new_keys.astype("<i8", copy=False).tobytes())
        else:  # "delete", "move_commit", "move_forget": bare key arrays
            n = int(record.keys.shape[0])
            parts.append(_RECORD.pack(code, n, 0))
            parts.append(record.keys.astype("<i8", copy=False).tobytes())
    return b"".join(parts)


def _take(body: bytes, offset: int, count: int) -> tuple[np.ndarray, int]:
    end = offset + 8 * count
    if end > len(body):
        raise WalCorruptionError("delta body shorter than its declared arrays")
    return np.frombuffer(body, dtype="<i8", count=count, offset=offset).astype(
        np.int64
    ), end


def decode_delta_log(body: bytes) -> DeltaLog:
    """Unpack one WAL record body (inverse of :func:`encode_delta_log`).

    Raises :class:`WalCorruptionError` on structural mismatch; in practice
    the frame CRC rejects damaged bodies before they reach the decoder, so
    this guards against format bugs, not disk corruption.
    """
    if len(body) < _COUNT.size:
        raise WalCorruptionError("delta body shorter than its record count")
    (count,) = _COUNT.unpack_from(body, 0)
    atomic = bool(count & _ATOMIC_FLAG)
    count &= ~_ATOMIC_FLAG
    offset = _COUNT.size
    log = DeltaLog(atomic=atomic)
    for _ in range(count):
        if offset + _RECORD.size > len(body):
            raise WalCorruptionError("delta body shorter than its record headers")
        code, n, width = _RECORD.unpack_from(body, offset)
        offset += _RECORD.size
        if code >= len(DELTA_KINDS):
            raise WalCorruptionError(f"unknown delta kind code {code}")
        kind = DELTA_KINDS[code]
        keys, offset = _take(body, offset, n)
        if kind == "insert":
            flat, offset = _take(body, offset, n * width)
            log.records.append(
                DeltaRecord(
                    kind="insert", keys=keys, payloads=flat.reshape(n, width)
                )
            )
        elif kind == "move_intent":
            # One payload row however many protocol keys the marker holds.
            flat, offset = _take(body, offset, width)
            log.records.append(
                DeltaRecord(
                    kind="move_intent", keys=keys, payloads=flat.reshape(1, width)
                )
            )
        elif kind == "update":
            new_keys, offset = _take(body, offset, n)
            log.records.append(
                DeltaRecord(kind="update", keys=keys, new_keys=new_keys)
            )
        else:  # "delete", "move_commit", "move_forget"
            log.records.append(DeltaRecord(kind=kind, keys=keys))
    if offset != len(body):
        raise WalCorruptionError("delta body has trailing bytes")
    return log


def frame_record(lsn: int, body: bytes) -> bytes:
    """Frame one record: header + CRC + body."""
    crc = zlib.crc32(_CRC_PREFIX.pack(lsn, len(body)) + body)
    return _FRAME.pack(lsn, len(body), crc) + body


# --------------------------------------------------------------------- #
# Segment scan (recovery / torn-tail detection)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SegmentScan:
    """Result of validating one segment front-to-back.

    ``records`` holds the ``(lsn, body)`` pairs that passed the CRC, in
    file order; ``valid_bytes`` is the file offset right after the last
    valid record (the truncation target for a torn tail, and the resume
    offset for a tailing reader); ``file_bytes`` is the on-disk size that
    was scanned; ``ends[i]`` is the absolute offset right after
    ``records[i]``, so a cursor can advance record-by-record even when it
    applies only a prefix of the scan.

    ``tail_status`` classifies what stopped the scan:

    * ``"clean"`` -- the file ends exactly at a record boundary;
    * ``"short"`` -- the last frame is incomplete (fewer bytes on disk
      than its header demands).  On the *live* segment this is the normal
      shape of an append still in flight (or cut off by a crash): a
      tailing reader resumes at ``valid_bytes`` once the file has grown,
      without re-reading the segment from the start;
    * ``"corrupt"`` -- a complete frame failed its CRC or broke LSN
      monotonicity.  More bytes cannot repair it; only the writer's
      reopen truncation can.
    """

    records: list[tuple[int, bytes]]
    valid_bytes: int
    file_bytes: int
    ends: tuple[int, ...] = ()
    tail_status: str = "clean"

    @property
    def torn(self) -> bool:
        """Whether the segment ends in an incomplete / corrupt tail."""
        return self.file_bytes > self.valid_bytes

    @property
    def resume_offset(self) -> int:
        """Where a tailing reader should scan from on its next poll."""
        return self.valid_bytes


def scan_segment(
    path: str | os.PathLike,
    *,
    start_offset: int | None = None,
    previous_lsn: int = 0,
) -> SegmentScan:
    """Validate a segment and return its intact record prefix.

    Walks records front-to-back, stopping at the first frame that is
    incomplete, fails its CRC or breaks LSN monotonicity; everything from
    that point on is the *torn tail* a crash mid-append leaves behind
    (``tail_status`` tells an incomplete tail apart from a corrupt one).
    Raises :class:`WalCorruptionError` only for a bad file magic (the file
    is not a WAL segment at all).

    Tailing: pass ``start_offset`` (a previous scan's ``resume_offset``
    or record end) to resume parsing a *growing* live segment without
    re-reading it from the start, and ``previous_lsn`` to carry the LSN
    monotonicity check across the boundary.  Offsets in the result are
    absolute file offsets either way.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise WalCorruptionError(f"bad WAL magic in {path}")
        start = len(MAGIC) if start_offset is None else int(start_offset)
        if start < len(MAGIC):
            raise WalCorruptionError(
                f"scan offset {start} inside the magic of {path}"
            )
        handle.seek(start)
        data = handle.read()
    records: list[tuple[int, bytes]] = []
    ends: list[int] = []
    offset = 0
    valid = 0
    status = "clean"
    while True:
        if offset + _FRAME.size > len(data):
            if offset < len(data):
                status = "short"
            break
        lsn, length, crc = _FRAME.unpack_from(data, offset)
        body_start = offset + _FRAME.size
        body_end = body_start + length
        if body_end > len(data):
            status = "short"
            break
        body = data[body_start:body_end]
        if zlib.crc32(_CRC_PREFIX.pack(lsn, length) + body) != crc:
            status = "corrupt"
            break
        if previous_lsn and lsn != previous_lsn + 1:
            status = "corrupt"
            break
        records.append((lsn, body))
        ends.append(start + body_end)
        previous_lsn = lsn
        offset = body_end
        valid = offset
    return SegmentScan(
        records=records,
        valid_bytes=start + valid,
        file_bytes=start + len(data),
        ends=tuple(ends),
        tail_status=status,
    )


# --------------------------------------------------------------------- #
# Writer
# --------------------------------------------------------------------- #


@guarded_class
class WalWriter:
    """Appender over one open WAL segment.

    Concurrency model: appends run under the durability manager's commit
    lock (order name ``wal_commit`` -- the decorated precondition of
    :meth:`append`), which serializes record framing and keeps the LSN
    sequence gap-free.  :meth:`sync` takes only the internal ``wal_sync``
    lock, so group commit never blocks the next committer's append, and
    the durable watermark (``synced_lsn``) trails the appended watermark
    (``appended_lsn``) by exactly the un-fsynced tail.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        faults: FaultInjector | None = None,
        max_retries: int = 4,
        retry_backoff_s: float = 0.002,
        sleep=time.sleep,
    ) -> None:
        self.path = Path(path)
        self._faults = faults
        self._max_retries = int(max_retries)
        self._retry_backoff_s = float(retry_backoff_s)
        self._sleep = sleep
        self._sync_lock = discipline.make_lock("wal_sync")
        self._failed = False
        first_lsn = segment_first_lsn(self.path)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fresh:
            os.write(self._fd, MAGIC)
            self._offset = len(MAGIC)
            self._appended_lsn = first_lsn - 1
        else:
            scan = scan_segment(self.path)
            if scan.torn:
                # CRC-rejected torn tail from a crash mid-append: drop it.
                os.ftruncate(self._fd, scan.valid_bytes)
            os.lseek(self._fd, scan.valid_bytes, os.SEEK_SET)
            self._offset = scan.valid_bytes
            self._appended_lsn = (
                scan.records[-1][0] if scan.records else first_lsn - 1
            )
        # Bytes already on disk when the writer opens are treated as the
        # durable baseline: recovery only ever reopens after re-reading
        # them, and the power-loss simulation is scoped to one writer's
        # lifetime.
        self._synced_offset = self._offset
        self._synced_lsn = self._appended_lsn

    # -- introspection ------------------------------------------------- #

    @property
    def appended_lsn(self) -> int:
        """LSN of the last record appended to this segment."""
        return self._appended_lsn

    @property
    def synced_lsn(self) -> int:
        """LSN of the last record covered by an fsync."""
        return self._synced_lsn

    @property
    def unsynced_bytes(self) -> int:
        """Appended bytes not yet covered by an fsync."""
        return self._offset - self._synced_offset

    @property
    def failed(self) -> bool:
        """Whether the writer shut down after exhausting I/O retries."""
        return self._failed

    # -- fault plumbing ------------------------------------------------ #

    def _die(self) -> None:
        """Simulate this process's death: close the fd (what the OS would
        do), first dropping the un-fsynced tail when the injector models
        power loss rather than a mere kill."""
        if self._fd < 0:
            return
        faults = self._faults
        if faults is not None and faults.power_loss:
            try:
                os.ftruncate(self._fd, self._synced_offset)
            except OSError:
                pass
        os.close(self._fd)
        self._fd = -1

    def _crash_point(self, point: str) -> None:
        if self._faults is None:
            return
        try:
            self._faults.hit(point)
        except InjectedCrash:
            self._die()
            raise

    def _io(self, point: str, fn):
        try:
            return retry_io(
                fn,
                point=point,
                faults=self._faults,
                max_retries=self._max_retries,
                backoff_s=self._retry_backoff_s,
                sleep=self._sleep,
                on_crash=self._die,
            )
        except OSError as exc:
            self._failed = True
            raise WalUnavailableError(
                f"WAL I/O at {point!r} failed after "
                f"{self._max_retries + 1} attempts: {exc}"
            ) from exc

    def _write_all(self, data: bytes) -> None:
        view = memoryview(data)
        while view:
            written = self._io("wal.write", lambda v=view: os.write(self._fd, v))
            view = view[written:]

    # -- append / sync ------------------------------------------------- #

    @requires_lock("wal_commit")
    def append(self, lsn: int, body: bytes) -> None:
        """Append one framed record (caller holds the commit lock).

        With a fault injector attached the frame is written in three
        slices so the ``wal.append.*`` crash points land between real
        ``os.write`` calls, leaving exactly the torn shapes a crash
        produces; without one it is a single write.
        """
        if self._failed:
            raise WalUnavailableError("WAL writer is shut down")
        if lsn != self._appended_lsn + 1:
            raise WalCorruptionError(
                f"non-consecutive append: lsn {lsn} after {self._appended_lsn}"
            )
        frame = frame_record(lsn, body)
        if self._faults is None:
            self._write_all(frame)
        else:
            self._crash_point("wal.append.begin")
            self._write_all(frame[: _FRAME.size])
            self._crash_point("wal.append.header")
            split = _FRAME.size + max(1, len(body) // 2)
            self._write_all(frame[_FRAME.size : split])
            self._crash_point("wal.append.partial")
            self._write_all(frame[split:])
        self._offset += len(frame)
        self._appended_lsn = lsn
        self._crash_point("wal.append.full")

    def sync(self) -> int:
        """Group commit: fsync everything appended so far; return the
        durable LSN.  Concurrent callers coalesce -- whoever enters the
        sync lock first covers every record appended before its fsync, and
        later callers find their watermark already durable."""
        if self._failed:
            raise WalUnavailableError("WAL writer is shut down")
        with self._sync_lock:
            target_offset = self._offset
            target_lsn = self._appended_lsn
            if target_offset > self._synced_offset:
                self._io("wal.fsync", lambda: os.fsync(self._fd))
                self._synced_offset = target_offset
                self._synced_lsn = target_lsn
            return self._synced_lsn

    def close(self, *, sync: bool = True) -> None:
        """Close the segment, fsyncing the tail by default (idempotent)."""
        if self._fd < 0:
            return
        if sync and not self._failed:
            self.sync()
        os.close(self._fd)
        self._fd = -1

    def abandon(self) -> None:
        """Close the fd without syncing (crash cleanup path)."""
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1
