"""Recovery: latest intact snapshot + WAL replay to an oracle-equal state.

``recover(root)`` rebuilds a :class:`~repro.storage.table.Table` from a
log directory:

1. load the newest snapshot that passes CRC validation (falling back to
   older ones -- a corrupt snapshot costs replay length, not data);
2. rebuild the table from the concatenated chunk rows, using the layout
   spec recorded in the manifest (or a caller-supplied chunk builder);
3. scan every WAL segment in LSN order, truncate a CRC-rejected torn
   tail off the *last* segment, and replay each record with
   ``lsn > snapshot lsn`` through the table's bulk-write paths.

Replay is **idempotent below the watermark**: records at or below the
snapshot LSN are skipped, so replaying a prefix twice is a no-op past the
snapshot -- the property test in ``tests/durability`` pins this down.

Two documented equivalences rather than identities:

* global row ids are renumbered (rows reload in snapshot order), so
  recovery preserves the logical row multiset ``{(key, payload)}``, not
  physical rowid values;
* when a table holds *duplicate* copies of a deleted key, the live path
  deterministically removes the oldest copy (smallest row id -- see
  :meth:`repro.storage.column.PartitionedColumn.delete`), but the rebuild
  renumbers row ids in snapshot order, so a delete *replayed* across a
  recovery boundary can land on a different physical copy than its live
  execution did.  Recovered state therefore equals the oracle at the
  logical level whenever payload is a function of the key -- the regime
  the paper's HAP workloads (unique keys) and our property tests operate
  in.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..storage.access_log import MOVE_MARKER_KINDS
from ..storage.layouts import LayoutKind, LayoutSpec
from ..storage.table import Table, layout_chunk_builder
from .errors import RecoveryError, WalCorruptionError
from .snapshot import LoadedSnapshot, load_latest_snapshot
from .wal import decode_delta_log, scan_segment, segment_first_lsn


@dataclass(frozen=True)
class RecoveryReport:
    """What a ``recover`` call did, for logging and assertions."""

    base_lsn: int
    last_lsn: int
    batches_replayed: int
    operations_replayed: int
    truncated_bytes: int
    snapshot_path: Path
    segments_scanned: int


def meta_to_spec(meta: dict) -> LayoutSpec | None:
    """Reconstruct the manifest's :class:`LayoutSpec` (``None`` when the
    table was built with a custom chunk builder, e.g. a planner)."""
    raw = meta.get("layout_spec")
    if raw is None:
        return None
    raw = dict(raw)
    raw["kind"] = LayoutKind(raw["kind"])
    for field in ("boundaries", "ghost_allocation"):
        if raw.get(field) is not None:
            raw[field] = tuple(raw[field])
    return LayoutSpec(**raw)


def spec_to_meta(spec: LayoutSpec | None) -> dict | None:
    """Inverse of :func:`meta_to_spec` (JSON-safe)."""
    if spec is None:
        return None
    return {
        "kind": spec.kind.value,
        "partitions": spec.partitions,
        "ghost_fraction": spec.ghost_fraction,
        "boundaries": list(spec.boundaries) if spec.boundaries else None,
        "ghost_allocation": (
            list(spec.ghost_allocation) if spec.ghost_allocation else None
        ),
        "merge_threshold": spec.merge_threshold,
        "merge_entries": spec.merge_entries,
        "block_values": spec.block_values,
    }


def table_from_snapshot(
    snapshot: LoadedSnapshot, *, chunk_builder=None
) -> Table:
    """Rebuild a table from a loaded snapshot's rows and metadata."""
    meta = snapshot.meta
    if chunk_builder is None:
        spec = meta_to_spec(meta)
        if spec is not None:
            chunk_builder = layout_chunk_builder(spec)
    payload_names = meta.get("payload_names") or None
    width = len(payload_names) if payload_names else 0
    payload = snapshot.payload
    if payload.shape[1] != width:
        raise RecoveryError(
            f"snapshot payload width {payload.shape[1]} does not match "
            f"manifest payload names {payload_names!r}"
        )
    return Table(
        snapshot.keys,
        payload if width else None,
        chunk_size=int(meta["chunk_size"]),
        chunk_builder=chunk_builder,
        payload_names=payload_names,
        block_values=int(meta.get("block_values", 4096)),
    )


def apply_delta_log(table: Table, deltas) -> int:
    """Apply one decoded delta log through the bulk-write paths; returns
    the number of operations applied.  Never touches the WAL -- replay
    must not re-log what it replays.  Move-protocol markers
    (``move_intent`` / ``move_commit`` / ``move_forget``) mutate nothing:
    the delete/insert a cross-shard move performs ride as ordinary records
    in the same bodies, and the markers only matter to the sharded
    dispatcher's move-resolution scan (:mod:`repro.sharding.database`)."""
    applied = 0
    for record in deltas.records:
        if record.kind == "insert":
            table.bulk_insert(record.keys, record.payloads)
        elif record.kind == "delete":
            table.bulk_delete(record.keys)
        elif record.kind == "update":
            pairs = np.stack([record.keys, record.new_keys], axis=1)
            table.bulk_update(pairs)
        elif record.kind not in MOVE_MARKER_KINDS:
            raise RecoveryError(f"unreplayable delta kind {record.kind!r}")
        applied += record.operations
    return applied


def replay(
    table: Table,
    records: Sequence[tuple[int, bytes]],
    *,
    after_lsn: int,
) -> tuple[int, int, int]:
    """Replay scanned ``(lsn, body)`` records with ``lsn > after_lsn``.

    Returns ``(batches, operations, last_lsn)``.  Records at or below the
    watermark are skipped -- the idempotence contract -- and a gap above
    it raises :class:`RecoveryError` (a missing segment means lost
    history, not a torn tail).
    """
    batches = operations = 0
    last = after_lsn
    for lsn, body in records:
        if lsn <= last:
            continue
        if lsn != last + 1:
            raise RecoveryError(
                f"WAL gap: expected lsn {last + 1}, found {lsn} "
                "(a segment between them is missing or corrupt)"
            )
        operations += apply_delta_log(table, decode_delta_log(body))
        batches += 1
        last = lsn
    return batches, operations, last


def recover(
    root: str | Path, *, chunk_builder=None
) -> tuple[Table, RecoveryReport]:
    """Rebuild the table stored under log directory ``root``."""
    root = Path(root)
    snapshot = load_latest_snapshot(root / "snapshots")
    if snapshot is None:
        raise RecoveryError(
            f"no intact snapshot under {root / 'snapshots'}; cannot recover"
        )
    table = table_from_snapshot(snapshot, chunk_builder=chunk_builder)
    segments = sorted((root / "wal").glob("wal-*.log"), key=segment_first_lsn)
    batches = operations = truncated = 0
    last = snapshot.lsn
    for index, segment in enumerate(segments):
        scan = scan_segment(segment)
        if scan.torn:
            if index != len(segments) - 1:
                raise WalCorruptionError(
                    f"segment {segment.name} is corrupt mid-history "
                    "(only the final segment may have a torn tail)"
                )
            truncated = scan.file_bytes - scan.valid_bytes
        replayed, ops, last = replay(table, scan.records, after_lsn=last)
        batches += replayed
        operations += ops
    report = RecoveryReport(
        base_lsn=snapshot.lsn,
        last_lsn=last,
        batches_replayed=batches,
        operations_replayed=operations,
        truncated_bytes=truncated,
        snapshot_path=snapshot.path,
        segments_scanned=len(segments),
    )
    return table, report
