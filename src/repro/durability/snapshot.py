"""Chunk-level table snapshots: the WAL's replay floor.

A snapshot is a directory ``snapshots/snap-<lsn>/`` holding one ``.npz``
file per column chunk -- the ``values``/``rowids`` arrays of a consistent
:meth:`~repro.storage.table.Table.snapshot_chunk` view plus the payload
rows those rowids address -- and a ``MANIFEST.json`` written *last* with
the snapshot LSN, per-file CRCs and the table's reconstruction metadata
(chunk size, payload names, layout spec).  Commit protocol:

1. everything is written into ``snap-<lsn>.partial/`` and fsynced;
2. the manifest is written and fsynced inside the partial directory;
3. the directory is renamed to its final name and the parent fsynced.

A crash at any point leaves either a ``.partial`` directory (ignored and
reclaimed by the next checkpoint's GC) or a complete snapshot -- never a
half-visible one.  The loader validates every chunk file against its
manifest CRC and falls back to the next older snapshot on any mismatch.

Chunks are captured one at a time under their shared latches (the PR 5
consistent off-latch copy), *not* under a table-wide freeze; the manager
serializes checkpoints against durable write commits with the commit
lock, so the captured state is exactly the state the WAL describes up to
the snapshot LSN.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from .errors import SnapshotCorruptionError
from .faults import FaultInjector, retry_io

if TYPE_CHECKING:
    from ..storage.table import Table

MANIFEST_NAME = "MANIFEST.json"

#: Manifest format version, bumped on layout changes.
MANIFEST_VERSION = 1


def snapshot_dir_name(lsn: int) -> str:
    """Directory name of the snapshot taken at ``lsn``."""
    return f"snap-{lsn:020d}"


def snapshot_lsn(path: str | os.PathLike) -> int:
    """Inverse of :func:`snapshot_dir_name`."""
    name = Path(path).name
    if not name.startswith("snap-"):
        raise SnapshotCorruptionError(f"not a snapshot directory name: {name!r}")
    return int(name[5:])


@dataclass(frozen=True)
class SnapshotInfo:
    """Summary of one committed snapshot."""

    lsn: int
    path: Path
    rows: int
    chunks: int


@dataclass(frozen=True)
class LoadedSnapshot:
    """A validated snapshot read back into memory.

    ``keys`` / ``payload`` are the concatenated live rows of every chunk in
    chunk order (keys ascending within each chunk); ``meta`` is the
    manifest's table-reconstruction block, verbatim.
    """

    lsn: int
    path: Path
    keys: np.ndarray
    payload: np.ndarray
    meta: dict


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_snapshot(
    root: str | os.PathLike,
    table: "Table",
    lsn: int,
    meta: dict,
    *,
    faults: FaultInjector | None = None,
    max_retries: int = 4,
    retry_backoff_s: float = 0.002,
    sleep=time.sleep,
) -> SnapshotInfo:
    """Write (or find) the snapshot of ``table`` at ``lsn`` under ``root``.

    Idempotent per LSN: if ``snap-<lsn>`` already committed, it is
    returned untouched (a checkpoint with no intervening writes).  The
    caller must hold the commit lock so no durable write lands between
    the chunk captures and the LSN stamp.
    """
    root = Path(root)
    final = root / snapshot_dir_name(lsn)
    if final.exists():
        manifest = json.loads((final / MANIFEST_NAME).read_text())
        return SnapshotInfo(
            lsn=lsn, path=final, rows=manifest["rows"], chunks=len(manifest["chunks"])
        )
    partial = Path(str(final) + ".partial")
    if partial.exists():
        shutil.rmtree(partial)
    partial.mkdir(parents=True)

    def _write_file(path: Path, data: bytes) -> None:
        def attempt() -> None:
            with open(path, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())

        retry_io(
            attempt,
            point="snapshot.write",
            faults=faults,
            max_retries=max_retries,
            backoff_s=retry_backoff_s,
            sleep=sleep,
        )

    chunk_entries = []
    total_rows = 0
    for chunk_index in range(table.num_chunks):
        view = table.snapshot_chunk(chunk_index)
        payload_rows = table.payload_rows(view.rowids)
        buffer = io.BytesIO()
        np.savez(
            buffer, values=view.values, rowids=view.rowids, payload=payload_rows
        )
        data = buffer.getvalue()
        file_name = f"chunk-{chunk_index:05d}.npz"
        _write_file(partial / file_name, data)
        if faults is not None:
            faults.hit("snapshot.chunk")
        chunk_entries.append(
            {
                "file": file_name,
                "rows": int(view.values.size),
                "crc": zlib.crc32(data),
            }
        )
        total_rows += int(view.values.size)

    manifest = {
        "version": MANIFEST_VERSION,
        "lsn": int(lsn),
        "rows": total_rows,
        "chunks": chunk_entries,
        "meta": meta,
    }
    _write_file(
        partial / MANIFEST_NAME,
        json.dumps(manifest, indent=2, sort_keys=True).encode(),
    )
    if faults is not None:
        faults.hit("snapshot.manifest")
    os.rename(partial, final)
    _fsync_dir(root)
    return SnapshotInfo(
        lsn=lsn, path=final, rows=total_rows, chunks=len(chunk_entries)
    )


def list_snapshots(root: str | os.PathLike) -> list[Path]:
    """Committed snapshot directories under ``root``, newest first."""
    root = Path(root)
    if not root.is_dir():
        return []
    dirs = [
        entry
        for entry in root.iterdir()
        if entry.is_dir()
        and entry.name.startswith("snap-")
        and not entry.name.endswith(".partial")
    ]
    return sorted(dirs, key=snapshot_lsn, reverse=True)


def load_snapshot(path: str | os.PathLike) -> LoadedSnapshot:
    """Read one snapshot back, validating every chunk file's CRC."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotCorruptionError(f"missing manifest in {path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (ValueError, OSError) as exc:
        raise SnapshotCorruptionError(f"unreadable manifest in {path}: {exc}") from exc
    if manifest.get("version") != MANIFEST_VERSION:
        raise SnapshotCorruptionError(
            f"unsupported snapshot version {manifest.get('version')!r} in {path}"
        )
    key_pieces: list[np.ndarray] = []
    payload_pieces: list[np.ndarray] = []
    for entry in manifest["chunks"]:
        chunk_path = path / entry["file"]
        try:
            data = chunk_path.read_bytes()
        except OSError as exc:
            raise SnapshotCorruptionError(
                f"missing chunk file {chunk_path}: {exc}"
            ) from exc
        if zlib.crc32(data) != entry["crc"]:
            raise SnapshotCorruptionError(f"CRC mismatch in {chunk_path}")
        with np.load(io.BytesIO(data), allow_pickle=False) as arrays:
            values = np.asarray(arrays["values"], dtype=np.int64)
            payload = np.asarray(arrays["payload"], dtype=np.int64)
        if values.shape[0] != entry["rows"] or payload.shape[0] != values.shape[0]:
            raise SnapshotCorruptionError(f"row-count mismatch in {chunk_path}")
        key_pieces.append(values)
        payload_pieces.append(payload)
    width = payload_pieces[0].shape[1] if payload_pieces else 0
    keys = (
        np.concatenate(key_pieces) if key_pieces else np.empty(0, dtype=np.int64)
    )
    payload = (
        np.concatenate(payload_pieces)
        if payload_pieces
        else np.empty((0, width), dtype=np.int64)
    )
    return LoadedSnapshot(
        lsn=int(manifest["lsn"]),
        path=path,
        keys=keys,
        payload=payload,
        meta=dict(manifest["meta"]),
    )


def load_latest_snapshot(root: str | os.PathLike) -> LoadedSnapshot | None:
    """Newest snapshot that passes validation, or ``None``.

    Falls back across corrupt snapshots newest-to-oldest -- a damaged
    latest snapshot costs a longer WAL replay, not data loss, as long as
    the covering segments were retained (see the manager's GC policy).
    """
    for candidate in list_snapshots(root):
        try:
            return load_snapshot(candidate)
        except SnapshotCorruptionError:
            continue
    return None
