"""Column layout modes evaluated in the paper (Table 1 and Section 7).

Casper's experiments compare six distinct operation modes built from the
three-dimensional design space of Table 1 (data organization x update policy
x buffering):

=============  =================  ==============  ===============
Mode           Data organization  Update policy   Buffering
=============  =================  ==============  ===============
No Order       insertion order    in-place        none
Sorted         sorted             in-place        none
State-of-art   sorted             out-of-place    global (delta)
Equi           partitioned        in-place        none
Equi-GV        partitioned        hybrid          per-partition
Casper         partitioned        hybrid          per-partition
=============  =================  ==============  ===============

``build_column`` constructs a column chunk configured for any of the modes;
the Casper mode takes the optimizer's partition boundaries and ghost-value
allocation (produced by :mod:`repro.core.planner`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from .column import PartitionedColumn, equal_width_boundaries
from .cost_accounting import DEFAULT_BLOCK_VALUES, AccessCounter, blocks_spanned
from .delta_store import DeltaStoreColumn
from .errors import LayoutError
from .ghost_values import ghost_budget_from_fraction, spread_evenly


class DataOrganization(Enum):
    """How values are physically ordered inside a chunk (Table 1, column 1)."""

    INSERTION_ORDER = "insertion_order"
    SORTED = "sorted"
    PARTITIONED = "partitioned"


class UpdatePolicy(Enum):
    """How updates reach the data (Table 1, column 2)."""

    IN_PLACE = "in_place"
    OUT_OF_PLACE = "out_of_place"
    HYBRID = "hybrid"


class BufferingMode(Enum):
    """Where update buffer space lives (Table 1, column 3)."""

    NONE = "none"
    GLOBAL = "global"
    PER_PARTITION = "per_partition"


class LayoutKind(Enum):
    """The six operation modes compared in Section 7."""

    NO_ORDER = "no_order"
    SORTED = "sorted"
    STATE_OF_ART = "state_of_art"
    EQUI = "equi"
    EQUI_GV = "equi_gv"
    CASPER = "casper"


@dataclass(frozen=True)
class LayoutDesignPoint:
    """Position of a layout mode in the Table 1 design space."""

    organization: DataOrganization
    update_policy: UpdatePolicy
    buffering: BufferingMode


DESIGN_SPACE: dict[LayoutKind, LayoutDesignPoint] = {
    LayoutKind.NO_ORDER: LayoutDesignPoint(
        DataOrganization.INSERTION_ORDER, UpdatePolicy.IN_PLACE, BufferingMode.NONE
    ),
    LayoutKind.SORTED: LayoutDesignPoint(
        DataOrganization.SORTED, UpdatePolicy.IN_PLACE, BufferingMode.NONE
    ),
    LayoutKind.STATE_OF_ART: LayoutDesignPoint(
        DataOrganization.SORTED, UpdatePolicy.OUT_OF_PLACE, BufferingMode.GLOBAL
    ),
    LayoutKind.EQUI: LayoutDesignPoint(
        DataOrganization.PARTITIONED, UpdatePolicy.IN_PLACE, BufferingMode.NONE
    ),
    LayoutKind.EQUI_GV: LayoutDesignPoint(
        DataOrganization.PARTITIONED, UpdatePolicy.HYBRID, BufferingMode.PER_PARTITION
    ),
    LayoutKind.CASPER: LayoutDesignPoint(
        DataOrganization.PARTITIONED, UpdatePolicy.HYBRID, BufferingMode.PER_PARTITION
    ),
}


@dataclass(frozen=True)
class LayoutSpec:
    """Fully-specified layout configuration for building a column chunk.

    Attributes
    ----------
    kind:
        Which of the six modes to build.
    partitions:
        Number of partitions for the Equi/Equi-GV modes (ignored otherwise).
    ghost_fraction:
        Ghost-value budget as a fraction of the data size (Equi-GV/Casper).
    boundaries:
        Explicit exclusive end offsets for the Casper mode (from the
        optimizer); ``None`` for all other modes.
    ghost_allocation:
        Explicit per-partition ghost slots for the Casper mode.
    merge_threshold:
        Delta-store merge trigger as a fraction of the chunk (State-of-art).
    merge_entries:
        Absolute delta-store merge trigger; overrides ``merge_threshold`` when
        set and models continuous delta integration (State-of-art only).
    block_values:
        Values per block; defaults to 16KB / 4B = 4096 values.
    """

    kind: LayoutKind
    partitions: int = 64
    ghost_fraction: float = 0.001
    boundaries: tuple[int, ...] | None = None
    ghost_allocation: tuple[int, ...] | None = None
    merge_threshold: float = 0.05
    merge_entries: int | None = None
    block_values: int = DEFAULT_BLOCK_VALUES


ColumnLike = PartitionedColumn | DeltaStoreColumn


def build_column(
    spec: LayoutSpec,
    sorted_values: np.ndarray | list[int],
    *,
    counter: AccessCounter | None = None,
    track_rowids: bool = False,
    rowids: np.ndarray | None = None,
) -> ColumnLike:
    """Build a column chunk for ``sorted_values`` under layout ``spec``.

    ``sorted_values`` must be non-decreasing; the No-Order mode nevertheless
    behaves like an insertion-order heap because its single partition is
    scanned in full by every query and appends land at its tail.  ``rowids``
    optionally supplies the (global) row ids aligned with ``sorted_values``.
    """
    values = np.asarray(sorted_values, dtype=np.int64)
    size = int(values.shape[0])
    block_values = spec.block_values
    common = dict(
        block_values=block_values,
        counter=counter,
        track_rowids=track_rowids,
        rowids=rowids if track_rowids else None,
    )

    if spec.kind is LayoutKind.NO_ORDER:
        return PartitionedColumn(
            values, np.asarray([size], dtype=np.int64), dense=True, **common
        )

    if spec.kind is LayoutKind.SORTED:
        partitions = max(1, blocks_spanned(0, size, block_values))
        return PartitionedColumn(
            values, equal_width_boundaries(size, partitions), dense=True, **common
        )

    if spec.kind is LayoutKind.STATE_OF_ART:
        return DeltaStoreColumn(
            values,
            block_values=block_values,
            merge_threshold=spec.merge_threshold,
            merge_entries=spec.merge_entries,
            counter=counter,
            track_rowids=track_rowids,
            rowids=rowids if track_rowids else None,
        )

    if spec.kind is LayoutKind.EQUI:
        return PartitionedColumn(
            values,
            equal_width_boundaries(size, spec.partitions),
            dense=True,
            **common,
        )

    if spec.kind is LayoutKind.EQUI_GV:
        boundaries = equal_width_boundaries(size, spec.partitions)
        budget = ghost_budget_from_fraction(size, spec.ghost_fraction)
        ghosts = spread_evenly(budget, boundaries.shape[0])
        return PartitionedColumn(
            values,
            boundaries,
            ghost_allocation=ghosts,
            dense=False,
            **common,
        )

    if spec.kind is LayoutKind.CASPER:
        if spec.boundaries is None:
            raise LayoutError(
                "Casper layout requires optimizer-provided boundaries; "
                "use repro.core.planner.CasperPlanner"
            )
        boundaries = np.asarray(spec.boundaries, dtype=np.int64)
        ghosts = (
            np.asarray(spec.ghost_allocation, dtype=np.int64)
            if spec.ghost_allocation is not None
            else None
        )
        return PartitionedColumn(
            values,
            boundaries,
            ghost_allocation=ghosts,
            dense=ghosts is None,
            **common,
        )

    raise LayoutError(f"unknown layout kind: {spec.kind!r}")
