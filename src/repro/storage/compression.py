"""Column compression schemes supported by Casper (Section 6.2).

Casper natively supports dictionary compression and frame-of-reference
(delta) compression, the two schemes most commonly used in modern
column stores.  Run-length encoding is also implemented for the comparison
the paper makes (better ratio on sorted data, but requires sorting and an
expensive decode step on update, which is why dictionary/delta are
preferred).

Each codec reports the encoded width in bits per value so that the
compression-ratio experiment (``benchmarks/bench_compression.py``) can
reproduce the paper's claim that fine partitioning improves per-partition
frame-of-reference compression (small partitions cover small value ranges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _bits_for_range(distinct_or_range: int) -> int:
    """Minimum number of bits needed to represent ``distinct_or_range`` codes."""
    if distinct_or_range <= 1:
        return 1
    return int(np.ceil(np.log2(distinct_or_range)))


@dataclass(frozen=True)
class CompressionStats:
    """Summary of a codec applied to one array (or one partition)."""

    scheme: str
    values: int
    uncompressed_bits: int
    compressed_bits: int

    @property
    def ratio(self) -> float:
        """Uncompressed size divided by compressed size."""
        if self.compressed_bits == 0:
            return float("inf")
        return self.uncompressed_bits / self.compressed_bits


class DictionaryCodec:
    """Dictionary compression: values are replaced by dense codes."""

    scheme = "dictionary"

    def encode(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(dictionary, codes)`` for ``values``."""
        values = np.asarray(values, dtype=np.int64)
        dictionary, codes = np.unique(values, return_inverse=True)
        return dictionary, codes.astype(np.int64)

    def decode(self, dictionary: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Reconstruct the original values."""
        return np.asarray(dictionary, dtype=np.int64)[np.asarray(codes)]

    def stats(self, values: np.ndarray, value_bits: int = 32) -> CompressionStats:
        """Compression statistics for ``values`` stored at ``value_bits`` each."""
        values = np.asarray(values, dtype=np.int64)
        dictionary, codes = self.encode(values)
        code_bits = _bits_for_range(dictionary.shape[0])
        compressed = dictionary.shape[0] * value_bits + codes.shape[0] * code_bits
        return CompressionStats(
            scheme=self.scheme,
            values=int(values.shape[0]),
            uncompressed_bits=int(values.shape[0]) * value_bits,
            compressed_bits=int(compressed),
        )


class FrameOfReferenceCodec:
    """Frame-of-reference (delta) compression relative to a per-frame minimum."""

    scheme = "frame_of_reference"

    def encode(self, values: np.ndarray) -> tuple[int, np.ndarray]:
        """Return ``(reference, offsets)`` for ``values``."""
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return 0, values.copy()
        reference = int(values.min())
        return reference, values - reference

    def decode(self, reference: int, offsets: np.ndarray) -> np.ndarray:
        """Reconstruct the original values."""
        return np.asarray(offsets, dtype=np.int64) + int(reference)

    def stats(self, values: np.ndarray, value_bits: int = 32) -> CompressionStats:
        """Compression statistics treating the whole array as one frame."""
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return CompressionStats(self.scheme, 0, 0, 0)
        reference, offsets = self.encode(values)
        offset_bits = _bits_for_range(int(offsets.max()) + 1)
        compressed = value_bits + values.shape[0] * offset_bits
        return CompressionStats(
            scheme=self.scheme,
            values=int(values.shape[0]),
            uncompressed_bits=int(values.shape[0]) * value_bits,
            compressed_bits=int(compressed),
        )

    def partitioned_stats(
        self,
        values: np.ndarray,
        boundaries: np.ndarray | list[int],
        value_bits: int = 32,
    ) -> CompressionStats:
        """Per-partition frame-of-reference statistics.

        Small partitions cover small value ranges, so finer partitioning
        yields narrower offsets (the synergy described in Section 6.2).
        """
        values = np.asarray(values, dtype=np.int64)
        compressed = 0
        start = 0
        for end in boundaries:
            end = int(end)
            segment = values[start:end]
            if segment.size:
                offsets = segment - int(segment.min())
                offset_bits = _bits_for_range(int(offsets.max()) + 1)
                compressed += value_bits + segment.shape[0] * offset_bits
            start = end
        return CompressionStats(
            scheme=f"{self.scheme}[partitioned]",
            values=int(values.shape[0]),
            uncompressed_bits=int(values.shape[0]) * value_bits,
            compressed_bits=int(compressed),
        )


class RunLengthCodec:
    """Run-length encoding; requires sorted data for good ratios."""

    scheme = "run_length"

    def encode(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(run_values, run_lengths)``."""
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return values.copy(), values.copy()
        change = np.nonzero(np.diff(values) != 0)[0] + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [values.size]))
        return values[starts], (ends - starts).astype(np.int64)

    def decode(self, run_values: np.ndarray, run_lengths: np.ndarray) -> np.ndarray:
        """Reconstruct the original values."""
        return np.repeat(np.asarray(run_values), np.asarray(run_lengths))

    def stats(self, values: np.ndarray, value_bits: int = 32) -> CompressionStats:
        """Compression statistics (each run stored as value + 32-bit length)."""
        values = np.asarray(values, dtype=np.int64)
        run_values, _ = self.encode(values)
        compressed = run_values.shape[0] * (value_bits + 32)
        return CompressionStats(
            scheme=self.scheme,
            values=int(values.shape[0]),
            uncompressed_bits=int(values.shape[0]) * value_bits,
            compressed_bits=int(compressed),
        )
