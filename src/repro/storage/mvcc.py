"""Snapshot isolation via multi-version concurrency control (Section 6.1).

Casper supports general transactions through snapshot isolation: every
transaction works on the snapshot observed at its begin timestamp, buffers
its writes locally, and at commit time the first committer wins -- any
concurrent transaction that wrote an overlapping key aborts and rolls back.

This module implements that protocol at the granularity of logical keys
(row identifiers or column values), decoupled from the physical column so it
can wrap any layout.  Ghost-value rippling is deliberately *not* part of a
transaction's write set (Section 6.1, "Reducing the Ripple Contention"):
fetched ghost blocks persist even if the transaction rolls back, which the
engine models by applying ripple side effects eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from .errors import TransactionConflictError, TransactionStateError


class TransactionStatus(Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class WriteIntent:
    """A buffered write: the operation closure plus the key it touches.

    ``record`` optionally logs the write's delta into a
    :class:`~repro.storage.access_log.DeltaLog` once ``apply`` has run --
    the storage engine attaches it so a durable commit can publish the
    transaction's write set through the WAL.  The manager stays
    storage-agnostic: it only ever calls the two closures.
    """

    key: int
    apply: Callable[[], None]
    description: str = ""
    record: Callable[[object], None] | None = None


@dataclass
class Transaction:
    """A snapshot-isolated transaction."""

    txn_id: int
    begin_ts: int
    status: TransactionStatus = TransactionStatus.ACTIVE
    commit_ts: int | None = None
    read_set: set[int] = field(default_factory=set)
    write_intents: list[WriteIntent] = field(default_factory=list)

    @property
    def write_set(self) -> set[int]:
        """Keys written by this transaction."""
        return {intent.key for intent in self.write_intents}

    def record_read(self, key: int) -> None:
        """Record that ``key`` was read under this snapshot."""
        self._ensure_active()
        self.read_set.add(int(key))

    def record_write(
        self,
        key: int,
        apply: Callable[[], None],
        description: str = "",
        record: Callable[[object], None] | None = None,
    ) -> None:
        """Buffer a write to ``key``; ``apply`` executes it at commit time."""
        self._ensure_active()
        self.write_intents.append(WriteIntent(int(key), apply, description, record))

    def _ensure_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.status.value}"
            )


class TransactionManager:
    """First-committer-wins snapshot isolation over logical keys.

    The manager tracks, for every key, the commit timestamp of the last
    transaction that wrote it.  A committing transaction aborts if any key in
    its write set was committed by another transaction after its begin
    timestamp (write-write conflict), which is the classic snapshot-isolation
    rule the paper adopts.
    """

    def __init__(self) -> None:
        self._clock = 0
        self._next_txn_id = 1
        self._last_commit_ts: dict[int, int] = {}
        self._active: dict[int, Transaction] = {}
        self.committed = 0
        self.aborted = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def begin(self) -> Transaction:
        """Start a new transaction at the current snapshot."""
        txn = Transaction(txn_id=self._next_txn_id, begin_ts=self._clock)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        return txn

    def commit(self, txn: Transaction, *, deltas=None) -> int:
        """Attempt to commit ``txn``; returns the commit timestamp.

        Raises :class:`TransactionConflictError` (after rolling the
        transaction back) when another transaction committed a conflicting
        write after ``txn`` began.  The conflict check runs before any
        intent applies, so an aborted commit leaves no trace -- in memory
        or in ``deltas``.

        ``deltas`` is the optional delta log a durable engine passes in:
        each intent that carries a ``record`` closure logs its applied
        write into it, in apply order, so the log describes exactly the
        write set the commit published (or, if an apply dies part-way, the
        applied prefix -- matching the engine's batch commit contract).
        """
        if txn.status is not TransactionStatus.ACTIVE:
            raise TransactionStateError(
                f"transaction {txn.txn_id} is {txn.status.value}"
            )
        for key in txn.write_set:
            last = self._last_commit_ts.get(key)
            if last is not None and last > txn.begin_ts:
                self.abort(txn)
                raise TransactionConflictError(
                    f"transaction {txn.txn_id} conflicts on key {key}"
                )
        commit_ts = self._tick()
        for intent in txn.write_intents:
            intent.apply()
            if deltas is not None and intent.record is not None:
                intent.record(deltas)
        for key in txn.write_set:
            self._last_commit_ts[key] = commit_ts
        txn.status = TransactionStatus.COMMITTED
        txn.commit_ts = commit_ts
        self._active.pop(txn.txn_id, None)
        self.committed += 1
        return commit_ts

    def abort(self, txn: Transaction) -> None:
        """Roll back ``txn`` (its buffered writes are discarded)."""
        if txn.status is TransactionStatus.COMMITTED:
            raise TransactionStateError("cannot abort a committed transaction")
        if txn.status is TransactionStatus.ABORTED:
            return
        txn.status = TransactionStatus.ABORTED
        txn.write_intents.clear()
        self._active.pop(txn.txn_id, None)
        self.aborted += 1

    @property
    def active_transactions(self) -> int:
        """Number of transactions currently in flight."""
        return len(self._active)
