"""Shallow partition index (Section 3 and Section 6.3 of the paper).

Casper keeps per-partition metadata: the minimum and maximum value covered by
each partition plus positional information inside the chunk.  Searching this
metadata uses a shallow k-ary tree; when the number of partitions is small the
metadata behaves like Zonemaps and can simply be scanned.

The index cost is charged through ``AccessCounter.index_probe`` and, per the
paper, is *shared* by every operation and therefore excluded from the layout
optimization objective.

Fence-maintenance invariants
----------------------------

The index routes by *upper fences*: ``fences[i]`` is the largest value that
partition ``i`` may hold.  Callers that keep an index consistent with live
data must preserve:

1. **Monotonicity** -- fences are non-decreasing.  Equal neighbouring fences
   are legal and mean a duplicate run spans several partitions.
2. **Coverage** -- every live value of partition ``i`` is ``<= fences[i]``.
   The last fence is conventionally ``int64 max`` so inserts of new maxima
   route to the last partition without fence updates.
3. **Lower bound** -- every live value of partition ``i`` is ``>=
   fences[i - 1]``.  Note the inclusive bound: a duplicate run may straddle a
   boundary, so a value *equal* to the previous fence may legally live in the
   next partition.  Point lookups therefore must probe the full
   :meth:`PartitionIndex.locate_all` span, not a single partition.
4. **Raising fences** -- inserting a value ``v`` into partition ``i`` with
   ``v > fences[i]`` requires :meth:`PartitionIndex.update_fence` (only the
   last partition, whose fence is ``int64 max``, is exempt).  Deletes may
   leave fences stale-high; that only widens routing and never loses rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PartitionMetadata:
    """Zonemap-style metadata for a single partition."""

    index: int
    low: int
    high: int
    count: int


class PartitionIndex:
    """k-ary search tree over partition upper fences.

    The index maps a value to the partition(s) that may contain it: the first
    partition whose upper fence is >= the value, plus -- when duplicate runs
    make neighbouring fences equal, or a run straddles a boundary -- the
    partitions immediately after it (see :meth:`locate_all`).  Values larger
    than every fence map to the last partition (which is where inserts of new
    maxima land).

    Parameters
    ----------
    fanout:
        Arity of the search tree.  Purely affects the simulated probe depth;
        lookups are implemented with ``numpy.searchsorted`` for speed.
    """

    def __init__(self, fanout: int = 16) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.fanout = fanout
        self._fences = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return int(self._fences.shape[0])

    @property
    def fences(self) -> np.ndarray:
        """Upper fence (maximum routable value) of each partition."""
        return self._fences

    def rebuild(self, fences: np.ndarray | list[int]) -> None:
        """Rebuild the index from a non-decreasing array of upper fences."""
        fences = np.asarray(fences, dtype=np.int64)
        if fences.ndim != 1:
            raise ValueError("fences must be one-dimensional")
        if fences.size > 1 and np.any(np.diff(fences) < 0):
            raise ValueError("fences must be non-decreasing")
        self._fences = fences.copy()

    def update_fence(self, partition: int, fence: int) -> None:
        """Update the upper fence of a single partition."""
        self._fences[partition] = fence

    @property
    def depth(self) -> int:
        """Depth of the k-ary tree (number of node visits per probe)."""
        n = len(self)
        if n <= 1:
            return 1
        depth = 1
        span = self.fanout
        while span < n:
            span *= self.fanout
            depth += 1
        return depth

    def locate(self, value: int) -> int:
        """First partition id that may contain ``value``.

        Values beyond the last fence are routed to the last partition.  This
        is the *insert* routing rule: new values always land in the first
        candidate partition, which keeps duplicates of a value from spreading
        further than the load-time layout put them.
        """
        if len(self) == 0:
            raise IndexError("index is empty")
        pos = int(np.searchsorted(self._fences, value, side="left"))
        if pos >= len(self):
            pos = len(self) - 1
        return pos

    def locate_all(self, value: int) -> tuple[int, int]:
        """Inclusive ``(first, last)`` span of partitions that may hold ``value``.

        With strictly increasing fences and no straddling duplicate runs this
        span is a single partition.  Two situations widen it:

        * neighbouring fences equal to ``value`` (a duplicate run filling
          whole partitions) -- every partition of the equal-fence run is a
          candidate;
        * ``value`` equal to a fence with the run spilling into the next
          partition (invariant 3 above) -- the partition after the equal-fence
          run is a candidate as well.

        When ``fences[first] > value`` neither applies and the span collapses
        to ``(first, first)``.
        """
        if len(self) == 0:
            raise IndexError("index is empty")
        n = len(self)
        first = int(np.searchsorted(self._fences, value, side="left"))
        if first >= n:
            return n - 1, n - 1
        last = min(int(np.searchsorted(self._fences, value, side="right")), n - 1)
        return first, max(first, last)

    def locate_range(
        self, low: int, high: int, *, spanning: bool = True
    ) -> tuple[int, int]:
        """Partitions spanned by the inclusive value range ``[low, high]``.

        Returns ``(first, last)`` partition ids with ``first <= last``.  By
        default the high bound uses ``side="right"`` semantics: all
        partitions whose fence *equals* ``high`` (equal-fence duplicate runs)
        are spanned, plus the partition immediately after them, whose leading
        values may equal the shared fence (a duplicate run straddling the
        boundary).

        Callers that maintain the snapped-boundary invariant -- no duplicate
        run ever straddles a partition boundary, as
        :class:`~repro.storage.column.PartitionedColumn` guarantees -- may
        pass ``spanning=False`` for the tight ``side="left"`` span, which is
        the span the optimizer's cost model prices.
        """
        if low > high:
            raise ValueError("low must be <= high")
        first = self.locate(low)
        side = "right" if spanning else "left"
        last = min(int(np.searchsorted(self._fences, high, side=side)), len(self) - 1)
        if last < first:
            last = first
        return first, last

    def locate_batch(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`locate_all` over an array of values.

        Returns ``(first, last)`` arrays of candidate spans, one entry per
        input value.
        """
        if len(self) == 0:
            raise IndexError("index is empty")
        values = np.asarray(values, dtype=np.int64)
        n = len(self)
        first = np.minimum(
            np.searchsorted(self._fences, values, side="left"), n - 1
        ).astype(np.int64)
        last = np.minimum(
            np.searchsorted(self._fences, values, side="right"), n - 1
        ).astype(np.int64)
        return first, np.maximum(first, last)

    def locate_range_batch(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        *,
        spanning: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`locate_range` over aligned bound arrays."""
        if len(self) == 0:
            raise IndexError("index is empty")
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        if lows.shape != highs.shape:
            raise ValueError("lows and highs must be aligned")
        if np.any(lows > highs):
            raise ValueError("low must be <= high")
        n = len(self)
        side = "right" if spanning else "left"
        first = np.minimum(
            np.searchsorted(self._fences, lows, side="left"), n - 1
        ).astype(np.int64)
        last = np.minimum(
            np.searchsorted(self._fences, highs, side=side), n - 1
        ).astype(np.int64)
        return first, np.maximum(first, last)
