"""Shallow partition index (Section 3 and Section 6.3 of the paper).

Casper keeps per-partition metadata: the minimum and maximum value covered by
each partition plus positional information inside the chunk.  Searching this
metadata uses a shallow k-ary tree; when the number of partitions is small the
metadata behaves like Zonemaps and can simply be scanned.

The index cost is charged through ``AccessCounter.index_probe`` and, per the
paper, is *shared* by every operation and therefore excluded from the layout
optimization objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PartitionMetadata:
    """Zonemap-style metadata for a single partition."""

    index: int
    low: int
    high: int
    count: int


class PartitionIndex:
    """k-ary search tree over partition upper fences.

    The index maps a value to the partition that may contain it: the first
    partition whose upper fence is >= the value.  Values larger than every
    fence map to the last partition (which is where inserts of new maxima
    land).

    Parameters
    ----------
    fanout:
        Arity of the search tree.  Purely affects the simulated probe depth;
        lookups are implemented with ``numpy.searchsorted`` for speed.
    """

    def __init__(self, fanout: int = 16) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.fanout = fanout
        self._fences = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return int(self._fences.shape[0])

    @property
    def fences(self) -> np.ndarray:
        """Upper fence (maximum routable value) of each partition."""
        return self._fences

    def rebuild(self, fences: np.ndarray | list[int]) -> None:
        """Rebuild the index from a non-decreasing array of upper fences."""
        fences = np.asarray(fences, dtype=np.int64)
        if fences.ndim != 1:
            raise ValueError("fences must be one-dimensional")
        if fences.size > 1 and np.any(np.diff(fences) < 0):
            raise ValueError("fences must be non-decreasing")
        self._fences = fences.copy()

    def update_fence(self, partition: int, fence: int) -> None:
        """Update the upper fence of a single partition."""
        self._fences[partition] = fence

    @property
    def depth(self) -> int:
        """Depth of the k-ary tree (number of node visits per probe)."""
        n = len(self)
        if n <= 1:
            return 1
        depth = 1
        span = self.fanout
        while span < n:
            span *= self.fanout
            depth += 1
        return depth

    def locate(self, value: int) -> int:
        """Partition id that may contain ``value``.

        Values beyond the last fence are routed to the last partition.
        """
        if len(self) == 0:
            raise IndexError("index is empty")
        pos = int(np.searchsorted(self._fences, value, side="left"))
        if pos >= len(self):
            pos = len(self) - 1
        return pos

    def locate_range(self, low: int, high: int) -> tuple[int, int]:
        """Partitions spanned by the inclusive value range ``[low, high]``.

        Returns ``(first, last)`` partition ids with ``first <= last``.
        """
        if low > high:
            raise ValueError("low must be <= high")
        first = self.locate(low)
        pos = int(np.searchsorted(self._fences, high, side="left"))
        last = min(pos, len(self) - 1)
        if last < first:
            last = first
        return first, last
