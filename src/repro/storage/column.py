"""Range-partitioned column chunk with ghost values and ripple maintenance.

This is the core physical structure of the Casper storage engine (Sections 2
and 3 of the paper).  A column chunk is stored as one contiguous array whose
physical space is divided into consecutive *partition regions*.  Each region
holds the live values of one partition at its front and (optionally) ghost
values -- empty slots -- at its tail.  Partitions are range partitioned: every
live value of partition ``i`` is greater than the upper fence of partition
``i - 1`` and no larger than the fence of partition ``i``.  Inside a partition
values are unordered and queries scan the whole partition.

Supported operations mirror the paper's storage-engine repertoire:

* point queries (scan the single candidate partition),
* range queries (filter the first/last partition, blindly consume the middle),
* inserts (use local ghost slack or ripple an empty slot from a later
  partition, Fig. 4a),
* deletes (swap the victim to the partition tail; in dense mode the hole is
  rippled to the end of the column, Fig. 4b),
* updates (delete-then-place with a forward or backward ripple, Section 3).

Every operation charges an :class:`~repro.storage.cost_accounting.AccessCounter`
with the block accesses it performs, which is what the benchmark harness uses
as the simulated latency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.discipline import requires_latch

from .cost_accounting import (
    DEFAULT_BLOCK_VALUES,
    AccessCounter,
    blocks_spanned,
)
from .errors import LayoutError, ValueNotFoundError
from .partition_index import PartitionIndex, PartitionMetadata


@dataclass
class RangeResult:
    """Result of a range query over a partitioned column."""

    count: int
    positions: np.ndarray | None = None
    values: np.ndarray | None = None


def snap_boundaries_to_duplicates(
    sorted_values: np.ndarray, boundaries: np.ndarray | list[int]
) -> np.ndarray:
    """Adjust partition end offsets so duplicate runs never straddle a boundary.

    ``boundaries`` are exclusive end offsets into ``sorted_values`` (the last
    boundary must equal ``len(sorted_values)``).  If a boundary would split a
    run of equal values it is moved forward to the end of the run, and any
    boundary that collapses onto a later one is dropped.
    """
    sorted_values = np.asarray(sorted_values)
    n = sorted_values.shape[0]
    ends = np.asarray(boundaries, dtype=np.int64).ravel()
    if ends.size:
        bad = (ends <= 0) | (ends > n)
        if np.any(bad):
            end = int(ends[np.nonzero(bad)[0][0]])
            raise LayoutError(f"boundary {end} out of range (0, {n}]")
        # The end of the duplicate run containing sorted_values[end - 1] is
        # its right insertion point; a boundary that does not split a run is
        # its own insertion point, so one searchsorted snaps every boundary.
        snapped = np.searchsorted(
            sorted_values, sorted_values[ends - 1], side="right"
        ).astype(np.int64)
        prefix_max = np.concatenate(
            ([np.int64(-1)], np.maximum.accumulate(snapped)[:-1])
        )
        snapped = snapped[snapped > prefix_max]
    else:
        snapped = np.empty(0, dtype=np.int64)
    if snapped.size == 0 or snapped[-1] != n:
        snapped = np.append(snapped, n)
    return snapped.astype(np.int64)


def sort_batch_with_rowids(
    values: np.ndarray | list[int],
    rowids: np.ndarray | None,
    next_rowid: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared bulk-write preamble: stable-sort a batch and assign row ids.

    Returns ``(order, sorted_values, sorted_rowids, out)`` where ``order``
    is the stable ascending-value permutation and ``out`` carries the
    assigned row ids back in *input* order.  When ``rowids`` is ``None``,
    fresh ids starting at ``next_rowid`` are assigned in sorted order,
    exactly as sequential inserts would hand them out.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise LayoutError("values must be one-dimensional")
    m = int(values.size)
    order = np.argsort(values, kind="stable")
    if rowids is None:
        sorted_rowids = np.arange(next_rowid, next_rowid + m, dtype=np.int64)
    else:
        rowids = np.asarray(rowids, dtype=np.int64)
        if rowids.shape != values.shape:
            raise LayoutError("rowids must align with values")
        sorted_rowids = rowids[order]
    out = np.empty(m, dtype=np.int64)
    out[order] = sorted_rowids
    return order, values[order], sorted_rowids, out


def expand_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``np.arange(s, s + l)`` for aligned start/length arrays.

    The workhorse of the vectorized batch probes: it materializes many
    half-open index ranges in one shot without a Python loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    return np.repeat(starts, lengths) + offsets


def equal_width_boundaries(size: int, partitions: int) -> np.ndarray:
    """Exclusive end offsets for ``partitions`` near-equal partitions of ``size``."""
    if partitions <= 0:
        raise LayoutError("partitions must be positive")
    partitions = min(partitions, size) if size > 0 else 1
    edges = np.linspace(0, size, partitions + 1)[1:]
    boundaries = np.unique(np.round(edges).astype(np.int64))
    if boundaries.size == 0 or boundaries[-1] != size:
        boundaries = np.append(boundaries, size)
    return boundaries.astype(np.int64)


class PartitionedColumn:
    """A single range-partitioned column chunk.

    Parameters
    ----------
    sorted_values:
        The chunk's initial data, in non-decreasing order.
    boundaries:
        Exclusive end offsets of each partition within ``sorted_values``.
        The final boundary must equal ``len(sorted_values)``.
    block_values:
        Number of values per block; used purely for access accounting.
    ghost_allocation:
        Optional per-partition ghost-slot counts (same length as
        ``boundaries``).  ``None`` means a dense column.
    dense:
        If ``True`` the column keeps partitions dense: holes created by
        deletes are rippled to the end of the column instead of remaining in
        the partition as ghost slots.
    track_rowids:
        If ``True`` a parallel row-id array mirrors all data movement so a
        table can keep payload columns positionally addressable.
    counter:
        Access counter to charge; a private one is created when omitted.
    """

    GROWTH_BLOCKS = 4

    def __init__(
        self,
        sorted_values: np.ndarray | list[int],
        boundaries: np.ndarray | list[int] | None = None,
        *,
        block_values: int = DEFAULT_BLOCK_VALUES,
        ghost_allocation: np.ndarray | list[int] | None = None,
        dense: bool | None = None,
        track_rowids: bool = False,
        rowids: np.ndarray | None = None,
        counter: AccessCounter | None = None,
        index_fanout: int = 16,
    ) -> None:
        values = np.asarray(sorted_values, dtype=np.int64)
        if values.ndim != 1:
            raise LayoutError("sorted_values must be one-dimensional")
        if values.size > 1 and np.any(np.diff(values) < 0):
            raise LayoutError("sorted_values must be non-decreasing")
        if block_values <= 0:
            raise LayoutError("block_values must be positive")
        self.block_values = int(block_values)
        self.counter = counter if counter is not None else AccessCounter()
        self._index = PartitionIndex(fanout=index_fanout)

        if boundaries is None:
            boundaries = np.asarray([values.size], dtype=np.int64)
        boundaries = np.asarray(boundaries, dtype=np.int64)
        if values.size == 0:
            boundaries = np.asarray([0], dtype=np.int64)
        else:
            boundaries = snap_boundaries_to_duplicates(values, boundaries)
        k = boundaries.shape[0]

        if ghost_allocation is None:
            ghosts = np.zeros(k, dtype=np.int64)
        else:
            ghosts = np.asarray(ghost_allocation, dtype=np.int64)
            if ghosts.shape[0] != k:
                raise LayoutError(
                    "ghost_allocation length must match the number of partitions"
                )
            if np.any(ghosts < 0):
                raise LayoutError("ghost_allocation must be non-negative")
        if dense is None:
            dense = ghosts.sum() == 0
        self.dense = bool(dense)

        starts_data = np.concatenate(([0], boundaries[:-1]))
        counts = boundaries - starts_data
        capacities = counts + ghosts
        physical_size = int(capacities.sum())

        self._data = np.zeros(physical_size, dtype=np.int64)
        self._track_rowids = bool(track_rowids)
        if self._track_rowids:
            if rowids is None:
                rowids = np.arange(values.size, dtype=np.int64)
            else:
                rowids = np.asarray(rowids, dtype=np.int64)
                if rowids.shape[0] != values.size:
                    raise LayoutError("rowids must align with sorted_values")
            self._rowids = np.full(physical_size, -1, dtype=np.int64)
        else:
            self._rowids = None

        self._starts = np.zeros(k, dtype=np.int64)
        self._counts = counts.astype(np.int64)
        offset = 0
        for i in range(k):
            self._starts[i] = offset
            lo, hi = int(starts_data[i]), int(boundaries[i])
            self._data[offset : offset + counts[i]] = values[lo:hi]
            if self._track_rowids:
                self._rowids[offset : offset + counts[i]] = rowids[lo:hi]
            offset += int(capacities[i])

        #: Lazily-built sorted views per partition for the batch read probes:
        #: partition -> (sorted_segment, order) where ``order`` maps sorted
        #: slots back to local positions (``None`` when the live segment is
        #: already sorted).  Any write to a partition invalidates its entry.
        self._sorted_views: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}
        self._fences = np.zeros(k, dtype=np.int64)
        self._mins = np.zeros(k, dtype=np.int64)
        self._maxs = np.zeros(k, dtype=np.int64)
        previous_fence = np.iinfo(np.int64).min
        for i in range(k):
            if counts[i] > 0:
                segment = values[int(starts_data[i]) : int(boundaries[i])]
                self._mins[i] = segment[0]
                self._maxs[i] = segment[-1]
                self._fences[i] = segment[-1]
                previous_fence = self._fences[i]
            else:
                self._mins[i] = previous_fence
                self._maxs[i] = previous_fence
                self._fences[i] = previous_fence
        if k > 0:
            self._fences[k - 1] = np.iinfo(np.int64).max
        self._index.rebuild(self._fences)
        self._next_rowid = int(values.size)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_partitions(self) -> int:
        """Number of partitions in the chunk."""
        return int(self._starts.shape[0])

    @property
    def size(self) -> int:
        """Number of live values."""
        return int(self._counts.sum())

    @property
    def physical_size(self) -> int:
        """Number of physical slots (live values plus ghost slots)."""
        return int(self._data.shape[0])

    @property
    def memory_amplification(self) -> float:
        """Physical slots divided by live values."""
        live = self.size
        return float(self.physical_size) / live if live else 1.0

    def partition_counts(self) -> np.ndarray:
        """Live value count per partition."""
        return self._counts.copy()

    def partition_capacities(self) -> np.ndarray:
        """Physical capacity (live + ghost) per partition."""
        return self._capacities()

    def ghost_counts(self) -> np.ndarray:
        """Ghost (empty) slots per partition."""
        return self._capacities() - self._counts

    def partition_metadata(self) -> list[PartitionMetadata]:
        """Zonemap-style metadata for every partition."""
        return [
            PartitionMetadata(
                index=i,
                low=int(self._mins[i]),
                high=int(self._maxs[i]),
                count=int(self._counts[i]),
            )
            for i in range(self.num_partitions)
        ]

    def values(self) -> np.ndarray:
        """Materialize all live values (unsorted across the chunk)."""
        pieces = [
            self._data[s : s + c]
            for s, c in zip(self._starts, self._counts, strict=True)
            if c > 0
        ]
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def rowids(self) -> np.ndarray:
        """Materialize live row ids (aligned with :meth:`values`)."""
        if not self._track_rowids:
            raise LayoutError("row-id tracking is disabled for this column")
        pieces = [
            self._rowids[s : s + c]
            for s, c in zip(self._starts, self._counts, strict=True)
            if c > 0
        ]
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def _capacities(self) -> np.ndarray:
        ends = np.concatenate((self._starts[1:], [self._data.shape[0]]))
        return ends - self._starts

    def _partition_blocks(self, partition: int) -> int:
        # Scan cost is proportional to the data volume read (live values),
        # independent of how ghost slots shift the partition's physical
        # alignment relative to block boundaries.
        count = int(self._counts[partition])
        if count <= 0:
            return 0
        return blocks_spanned(0, count, self.block_values)

    def _invalidate_sorted(self, partition: int) -> None:
        self._sorted_views.pop(partition, None)

    def _sorted_view(
        self, partition: int, probe_count: int | None = None
    ) -> tuple[np.ndarray, np.ndarray | None] | None:
        """Sorted live segment of ``partition`` plus its position mapping.

        Returns ``(sorted_segment, order)`` where ``order`` maps sorted
        slots back to local positions; ``order`` is ``None`` when the live
        segment is already sorted.  Views are cached until the partition is
        written (every data-moving primitive invalidates its entry), which
        keeps repeated batch probes from re-sorting unchanged partitions.

        ``probe_count`` is the number of probes the caller wants to resolve
        against the view: when building one would require an argsort that
        costs more than that many linear scans, ``None`` is returned (and
        nothing cached) so the caller can fall back to per-probe scans.
        """
        cached = self._sorted_views.get(partition)
        if cached is not None:
            return cached
        start = int(self._starts[partition])
        count = int(self._counts[partition])
        segment = self._data[start : start + count]
        if count > 1 and np.any(segment[1:] < segment[:-1]):
            if probe_count is not None and probe_count * 16 < count:
                return None
            order = np.argsort(segment, kind="stable")
            cached = (segment[order], order)
        else:
            cached = (segment, None)
        self._sorted_views[partition] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Read operations
    # ------------------------------------------------------------------ #

    def locate_partition(self, value: int) -> int:
        """Partition id that may contain ``value`` (index probe)."""
        self.counter.index_probe()
        return self._index.locate(int(value))

    @requires_latch("shared")
    def point_query(self, value: int, *, return_rowids: bool = False) -> np.ndarray:
        """Return positions (or row ids) of live entries equal to ``value``.

        The candidate partition is located via the shallow index and then
        fully scanned with one random read for its first block and sequential
        reads for the rest (Fig. 3b).
        """
        partition = self.locate_partition(value)
        blocks = self._partition_blocks(partition)
        if blocks > 0:
            self.counter.random_read(1)
            if blocks > 1:
                self.counter.seq_read(blocks - 1)
        return self._scan_partition_for(partition, value, return_rowids)

    def _scan_partition_for(
        self, partition: int, value: int, return_rowids: bool
    ) -> np.ndarray:
        start = int(self._starts[partition])
        count = int(self._counts[partition])
        segment = self._data[start : start + count]
        local = np.nonzero(segment == value)[0]
        positions = local + start
        if return_rowids:
            if not self._track_rowids:
                raise LayoutError("row-id tracking is disabled for this column")
            return self._rowids[positions]
        return positions

    @requires_latch("shared")
    def multi_point_query(
        self, values: np.ndarray | list[int], *, return_rowids: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized point queries over many values at once.

        Returns ``(hits, counts)``: ``counts[i]`` is the number of matches of
        ``values[i]`` and ``hits`` is the flat concatenation of the matching
        positions (or row ids), grouped by input value in input order.

        Values are routed with one ``searchsorted`` over the fences, grouped
        by partition, and each touched partition is resolved through a sorted
        view (built once per partition, or reused directly when the live
        segment is already sorted).  The charged accesses are identical to
        issuing each point query individually: one index probe plus one
        random read and ``blocks - 1`` sequential reads per value.
        """
        values = np.asarray(values, dtype=np.int64)
        m = int(values.size)
        empty = np.empty(0, dtype=np.int64)
        if m == 0:
            return empty, empty
        if return_rowids and not self._track_rowids:
            raise LayoutError("row-id tracking is disabled for this column")
        self.counter.index_probe(m)
        partitions = np.minimum(
            np.searchsorted(self._index.fences, values, side="left"),
            self.num_partitions - 1,
        )
        counts_out = np.zeros(m, dtype=np.int64)
        owner_pieces: list[np.ndarray] = []
        hit_pieces: list[np.ndarray] = []
        order = np.argsort(partitions, kind="stable")
        unique_parts, group_starts, group_counts = np.unique(
            partitions[order], return_index=True, return_counts=True
        )
        random_reads = 0
        seq_reads = 0
        for partition, group_lo, group_size in zip(
            unique_parts.tolist(),
            group_starts.tolist(),
            group_counts.tolist(),
            strict=True,
        ):
            sel = order[group_lo : group_lo + group_size]
            blocks = self._partition_blocks(partition)
            if blocks > 0:
                random_reads += group_size
                seq_reads += (blocks - 1) * group_size
            start = int(self._starts[partition])
            count = int(self._counts[partition])
            wanted = values[sel]
            view = self._sorted_view(partition, probe_count=group_size)
            if view is None:
                # Small probe group on an unindexed partition: per-value
                # linear scans beat building a sorted view.
                segment = self._data[start : start + count]
                for owner, value in zip(sel.tolist(), wanted.tolist(), strict=True):
                    local = np.nonzero(segment == value)[0]
                    if local.size:
                        counts_out[owner] = local.size
                        owner_pieces.append(
                            np.full(local.size, owner, dtype=np.int64)
                        )
                        positions = local + start
                        hit_pieces.append(
                            self._rowids[positions]
                            if return_rowids
                            else positions
                        )
                continue
            seg_sorted, seg_order = view
            lo = np.searchsorted(seg_sorted, wanted, side="left")
            hi = np.searchsorted(seg_sorted, wanted, side="right")
            hits_per_value = (hi - lo).astype(np.int64)
            if not np.any(hits_per_value):
                continue
            local = expand_ranges(lo, hits_per_value)
            if seg_order is not None:
                # Stable argsort keeps equal values in physical order, so the
                # per-value hit order matches the per-op partition scan.
                local = seg_order[local]
            positions = local + start
            counts_out[sel] = hits_per_value
            owner_pieces.append(np.repeat(sel, hits_per_value))
            hit_pieces.append(
                self._rowids[positions] if return_rowids else positions
            )
        if random_reads:
            self.counter.random_read(random_reads)
        if seq_reads:
            self.counter.seq_read(seq_reads)
        if not owner_pieces:
            return empty, counts_out
        owners = np.concatenate(owner_pieces)
        hits = np.concatenate(hit_pieces)
        return hits[np.argsort(owners, kind="stable")], counts_out

    @requires_latch("shared")
    def multi_range_count(
        self, lows: np.ndarray | list[int], highs: np.ndarray | list[int]
    ) -> np.ndarray:
        """Vectorized range counts for aligned ``lows``/``highs`` arrays.

        Boundary partitions are resolved through per-partition sorted views;
        fully covered middle partitions contribute their live counts through
        a prefix sum (they are blindly consumed, exactly like
        :meth:`range_query`).  Charged accesses match issuing each range
        query individually with ``materialize=False``.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        m = int(lows.size)
        if m == 0:
            if lows.shape != highs.shape:
                raise ValueError("lows and highs must be aligned")
            return np.empty(0, dtype=np.int64)
        first, last = self._index.locate_range_batch(lows, highs, spanning=False)
        self.counter.index_probe(m)

        counts = self._counts.astype(np.int64)
        blocks = np.where(
            counts > 0, (counts + self.block_values - 1) // self.block_values, 0
        )
        blocks_cum = np.concatenate(([0], np.cumsum(blocks)))
        counts_cum = np.concatenate(([0], np.cumsum(counts)))
        first_blocks = blocks[first]
        random_reads = int(np.count_nonzero(first_blocks > 0))
        seq_reads = int(np.sum(np.where(first_blocks > 0, first_blocks - 1, 0)))
        seq_reads += int(np.sum(blocks_cum[last + 1] - blocks_cum[first + 1]))
        if random_reads:
            self.counter.random_read(random_reads)
        if seq_reads:
            self.counter.seq_read(seq_reads)

        totals = np.zeros(m, dtype=np.int64)
        spanning = last > first
        totals[spanning] = (
            counts_cum[last[spanning]] - counts_cum[first[spanning] + 1]
        )
        # Boundary partitions, grouped by partition: each touched partition is
        # sorted (or reused directly) once and resolves all of its ranges
        # with a single searchsorted pair.
        boundary_parts = np.concatenate((first, last[spanning]))
        owners = np.concatenate(
            (np.arange(m, dtype=np.int64), np.nonzero(spanning)[0])
        )
        for partition in np.unique(boundary_parts):
            partition = int(partition)
            sel = owners[boundary_parts == partition]
            view = self._sorted_view(partition, probe_count=int(sel.size))
            if view is None:
                # Small range group on an unindexed partition: per-range
                # mask counts beat building a sorted view.
                start = int(self._starts[partition])
                count = int(self._counts[partition])
                segment = self._data[start : start + count]
                for owner in sel.tolist():
                    totals[owner] += int(
                        (
                            (segment >= lows[owner]) & (segment <= highs[owner])
                        ).sum()
                    )
                continue
            segment, _ = view
            totals[sel] += (
                np.searchsorted(segment, highs[sel], side="right")
                - np.searchsorted(segment, lows[sel], side="left")
            )
        return totals

    @requires_latch("shared")
    def range_query(
        self,
        low: int,
        high: int,
        *,
        materialize: bool = True,
        return_rowids: bool = False,
    ) -> RangeResult:
        """Evaluate the inclusive predicate ``low <= value <= high``.

        The first and last overlapping partitions are filtered; intermediate
        partitions are blindly consumed (Fig. 3c).  When ``materialize`` is
        ``False`` only the qualifying count is computed (still charging the
        same accesses, as the engine must touch the blocks either way).
        """
        if low > high:
            raise ValueError("low must be <= high")
        self.counter.index_probe()
        # Boundaries are snapped to duplicate runs and inserts route to the
        # first candidate partition, so no run straddles a partition
        # boundary: the tight span is exact and matches the cost model.
        first, last = self._index.locate_range(int(low), int(high), spanning=False)

        total = 0
        position_chunks: list[np.ndarray] = []
        for partition in range(first, last + 1):
            blocks = self._partition_blocks(partition)
            if blocks > 0:
                if partition == first:
                    self.counter.random_read(1)
                    if blocks > 1:
                        self.counter.seq_read(blocks - 1)
                else:
                    self.counter.seq_read(blocks)
            start = int(self._starts[partition])
            count = int(self._counts[partition])
            if count == 0:
                continue
            segment = self._data[start : start + count]
            if partition in (first, last):
                mask = (segment >= low) & (segment <= high)
                qualifying = np.nonzero(mask)[0] + start
            else:
                qualifying = np.arange(start, start + count, dtype=np.int64)
            total += int(qualifying.shape[0])
            if materialize:
                position_chunks.append(qualifying)

        positions = None
        values = None
        if materialize:
            positions = (
                np.concatenate(position_chunks)
                if position_chunks
                else np.empty(0, dtype=np.int64)
            )
            if return_rowids:
                if not self._track_rowids:
                    raise LayoutError("row-id tracking is disabled for this column")
                values = self._rowids[positions]
            else:
                values = self._data[positions]
        return RangeResult(count=total, positions=positions, values=values)

    @requires_latch("shared")
    def range_rowids(self, low: int, high: int) -> np.ndarray:
        """Row ids of live entries whose value lies in ``[low, high]``."""
        result = self.range_query(low, high, materialize=True, return_rowids=True)
        return result.values if result.values is not None else np.empty(0, dtype=np.int64)

    @requires_latch("shared")
    def full_scan(self) -> np.ndarray:
        """Scan the entire chunk sequentially and return live values."""
        total_blocks = blocks_spanned(0, self.physical_size, self.block_values)
        if total_blocks > 0:
            self.counter.seq_read(total_blocks)
        return self.values()

    # ------------------------------------------------------------------ #
    # Write operations
    # ------------------------------------------------------------------ #

    @requires_latch("exclusive")
    def insert(self, value: int, rowid: int | None = None) -> int:
        """Insert ``value`` and return its row id.

        The target partition is the first one whose fence covers the value.
        If it (or a later partition) has a ghost slot, the slot is rippled
        backwards to the target partition; otherwise the column grows.
        """
        value = int(value)
        target = self.locate_partition(value)
        if rowid is None:
            rowid = self._next_rowid
        self._next_rowid = max(self._next_rowid, rowid + 1)

        donor = self._find_slack_partition(target)
        if donor is None:
            self._grow()
            donor = self.num_partitions - 1
        if donor != target:
            # Fetching the empty slot from the end of the column touches one
            # extra block in the donor partition (Section 3 / Eq. 9).
            self.counter.random_read(1)
            self.counter.random_write(1)
        self._ripple_slot_backward(donor, target)

        start = int(self._starts[target])
        position = start + int(self._counts[target])
        self._data[position] = value
        if self._track_rowids:
            self._rowids[position] = rowid
        self._counts[target] += 1
        self._invalidate_sorted(target)
        self.counter.random_read(1)
        self.counter.random_write(1)
        self._refresh_minmax_on_insert(target, value)
        return int(rowid)

    def _charged_point_scan(self, value: int) -> tuple[int, np.ndarray]:
        """Locate and scan ``value``'s partition, charging the accesses.

        The shared preamble of every single-value write path: one index
        probe, one random read plus ``blocks - 1`` sequential reads for the
        partition scan.  Raises :class:`ValueNotFoundError` when absent.
        """
        partition = self.locate_partition(value)
        blocks = self._partition_blocks(partition)
        if blocks > 0:
            self.counter.random_read(1)
            if blocks > 1:
                self.counter.seq_read(blocks - 1)
        positions = self._scan_partition_for(partition, value, return_rowids=False)
        if positions.shape[0] == 0:
            raise ValueNotFoundError(f"value {value} not found")
        return partition, positions

    def _oldest_first(self, positions: np.ndarray) -> np.ndarray:
        """Candidate positions reordered oldest row (smallest row id) first.

        The **duplicate-victim rule**: every single-victim write path
        (delete / remove_one / update, and the bulk paths that replay
        them) removes the oldest surviving copy of a duplicated value,
        so which physical copy dies is a deterministic function of the
        operation history -- serial and sharded executions agree exactly,
        payloads included.  Columns without row-id tracking fall back to
        physical scan order (their copies are indistinguishable).
        """
        if not self._track_rowids or positions.shape[0] < 2:
            return positions
        return positions[np.argsort(self._rowids[positions], kind="stable")]

    @requires_latch("exclusive")
    def delete(self, value: int, *, limit: int = 1) -> int:
        """Delete up to ``limit`` occurrences of ``value``.

        Returns the number of deleted entries.  Raises
        :class:`ValueNotFoundError` when the value is absent.  All victims
        come from the single charged partition scan, oldest copies first
        (see :meth:`_oldest_first`); they are removed in descending
        position order so a swap-with-last can never move a pending
        victim.
        """
        value = int(value)
        partition, positions = self._charged_point_scan(value)
        victims = self._oldest_first(positions)
        victims = victims[:limit] if limit is not None else victims
        deleted = int(victims.shape[0])
        for position in np.sort(victims)[::-1]:
            self._remove_at(partition, int(position))
        if self.dense:
            for _ in range(deleted):
                self._ripple_hole_forward(partition)
        return deleted

    @requires_latch("exclusive")
    def remove_one(self, value: int) -> int | None:
        """Delete one occurrence of ``value`` and return its row id.

        Identical to ``delete(value, limit=1)`` in behavior and charged
        accesses -- including the oldest-copy victim rule -- but reports
        which row id the deletion actually removed (``None`` when row ids
        are untracked) so callers moving a row between chunks keep global
        row ids consistent.
        """
        value = int(value)
        partition, positions = self._charged_point_scan(value)
        position = int(self._oldest_first(positions)[0])
        rowid = int(self._rowids[position]) if self._track_rowids else None
        self._remove_at(partition, position)
        if self.dense:
            self._ripple_hole_forward(partition)
        return rowid

    @requires_latch("exclusive")
    def update(self, old_value: int, new_value: int) -> None:
        """Update one occurrence of ``old_value`` to ``new_value``.

        Implements the direct ripple update of Section 3: a point query finds
        the source partition, the victim is swapped to the partition tail
        (creating a hole) and the hole ripples forward or backward to the
        target partition where the new value is placed.  With ghost values
        the ripple is skipped whenever the target partition already has local
        slack.
        """
        old_value = int(old_value)
        new_value = int(new_value)
        source, positions = self._charged_point_scan(old_value)
        victim = int(self._oldest_first(positions)[0])
        rowid = int(self._rowids[victim]) if self._track_rowids else None
        self._remove_at(source, victim)
        # Moving the hole to the end of the source partition: one extra
        # read/write pair on top of the delete's write (Eq. 12/14).
        self.counter.random_read(1)
        self.counter.random_write(1)

        target = self._index.locate(new_value)
        if not self.dense and self._partition_slack(target) > 0:
            placement = target
        elif target >= source:
            placement = self._ripple_hole_between(source, target, forward=True)
        else:
            placement = self._ripple_hole_between(source, target, forward=False)

        start = int(self._starts[placement])
        position = start + int(self._counts[placement])
        self._data[position] = new_value
        if self._track_rowids:
            self._rowids[position] = rowid if rowid is not None else self._next_rowid
        self._counts[placement] += 1
        self._invalidate_sorted(placement)
        self.counter.random_read(1)
        self.counter.random_write(1)
        self._refresh_minmax_on_insert(placement, new_value)

    # ------------------------------------------------------------------ #
    # Bulk write operations
    # ------------------------------------------------------------------ #

    @requires_latch("exclusive")
    def bulk_insert(
        self, values: np.ndarray | list[int], rowids: np.ndarray | None = None
    ) -> np.ndarray:
        """Insert a batch of values with one coalesced ripple sweep.

        Equivalent to calling :meth:`insert` once per value in ascending
        (stable) value order: the final layout, row ids and fences are
        byte-identical.  The batch is routed with a single ``searchsorted``
        over the fences, slack donors are consumed in the same greedy order
        as the sequential path, and all ripples are folded into one backward
        pass that rotates each touched partition once (the batched Fig. 4a).
        Charged accesses are at most the sequential path's: the per-partition
        ripple and tail placements charge each touched block once instead of
        once per insert, and are exactly equal when no partition is rippled
        through or appended to more than once.

        Returns the row ids of the inserted values, aligned with the *input*
        order.  When ``rowids`` is omitted, fresh row ids are assigned in
        ascending value order, exactly as sequential inserts would.
        """
        _, sorted_values, sorted_rowids, out = sort_batch_with_rowids(
            values, rowids, self._next_rowid
        )
        m = int(sorted_values.size)
        if m == 0:
            return out
        self._next_rowid = max(self._next_rowid, int(sorted_rowids.max()) + 1)

        self.counter.index_probe(m)
        k = self.num_partitions
        # First-candidate (insert) routing is locate_batch's `first` array.
        targets, _ = self._index.locate_batch(sorted_values)

        # Replay the sequential donor selection on metadata only: slack is
        # consumed greedily from the first partition >= target, with a
        # next-nonzero pointer chain standing in for the per-insert scan.
        slack = (self._capacities() - self._counts).astype(np.int64).tolist()
        nxt = list(range(k + 1))

        def find_slack(partition: int) -> int:
            cursor = partition
            path = []
            while cursor < k and slack[cursor] == 0:
                path.append(cursor)
                cursor = nxt[cursor] if nxt[cursor] > cursor else cursor + 1
            for node in path:
                nxt[node] = cursor
            return cursor

        grow_extra = self.GROWTH_BLOCKS * self.block_values
        growths = 0
        if k == 1 or not any(slack[:-1]):
            # Dense columns keep all slack at the tail (holes ripple to the
            # end of the column), so every donor is the last partition and
            # the greedy replay collapses to closed forms: ripples through
            # partition p are the inserts targeting partitions before it.
            tail_slack = slack[k - 1]
            if m > tail_slack:
                growths = -(-(m - tail_slack) // grow_extra)
            donor_pairs = int(np.count_nonzero(targets != k - 1))
            through = np.searchsorted(targets, np.arange(k), side="left")
            through[0] = 0
        else:
            donor_pairs = 0
            ripple_diff = np.zeros(k + 1, dtype=np.int64)
            for target in targets.tolist():
                donor = find_slack(target)
                if donor == k:
                    # Only the last partition ever regains slack (via growth).
                    if slack[k - 1] > 0:
                        donor = k - 1
                    else:
                        growths += 1
                        slack[k - 1] += grow_extra
                        donor = k - 1
                if donor != target:
                    donor_pairs += 1
                    ripple_diff[target + 1] += 1
                    ripple_diff[donor + 1] -= 1
                slack[donor] -= 1
            through = np.cumsum(ripple_diff)[:k]

        for _ in range(growths):
            self._grow()
        if donor_pairs:
            self.counter.random_read(donor_pairs)
            self.counter.random_write(donor_pairs)

        # Coalesced backward ripple sweep: rippling through a partition n
        # times rotates it left by n and shifts its start right by n, so one
        # rotation per touched partition reproduces the sequential layout.
        # Descending order keeps each partition's source region intact until
        # it has been relocated.
        for partition in np.nonzero(through > 0)[0][::-1]:
            shift = int(through[partition])
            start = int(self._starts[partition])
            count = int(self._counts[partition])
            self.counter.random_read(blocks_spanned(start, shift, self.block_values))
            self.counter.random_write(
                blocks_spanned(start + count, shift, self.block_values)
            )
            if count > 0:
                if shift < count:
                    # Rotating left by ``shift`` while the region shifts
                    # right by ``shift`` leaves all but the first ``shift``
                    # elements at their absolute positions: only the rotated
                    # prefix moves (to the new tail).
                    self._data[start + count : start + count + shift] = self._data[
                        start : start + shift
                    ]
                    if self._track_rowids:
                        self._rowids[start + count : start + count + shift] = (
                            self._rowids[start : start + shift]
                        )
                else:
                    rotation = shift % count
                    segment = self._data[start : start + count]
                    if rotation:
                        segment = np.concatenate(
                            (segment[rotation:], segment[:rotation])
                        )
                    self._data[start + shift : start + shift + count] = segment
                    if self._track_rowids:
                        ids = self._rowids[start : start + count]
                        if rotation:
                            ids = np.concatenate((ids[rotation:], ids[:rotation]))
                        self._rowids[start + shift : start + shift + count] = ids
            self._invalidate_sorted(int(partition))
        self._starts += through

        # Tail placements, one contiguous write per target partition.
        unique_targets, group_starts, group_counts = np.unique(
            targets, return_index=True, return_counts=True
        )
        for partition, lo, arrivals in zip(
            unique_targets.tolist(),
            group_starts.tolist(),
            group_counts.tolist(),
            strict=True,
        ):
            tail = int(self._starts[partition]) + int(self._counts[partition])
            blocks = blocks_spanned(tail, arrivals, self.block_values)
            self.counter.random_read(blocks)
            self.counter.random_write(blocks)
            self._data[tail : tail + arrivals] = sorted_values[lo : lo + arrivals]
            if self._track_rowids:
                self._rowids[tail : tail + arrivals] = sorted_rowids[
                    lo : lo + arrivals
                ]
            self._invalidate_sorted(partition)
            previous_count = int(self._counts[partition])
            self._counts[partition] = previous_count + arrivals
            low = int(sorted_values[lo])
            high = int(sorted_values[lo + arrivals - 1])
            if previous_count == 0:
                self._mins[partition] = low
                self._maxs[partition] = high
            else:
                if low < self._mins[partition]:
                    self._mins[partition] = low
                if high > self._maxs[partition]:
                    self._maxs[partition] = high
            if partition < k - 1 and high > self._fences[partition]:
                self._fences[partition] = high
                self._index.update_fence(partition, high)
        return out

    @requires_latch("exclusive")
    def bulk_delete(self, values: np.ndarray | list[int]) -> np.ndarray:
        """Delete one occurrence of each value with one coalesced hole sweep.

        Equivalent to calling ``delete(value, limit=1)`` once per value in
        ascending (stable) value order, except that absent values are
        reported as ``0`` in the returned per-value count array instead of
        raising.  Each touched partition is scanned once for all of its
        victims, the sequential swap-with-last cascade is replayed in
        place, and in dense mode all holes ripple to the end of the
        column in one forward rotation sweep (the batched Fig. 4b).  The
        live layout -- every partition's start, count, live values and row
        ids, plus fences and min/max metadata -- is identical to the
        sequential path's; only dead slots (ghost slack and rippled-out
        holes, which no read ever touches) may retain different stale
        bytes, because the coalesced sweep does not rewrite slots it
        immediately abandons.  Charged accesses are at most the
        ascending-order sequential path's and exactly equal when at most
        one hole passes through any partition.  (Relative to some *other*
        submission order the totals can differ slightly: a missed delete's
        scan is charged at the live count the ascending replay sees, which
        is the documented reference.)

        Returns an array aligned with the input: 1 where a value was
        deleted, 0 where it was absent.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise LayoutError("values must be one-dimensional")
        m = int(values.size)
        deleted = np.zeros(m, dtype=np.int64)
        if m == 0:
            return deleted
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        self.counter.index_probe(m)
        k = self.num_partitions
        # Deletes scan the first candidate partition, like locate().
        targets, _ = self._index.locate_batch(sorted_values)
        deleted_sorted = np.zeros(m, dtype=np.int64)

        unique_targets, group_starts, group_counts = np.unique(
            targets, return_index=True, return_counts=True
        )
        groups = {
            int(partition): (int(lo), int(cnt))
            for partition, lo, cnt in zip(
                unique_targets, group_starts, group_counts, strict=True
            )
        }
        first_touched = int(unique_targets[0])
        last_touched = int(unique_targets[-1])
        sweep_end = k if self.dense else last_touched + 1
        holes = 0
        for partition in range(first_touched, sweep_end):
            if holes:
                self._apply_hole_rotation(partition, holes)
            group = groups.get(partition)
            if group is None:
                continue
            lo, cnt = group
            removed = self._bulk_delete_partition(
                partition, sorted_values, deleted_sorted, lo, cnt
            )
            if self.dense:
                holes += removed
        deleted[order] = deleted_sorted
        return deleted

    def _apply_hole_rotation(self, partition: int, holes: int) -> None:
        """Ripple ``holes`` empty slots through ``partition`` in one rotation.

        The coalesced form of ``holes`` consecutive
        :meth:`_ripple_hole_forward` steps: the partition rotates right by
        ``holes`` and its start shifts left, with the read/write charges
        covering each touched block once instead of once per hole.
        """
        start = int(self._starts[partition])
        count = int(self._counts[partition])
        self.counter.random_read(
            blocks_spanned(start + count - holes, holes, self.block_values)
        )
        self.counter.random_write(
            blocks_spanned(start - holes, holes, self.block_values)
        )
        if count > 0:
            if holes < count:
                # Rotating right by ``holes`` while the region shifts left by
                # ``holes`` leaves all but the last ``holes`` elements at
                # their absolute positions: only the rotated suffix moves (to
                # the new front).
                self._data[start - holes : start] = self._data[
                    start + count - holes : start + count
                ]
                if self._track_rowids:
                    self._rowids[start - holes : start] = self._rowids[
                        start + count - holes : start + count
                    ]
            else:
                rotation = holes % count
                segment = self._data[start : start + count]
                if rotation:
                    segment = np.concatenate(
                        (segment[-rotation:], segment[:-rotation])
                    )
                self._data[start - holes : start - holes + count] = segment
                if self._track_rowids:
                    ids = self._rowids[start : start + count]
                    if rotation:
                        ids = np.concatenate((ids[-rotation:], ids[:-rotation]))
                    self._rowids[start - holes : start - holes + count] = ids
        self._starts[partition] = start - holes
        self._invalidate_sorted(partition)

    def _bulk_delete_partition(
        self,
        partition: int,
        sorted_values: np.ndarray,
        deleted_sorted: np.ndarray,
        lo: int,
        cnt: int,
    ) -> int:
        """Delete ``sorted_values[lo : lo + cnt]`` from one partition.

        One scan finds every victim candidate; the sequential swap-with-last
        cascade is then replayed in place on the live segment (lazy
        oldest-copy heaps track values re-exposed by swaps), charging
        each delete the same partition scan and swap write it would pay on
        the per-value path.  The per-value victim is the oldest surviving
        copy (smallest row id -- the rule :meth:`_oldest_first` pins for
        the sequential path; physical scan order when row ids are
        untracked).  Returns the number of removed entries.
        """
        start = int(self._starts[partition])
        count = int(self._counts[partition])
        segment = self._data[start : start + count]
        ids = self._rowids[start : start + count] if self._track_rowids else None

        def sort_key(position: int) -> int:
            return int(ids[position]) if ids is not None else position

        small_group = cnt * 16 < count
        positions_by_value: dict[int, list[tuple[int, int]]] = {}
        if count and not small_group:
            wanted = sorted_values[lo : lo + cnt]
            for position in np.nonzero(np.isin(segment, wanted))[0].tolist():
                positions_by_value.setdefault(int(segment[position]), []).append(
                    (sort_key(position), position)
                )
            for heap in positions_by_value.values():
                heapq.heapify(heap)
        live = count
        removed = 0
        last_victim = 0
        random_reads = 0
        seq_reads = 0
        random_writes = 0
        for i in range(lo, lo + cnt):
            value = int(sorted_values[i])
            blocks = blocks_spanned(0, live, self.block_values)
            if blocks > 0:
                random_reads += 1
                seq_reads += blocks - 1
            if small_group:
                # Few victims in a large partition: a per-value scan of the
                # (in-place mutated) live segment replays the sequential
                # oldest-copy choice without the candidate index.
                local = np.nonzero(segment[:live] == value)[0]
                if local.size:
                    position = int(
                        local[int(np.argmin(ids[local]))]
                        if ids is not None
                        else local[0]
                    )
                else:
                    position = None
            else:
                heap = positions_by_value.get(value)
                position = None
                while heap:
                    key, candidate = heap[0]
                    # Lazy invalidation: a candidate slot is stale once it
                    # fell off the live segment, holds another value, or
                    # (after a same-value swap) holds a different copy.
                    if (
                        candidate >= live
                        or int(segment[candidate]) != value
                        or sort_key(candidate) != key
                    ):
                        heapq.heappop(heap)
                        continue
                    position = heapq.heappop(heap)[1]
                    break
            if position is None:
                continue
            last = live - 1
            moved = int(segment[last])
            segment[position] = moved
            if ids is not None:
                ids[position] = ids[last]
            random_writes += 1
            live -= 1
            if (
                not small_group
                and position < live
                and moved in positions_by_value
            ):
                heapq.heappush(
                    positions_by_value[moved], (sort_key(position), position)
                )
            deleted_sorted[i] = 1
            removed += 1
            last_victim = value
        if random_reads:
            self.counter.random_read(random_reads)
        if seq_reads:
            self.counter.seq_read(seq_reads)
        if random_writes:
            self.counter.random_write(random_writes)
        if removed:
            self._counts[partition] = live
            self._invalidate_sorted(partition)
            if live > 0:
                live_segment = segment[:live]
                self._mins[partition] = int(live_segment.min())
                self._maxs[partition] = int(live_segment.max())
            else:
                # The sequential path's last refresh saw the lone survivor,
                # which is the final victim itself.
                self._mins[partition] = last_victim
                self._maxs[partition] = last_victim
        return removed

    # ------------------------------------------------------------------ #
    # Internal mechanics
    # ------------------------------------------------------------------ #

    def _partition_slack(self, partition: int) -> int:
        capacity = (
            int(self._starts[partition + 1]) - int(self._starts[partition])
            if partition + 1 < self.num_partitions
            else self.physical_size - int(self._starts[partition])
        )
        return capacity - int(self._counts[partition])

    def _find_slack_partition(self, start_partition: int) -> int | None:
        for partition in range(start_partition, self.num_partitions):
            if self._partition_slack(partition) > 0:
                return partition
        return None

    def _grow(self) -> None:
        extra = self.GROWTH_BLOCKS * self.block_values
        self._data = np.concatenate(
            (self._data, np.zeros(extra, dtype=np.int64))
        )
        if self._track_rowids:
            self._rowids = np.concatenate(
                (self._rowids, np.full(extra, -1, dtype=np.int64))
            )
        # Cached sorted views slice the replaced buffers; drop them so they
        # do not pin the pre-growth array generations in memory.
        self._sorted_views.clear()
        self.counter.seq_write(self.GROWTH_BLOCKS)

    def _ripple_slot_backward(self, donor: int, target: int) -> None:
        """Move one empty slot from ``donor``'s tail into ``target``'s tail.

        Walks partitions from the donor down to ``target + 1``; each step
        moves the partition's first live element onto the free slot at its own
        tail and shifts the partition's start one slot to the right, handing
        the freed slot to the preceding partition (Fig. 4a).
        """
        for partition in range(donor, target, -1):
            start = int(self._starts[partition])
            count = int(self._counts[partition])
            if count > 0:
                free_slot = start + count
                self._data[free_slot] = self._data[start]
                if self._track_rowids:
                    self._rowids[free_slot] = self._rowids[start]
            self._starts[partition] = start + 1
            self._invalidate_sorted(partition)
            self.counter.random_read(1)
            self.counter.random_write(1)

    def _ripple_hole_forward(self, partition: int) -> None:
        """Push one hole from ``partition``'s tail to the end of the column."""
        for follower in range(partition + 1, self.num_partitions):
            start = int(self._starts[follower])
            count = int(self._counts[follower])
            hole = start - 1
            if count > 0:
                last = start + count - 1
                self._data[hole] = self._data[last]
                if self._track_rowids:
                    self._rowids[hole] = self._rowids[last]
            self._starts[follower] = start - 1
            self._invalidate_sorted(follower)
            self.counter.random_read(1)
            self.counter.random_write(1)

    def _ripple_hole_between(self, source: int, target: int, *, forward: bool) -> int:
        """Move the hole at ``source``'s tail to ``target``'s tail.

        Returns the partition that ends up holding the free slot (always
        ``target``).  Charges one read/write pair per partition boundary
        crossed, matching the ``trail_parts`` terms of Eqs. 12-15.
        """
        if forward:
            for follower in range(source + 1, target + 1):
                start = int(self._starts[follower])
                count = int(self._counts[follower])
                hole = start - 1
                if count > 0:
                    last = start + count - 1
                    self._data[hole] = self._data[last]
                    if self._track_rowids:
                        self._rowids[hole] = self._rowids[last]
                self._starts[follower] = start - 1
                self._invalidate_sorted(follower)
                self.counter.random_read(1)
                self.counter.random_write(1)
        else:
            for predecessor in range(source, target, -1):
                start = int(self._starts[predecessor])
                count = int(self._counts[predecessor])
                if count > 0:
                    free_slot = start + count
                    self._data[free_slot] = self._data[start]
                    if self._track_rowids:
                        self._rowids[free_slot] = self._rowids[start]
                self._starts[predecessor] = start + 1
                self._invalidate_sorted(predecessor)
                self.counter.random_read(1)
                self.counter.random_write(1)
        return target

    def _remove_at(self, partition: int, position: int) -> None:
        """Swap the entry at ``position`` with the partition's last live entry."""
        start = int(self._starts[partition])
        count = int(self._counts[partition])
        last = start + count - 1
        self._data[position] = self._data[last]
        if self._track_rowids:
            self._rowids[position] = self._rowids[last]
        self._counts[partition] = count - 1
        self._invalidate_sorted(partition)
        self.counter.random_write(1)
        self._refresh_minmax_on_delete(partition)

    def _refresh_minmax_on_insert(self, partition: int, value: int) -> None:
        count = int(self._counts[partition])
        if count == 1:
            self._mins[partition] = value
            self._maxs[partition] = value
        else:
            if value < self._mins[partition]:
                self._mins[partition] = value
            if value > self._maxs[partition]:
                self._maxs[partition] = value
        if partition < self.num_partitions - 1 and value > self._fences[partition]:
            self._fences[partition] = value
            self._index.update_fence(partition, value)

    def _refresh_minmax_on_delete(self, partition: int) -> None:
        start = int(self._starts[partition])
        count = int(self._counts[partition])
        if count == 0:
            return
        segment = self._data[start : start + count]
        self._mins[partition] = int(segment.min())
        self._maxs[partition] = int(segment.max())

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any structural invariant is violated."""
        k = self.num_partitions
        capacities = self._capacities()
        assert np.all(self._counts >= 0), "negative partition count"
        assert np.all(capacities >= self._counts), "partition overflow"
        assert int(capacities.sum()) == self.physical_size, "capacity mismatch"
        previous_max = None
        for i in range(k):
            start = int(self._starts[i])
            count = int(self._counts[i])
            if count == 0:
                continue
            segment = self._data[start : start + count]
            if previous_max is not None:
                assert segment.min() >= previous_max, (
                    f"range-partition invariant violated at partition {i}"
                )
            assert segment.max() <= self._fences[i], (
                f"fence invariant violated at partition {i}"
            )
            previous_max = segment.max()
        if self._track_rowids:
            live_rowids = self.rowids()
            assert np.unique(live_rowids).shape[0] == live_rowids.shape[0], (
                "duplicate row ids"
            )
