"""Compact per-batch access records: the engine -> monitor observation pipe.

Attaching a :class:`~repro.core.monitor.WorkloadMonitor` used to tax exactly
the hot path the batch executor vectorizes: every element of a ``Multi*``
dispatch made one per-key Python ``observe`` call (a binary search against
the chunk fences plus a loop over the chunk span).  The engine now appends
one :class:`AccessRecord` per dispatch -- the operation kind, the key (or
range-bound) arrays and the write-target flag -- to an :class:`AccessLog`,
and the monitor ingests the whole log with a single vectorized attribution
pass per record (:meth:`WorkloadMonitor.observe_batch`).

Records carry *attribution kinds*, which split updates into their two
routed sides (``update_source`` probes the full candidate-chunk span of the
old key; ``update_target`` lands in the insert route of the new key) so one
update no longer inflates a single ``"update"`` count in two chunks' mixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

#: Attribution kinds in stable order; sample ring buffers store the index
#: into this tuple as a compact per-operation kind code.
ATTRIBUTION_KINDS = (
    "point_query",
    "range_count",
    "range_sum",
    "insert",
    "delete",
    "update_source",
    "update_target",
)

KIND_CODES = {kind: code for code, kind in enumerate(ATTRIBUTION_KINDS)}

#: Pseudo-kind for a *paired* update record: ``lows`` carries the source
#: keys and ``highs`` the aligned target keys of a whole update run.  The
#: monitor attributes it as interleaved ``update_source``/``update_target``
#: entries in submission order (source_i before target_i), exactly as
#: serial per-pair dispatch records them -- so bounded samples retain the
#: same window on both paths even when a run overflows the sample limit.
PAIRED_UPDATE_KIND = "update"

#: Kinds routed by the insert rule: they land in the *first* candidate chunk
#: only, so attribution must not spread over the full candidate span.
FIRST_CANDIDATE_KINDS = frozenset({"insert", "update_target"})

#: Kinds whose records carry a ``highs`` bound array (inclusive ranges).
RANGE_KINDS = frozenset({"range_count", "range_sum"})


@dataclass(frozen=True)
class AccessRecord:
    """One dispatched operation run, in attribution-ready form.

    ``lows`` holds the keys (point kinds) or the low bounds (range kinds) of
    every operation in the run, in submission order; ``highs`` is the
    aligned high-bound array for range kinds and ``None`` otherwise.
    ``write_target`` marks records attributed to the first candidate chunk
    only (the table's insert routing rule) -- it is implied by the kinds in
    :data:`FIRST_CANDIDATE_KINDS` and recorded explicitly so a log is
    self-describing.
    """

    kind: str
    lows: np.ndarray
    highs: np.ndarray | None = None
    write_target: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KIND_CODES and self.kind != PAIRED_UPDATE_KIND:
            raise ValueError(f"unknown attribution kind: {self.kind!r}")

    @property
    def operations(self) -> int:
        """Number of operations the record covers."""
        return int(self.lows.shape[0])


class AccessLog:
    """An append-only buffer of :class:`AccessRecord` entries.

    The storage engine keeps one log per ``execute_batch`` call (and a
    throwaway single-record log per serial dispatch), appending one record
    per dispatched run instead of one monitor call per operation; the
    monitor drains the log in one vectorized pass.
    """

    __slots__ = ("records",)

    def __init__(self, records: Iterable[AccessRecord] | None = None) -> None:
        self.records: list[AccessRecord] = list(records) if records else []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[AccessRecord]:
        return iter(self.records)

    @property
    def operations(self) -> int:
        """Total operations covered by the buffered records."""
        return sum(record.operations for record in self.records)

    def record(
        self,
        kind: str,
        lows: np.ndarray | Sequence[int],
        highs: np.ndarray | Sequence[int] | None = None,
        *,
        write_target: bool = False,
    ) -> None:
        """Append one record, coercing the bound arrays to ``int64``."""
        lows = np.asarray(lows, dtype=np.int64)
        if highs is not None:
            highs = np.asarray(highs, dtype=np.int64)
            if highs.shape != lows.shape:
                raise ValueError("highs must be aligned with lows")
        self.records.append(
            AccessRecord(
                kind=kind,
                lows=lows,
                highs=highs,
                write_target=write_target or kind in FIRST_CANDIDATE_KINDS,
            )
        )

    def clear(self) -> None:
        """Drop all buffered records."""
        self.records.clear()


# --------------------------------------------------------------------- #
# Write deltas: the WAL's record source
# --------------------------------------------------------------------- #

#: Delta kinds in stable order; the WAL codec stores the index into this
#: tuple as a one-byte kind code, so the order is part of the on-disk
#: format -- append only, never reorder.  The ``move_*`` kinds are the
#: two-phase cross-shard move protocol markers (see
#: :mod:`repro.sharding.database`): they carry bookkeeping for recovery,
#: not table mutations -- the delete/insert the move performs ride as
#: ordinary records in the same WAL bodies.
DELTA_KINDS = (
    "insert",
    "delete",
    "update",
    "move_intent",
    "move_commit",
    "move_forget",
)

DELTA_KIND_CODES = {kind: code for code, kind in enumerate(DELTA_KINDS)}

#: Kinds that mark move-protocol state rather than table mutations.
MOVE_MARKER_KINDS = frozenset({"move_intent", "move_commit", "move_forget"})


@dataclass(frozen=True)
class DeltaRecord:
    """One applied write run in Z-set form (insert = +1, delete = -1,
    update = -1/+1 on the key column).

    ``keys`` holds the submitted keys of the run in submission order
    (the *old* keys for an update run); ``payloads`` is the aligned
    ``(n, width)`` payload-row array for inserts (zero-width when the table
    has no payload columns) and ``None`` otherwise; ``new_keys`` is the
    aligned target-key array for updates and ``None`` otherwise.  Replaying
    the records of a batch in order through the table's bulk-write paths
    reproduces the batch's logical effect.

    The move-protocol markers reuse the fields: a ``move_intent`` carries
    ``keys = [move_id, old_key, new_key]`` plus the taken row's payload as
    a one-row ``payloads`` array; ``move_commit`` / ``move_forget`` carry
    ``keys = [move_id]``.  Markers mutate nothing on replay (their
    :attr:`operations` count is 0); recovery uses them to resolve moves a
    crash left half-done.
    """

    kind: str
    keys: np.ndarray
    payloads: np.ndarray | None = None
    new_keys: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.kind not in DELTA_KIND_CODES:
            raise ValueError(f"unknown delta kind: {self.kind!r}")

    @property
    def operations(self) -> int:
        """Number of write operations the record covers."""
        if self.kind in MOVE_MARKER_KINDS:
            return 0
        return int(self.keys.shape[0])


class DeltaLog:
    """An append-only buffer of :class:`DeltaRecord` entries.

    The engine keeps one log per durable commit scope (an ``execute_batch``
    call, or one serial write), appending one record per *applied* write
    run -- records are added after the table mutation succeeds, so the log
    always describes exactly what the in-memory state absorbed, even when a
    batch dies part-way through.  The durability manager encodes the whole
    log as one checksummed WAL record.

    ``atomic`` marks the log as one all-or-nothing commit unit (an MVCC
    transaction's write set): the flag rides in the WAL body so recovery
    and followers can tell a transactional record apart from an ordinary
    batch.  Either way one WAL body replays whole or not at all (the frame
    CRC covers it), which is what makes transactional commits atomic under
    crash.
    """

    __slots__ = ("records", "atomic")

    def __init__(self, *, atomic: bool = False) -> None:
        self.records: list[DeltaRecord] = []
        self.atomic = bool(atomic)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DeltaRecord]:
        return iter(self.records)

    @property
    def operations(self) -> int:
        """Total write operations covered by the buffered records."""
        return sum(record.operations for record in self.records)

    def record_insert(
        self,
        keys: np.ndarray | Sequence[int],
        payloads: np.ndarray | Sequence[Sequence[int]],
    ) -> None:
        """Append an applied insert run with its payload rows."""
        keys = np.asarray(keys, dtype=np.int64)
        rows = np.asarray(payloads, dtype=np.int64).reshape(keys.shape[0], -1)
        self.records.append(DeltaRecord(kind="insert", keys=keys, payloads=rows))

    def record_delete(self, keys: np.ndarray | Sequence[int]) -> None:
        """Append an applied delete run (submitted keys, hits and misses)."""
        self.records.append(
            DeltaRecord(kind="delete", keys=np.asarray(keys, dtype=np.int64))
        )

    def record_update(
        self, pairs: np.ndarray | Sequence[tuple[int, int]]
    ) -> None:
        """Append an applied ``old_key -> new_key`` update run."""
        pairs_arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        self.records.append(
            DeltaRecord(
                kind="update",
                keys=pairs_arr[:, 0].copy(),
                new_keys=pairs_arr[:, 1].copy(),
            )
        )

    def record_move_intent(
        self,
        move_id: int,
        old_key: int,
        new_key: int,
        payload: np.ndarray | Sequence[int] | None,
    ) -> None:
        """Append a cross-shard move intent (source shard, before the ack).

        Carries everything recovery needs to re-drive the insert half of
        the move: the taken row's payload and the target key.
        """
        row = np.asarray(
            payload if payload is not None else (), dtype=np.int64
        ).reshape(1, -1)
        self.records.append(
            DeltaRecord(
                kind="move_intent",
                keys=np.asarray([move_id, old_key, new_key], dtype=np.int64),
                payloads=row,
            )
        )

    def record_move_commit(self, move_id: int) -> None:
        """Append the target shard's applied-the-insert marker."""
        self.records.append(
            DeltaRecord(
                kind="move_commit", keys=np.asarray([move_id], dtype=np.int64)
            )
        )

    def record_move_forget(self, move_id: int) -> None:
        """Append the source shard's move-resolved marker."""
        self.records.append(
            DeltaRecord(
                kind="move_forget", keys=np.asarray([move_id], dtype=np.int64)
            )
        )
