"""Compact per-batch access records: the engine -> monitor observation pipe.

Attaching a :class:`~repro.core.monitor.WorkloadMonitor` used to tax exactly
the hot path the batch executor vectorizes: every element of a ``Multi*``
dispatch made one per-key Python ``observe`` call (a binary search against
the chunk fences plus a loop over the chunk span).  The engine now appends
one :class:`AccessRecord` per dispatch -- the operation kind, the key (or
range-bound) arrays and the write-target flag -- to an :class:`AccessLog`,
and the monitor ingests the whole log with a single vectorized attribution
pass per record (:meth:`WorkloadMonitor.observe_batch`).

Records carry *attribution kinds*, which split updates into their two
routed sides (``update_source`` probes the full candidate-chunk span of the
old key; ``update_target`` lands in the insert route of the new key) so one
update no longer inflates a single ``"update"`` count in two chunks' mixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

#: Attribution kinds in stable order; sample ring buffers store the index
#: into this tuple as a compact per-operation kind code.
ATTRIBUTION_KINDS = (
    "point_query",
    "range_count",
    "range_sum",
    "insert",
    "delete",
    "update_source",
    "update_target",
)

KIND_CODES = {kind: code for code, kind in enumerate(ATTRIBUTION_KINDS)}

#: Pseudo-kind for a *paired* update record: ``lows`` carries the source
#: keys and ``highs`` the aligned target keys of a whole update run.  The
#: monitor attributes it as interleaved ``update_source``/``update_target``
#: entries in submission order (source_i before target_i), exactly as
#: serial per-pair dispatch records them -- so bounded samples retain the
#: same window on both paths even when a run overflows the sample limit.
PAIRED_UPDATE_KIND = "update"

#: Kinds routed by the insert rule: they land in the *first* candidate chunk
#: only, so attribution must not spread over the full candidate span.
FIRST_CANDIDATE_KINDS = frozenset({"insert", "update_target"})

#: Kinds whose records carry a ``highs`` bound array (inclusive ranges).
RANGE_KINDS = frozenset({"range_count", "range_sum"})


@dataclass(frozen=True)
class AccessRecord:
    """One dispatched operation run, in attribution-ready form.

    ``lows`` holds the keys (point kinds) or the low bounds (range kinds) of
    every operation in the run, in submission order; ``highs`` is the
    aligned high-bound array for range kinds and ``None`` otherwise.
    ``write_target`` marks records attributed to the first candidate chunk
    only (the table's insert routing rule) -- it is implied by the kinds in
    :data:`FIRST_CANDIDATE_KINDS` and recorded explicitly so a log is
    self-describing.
    """

    kind: str
    lows: np.ndarray
    highs: np.ndarray | None = None
    write_target: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KIND_CODES and self.kind != PAIRED_UPDATE_KIND:
            raise ValueError(f"unknown attribution kind: {self.kind!r}")

    @property
    def operations(self) -> int:
        """Number of operations the record covers."""
        return int(self.lows.shape[0])


class AccessLog:
    """An append-only buffer of :class:`AccessRecord` entries.

    The storage engine keeps one log per ``execute_batch`` call (and a
    throwaway single-record log per serial dispatch), appending one record
    per dispatched run instead of one monitor call per operation; the
    monitor drains the log in one vectorized pass.
    """

    __slots__ = ("records",)

    def __init__(self, records: Iterable[AccessRecord] | None = None) -> None:
        self.records: list[AccessRecord] = list(records) if records else []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[AccessRecord]:
        return iter(self.records)

    @property
    def operations(self) -> int:
        """Total operations covered by the buffered records."""
        return sum(record.operations for record in self.records)

    def record(
        self,
        kind: str,
        lows: np.ndarray | Sequence[int],
        highs: np.ndarray | Sequence[int] | None = None,
        *,
        write_target: bool = False,
    ) -> None:
        """Append one record, coercing the bound arrays to ``int64``."""
        lows = np.asarray(lows, dtype=np.int64)
        if highs is not None:
            highs = np.asarray(highs, dtype=np.int64)
            if highs.shape != lows.shape:
                raise ValueError("highs must be aligned with lows")
        self.records.append(
            AccessRecord(
                kind=kind,
                lows=lows,
                highs=highs,
                write_target=write_target or kind in FIRST_CANDIDATE_KINDS,
            )
        )

    def clear(self) -> None:
        """Drop all buffered records."""
        self.records.clear()
