"""Casper storage-engine substrate: partitioned columns, layouts, tables.

This subpackage implements the physical storage layer the paper's optimizer
targets: range-partitioned column chunks with ghost values and ripple
maintenance, the delta-store comparator, the six evaluated layout modes,
multi-column tables, snapshot-isolation transactions, compression codecs and
the block-access cost accounting used as the simulated-latency metric.
"""

from .access_log import (
    ATTRIBUTION_KINDS,
    AccessLog,
    AccessRecord,
)
from .column import (
    PartitionedColumn,
    RangeResult,
    equal_width_boundaries,
    snap_boundaries_to_duplicates,
)
from .cost_accounting import (
    CACHE_LINE_BYTES,
    DEFAULT_BLOCK_BYTES,
    DEFAULT_BLOCK_VALUES,
    DEFAULT_COST_CONSTANTS,
    DEFAULT_VALUE_BYTES,
    RANDOM_ACCESS_NS,
    SEQUENTIAL_LINE_NS,
    AccessCounter,
    CostConstants,
    OperationCost,
    SimulatedCost,
    blocks_spanned,
    constants_for_block_values,
)
from .compression import (
    CompressionStats,
    DictionaryCodec,
    FrameOfReferenceCodec,
    RunLengthCodec,
)
from .delta_store import DeltaStoreColumn
from .engine import BatchResult, EngineStatistics, OperationResult, StorageEngine
from .errors import (
    CapacityError,
    LayoutError,
    StorageError,
    TransactionConflictError,
    TransactionError,
    TransactionStateError,
    ValueNotFoundError,
)
from .ghost_values import (
    ghost_budget_from_fraction,
    spread_evenly,
    spread_proportionally,
)
from .layouts import (
    DESIGN_SPACE,
    BufferingMode,
    ColumnLike,
    DataOrganization,
    LayoutDesignPoint,
    LayoutKind,
    LayoutSpec,
    UpdatePolicy,
    build_column,
)
from .mvcc import Transaction, TransactionManager, TransactionStatus
from .partition_index import PartitionIndex, PartitionMetadata
from .table import Row, Table, layout_chunk_builder, require_key

__all__ = [
    "ATTRIBUTION_KINDS",
    "AccessCounter",
    "AccessLog",
    "AccessRecord",
    "BatchResult",
    "CACHE_LINE_BYTES",
    "RANDOM_ACCESS_NS",
    "SEQUENTIAL_LINE_NS",
    "constants_for_block_values",
    "BufferingMode",
    "CapacityError",
    "ColumnLike",
    "CompressionStats",
    "CostConstants",
    "DataOrganization",
    "DEFAULT_BLOCK_BYTES",
    "DEFAULT_BLOCK_VALUES",
    "DEFAULT_COST_CONSTANTS",
    "DEFAULT_VALUE_BYTES",
    "DESIGN_SPACE",
    "DeltaStoreColumn",
    "DictionaryCodec",
    "EngineStatistics",
    "FrameOfReferenceCodec",
    "LayoutDesignPoint",
    "LayoutError",
    "LayoutKind",
    "LayoutSpec",
    "OperationCost",
    "SimulatedCost",
    "OperationResult",
    "PartitionIndex",
    "PartitionMetadata",
    "PartitionedColumn",
    "RangeResult",
    "Row",
    "RunLengthCodec",
    "StorageEngine",
    "StorageError",
    "Table",
    "Transaction",
    "TransactionConflictError",
    "TransactionError",
    "TransactionManager",
    "TransactionStateError",
    "TransactionStatus",
    "UpdatePolicy",
    "ValueNotFoundError",
    "blocks_spanned",
    "build_column",
    "equal_width_boundaries",
    "ghost_budget_from_fraction",
    "layout_chunk_builder",
    "require_key",
    "snap_boundaries_to_duplicates",
    "spread_evenly",
    "spread_proportionally",
]
