"""Casper storage engine facade (Section 6).

The engine wraps a :class:`~repro.storage.table.Table` and exposes the
standard storage-engine API of Section 6.4 -- full scan, point lookup, range
search (count / sum), insert, delete, update -- together with:

* per-operation cost measurement (block-access accounting plus wall-clock),
* optional snapshot-isolation transactions backed by
  :class:`~repro.storage.mvcc.TransactionManager`,
* dispatch of :mod:`repro.workload.operations` objects, which is what the
  benchmark harness drives,
* an optional durability hook: with a
  :class:`~repro.durability.manager.DurabilityManager` attached, every
  write dispatch runs inside a *commit scope* -- the manager's
  ``wal_commit`` lock held across [table apply + WAL append] -- so the
  write-ahead log records exactly the deltas the in-memory state absorbed,
  in the order it absorbed them, before results are returned.  Read-only
  dispatches never touch the commit lock.  MVCC transaction commits run
  the same scope: the whole write set lands as **one atomic WAL record**
  (the body's atomic flag set), so recovery and followers replay a
  committed transaction whole or not at all; aborted transactions log
  nothing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Sequence

if TYPE_CHECKING:
    from ..core.monitor import WorkloadMonitor
    from ..durability.manager import DurabilityManager

import numpy as np

from repro import discipline
from repro.discipline import guarded_class

from .access_log import PAIRED_UPDATE_KIND, AccessLog, DeltaLog
from .cost_accounting import (
    DEFAULT_COST_CONSTANTS,
    AccessCounter,
    CostConstants,
    SimulatedCost,
)
from .errors import ValueNotFoundError
from .mvcc import Transaction, TransactionManager
from .table import Table


@dataclass
class OperationResult(SimulatedCost):
    """Outcome of a single engine operation."""

    kind: str
    accesses: AccessCounter
    wall_ns: float
    result: Any = None


@dataclass
class BatchResult(SimulatedCost):
    """Outcome of a batched sequence of operations.

    ``results`` holds the per-operation result payloads in submission order
    (``None`` for operations that raised ``ValueNotFoundError``); ``accesses``
    is the aggregate simulated block-access tally of the whole batch.
    ``lsn`` is the WAL record the batch's writes committed under (``None``
    for read-only batches and engines without durability attached).
    """

    results: list[Any]
    accesses: AccessCounter
    wall_ns: float
    operations: int
    errors: int = 0
    lsn: int | None = None


@guarded_class
@dataclass
class EngineStatistics:
    """Running per-operation-kind statistics maintained by the engine.

    Safe to update from concurrent sessions: each accumulation runs under a
    small internal mutex (order name ``engine_stats``, GUARDED_BY mode
    ``write``), so per-kind tallies never lose a racing update; the
    ``mean_*`` readers stay unlocked, tolerating a read that lands between
    a count bump and its latency accumulation.
    """

    operations: dict[str, int] = field(default_factory=dict)
    simulated_ns: dict[str, float] = field(default_factory=dict)
    wall_ns: dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=lambda: discipline.make_lock("engine_stats"),
        init=False,
        repr=False,
        compare=False,
    )

    def record(
        self, kind: str, simulated: float, wall: float
    ) -> None:
        """Accumulate one operation's latencies (thread-safe)."""
        with self._lock:
            self.operations[kind] = self.operations.get(kind, 0) + 1
            self.simulated_ns[kind] = (
                self.simulated_ns.get(kind, 0.0) + simulated
            )
            self.wall_ns[kind] = self.wall_ns.get(kind, 0.0) + wall

    def mean_simulated_ns(self, kind: str) -> float:
        """Mean simulated latency for ``kind`` (0 when never executed)."""
        count = self.operations.get(kind, 0)
        return self.simulated_ns.get(kind, 0.0) / count if count else 0.0

    def mean_wall_ns(self, kind: str) -> float:
        """Mean wall-clock latency for ``kind`` (0 when never executed)."""
        count = self.operations.get(kind, 0)
        return self.wall_ns.get(kind, 0.0) / count if count else 0.0


def batch_group_key(operation) -> tuple | None:
    """Run-grouping key under which :meth:`StorageEngine.execute_batch`
    batches an operation.

    Consecutive operations with the same non-``None`` key form one run and
    resolve through the matching ``multi_*`` fast path; ``None`` marks
    operations that always dispatch individually.  This is the single
    definition shared by the batch executor and the execution policies'
    run-length heuristics (:mod:`repro.api.policies`).  Use
    :func:`batch_group_keys` when classifying a whole operation list.
    """
    return batch_group_keys([operation])[0]


def batch_group_keys(operations) -> list[tuple | None]:
    """:func:`batch_group_key` over an operation list, one pass."""
    # Local import: a module-scope one would cycle through
    # ``repro.workload`` -> ``hap`` -> ``storage.table`` while this module
    # initializes (after the first import it is a cached sys.modules hit).
    from ..workload import operations as ops

    point_query, range_query = ops.PointQuery, ops.RangeQuery
    insert, delete, update = ops.Insert, ops.Delete, ops.Update
    count = ops.Aggregate.COUNT
    keys: list[tuple | None] = []
    for operation in operations:
        if isinstance(operation, point_query):
            keys.append(("point_query", operation.columns))
        elif isinstance(operation, range_query) and operation.aggregate is count:
            keys.append(("range_count",))
        elif isinstance(operation, insert):
            keys.append(("insert",))
        elif isinstance(operation, delete):
            keys.append(("delete",))
        elif isinstance(operation, update):
            keys.append(("update",))
        else:
            keys.append(None)
    return keys


class StorageEngine:
    """Drop-in scan/update storage engine over a partitioned table."""

    def __init__(
        self,
        table: Table,
        *,
        constants: CostConstants = DEFAULT_COST_CONSTANTS,
        enable_transactions: bool = False,
        monitor: "WorkloadMonitor | None" = None,
    ) -> None:
        self.table = table
        self.constants = constants
        self.statistics = EngineStatistics()
        self.transactions = TransactionManager() if enable_transactions else None
        #: Optional :class:`repro.core.monitor.WorkloadMonitor` observing the
        #: per-chunk operation mix for online reorganization (Fig. 10 A->C).
        self.monitor = monitor
        # Batch-scoped access log, *per thread*: while ``execute_batch``
        # runs, dispatch methods append their records to the calling
        # thread's log and the whole log is flushed to the monitor once per
        # batch; outside a batch each dispatch flushes its single record
        # immediately.  Thread-local storage keeps concurrent sessions'
        # batches from interleaving records in one shared log -- each
        # session accumulates its own log and the monitor merges them at
        # flush time (``observe_batch`` serializes ingestion internally).
        self._batch_local = threading.local()
        #: Optional :class:`repro.durability.manager.DurabilityManager`;
        #: attach through :meth:`attach_durability`, not by assignment.
        self.durability: "DurabilityManager | None" = None

    def attach_durability(self, manager: "DurabilityManager") -> None:
        """Route every subsequent write dispatch through ``manager``.

        Attach before the engine is shared between threads: the reference
        itself is read unlocked on the dispatch path.
        """
        self.durability = manager

    @property
    def _batch_log(self) -> AccessLog | None:
        return getattr(self._batch_local, "log", None)

    @_batch_log.setter
    def _batch_log(self, log: AccessLog | None) -> None:
        self._batch_local.log = log

    @property
    def _batch_deltas(self) -> DeltaLog | None:
        return getattr(self._batch_local, "deltas", None)

    @_batch_deltas.setter
    def _batch_deltas(self, deltas: DeltaLog | None) -> None:
        self._batch_local.deltas = deltas

    @contextmanager
    def _commit_scope(self) -> Iterator[DeltaLog | None]:
        """Durable commit scope around one write dispatch.

        Yields the :class:`DeltaLog` the dispatch must record its applied
        writes into, or ``None`` when no durability manager is attached
        (writes stay memory-only, exactly the pre-durability behavior).
        Inside ``execute_batch`` the batch-wide scope is already open --
        the thread-local log is handed out and the batch holds the commit
        lock.  A serial write outside a batch opens its own scope: commit
        lock across [apply + append], then the fsync policy *outside* the
        lock, so group commit can coalesce concurrent committers' fsyncs.
        """
        durability = self.durability
        if durability is None:
            yield None
            return
        active = self._batch_deltas
        if active is not None:
            yield active
            return
        durability.require_writable()
        deltas = DeltaLog()
        with durability.commit_lock:
            yield deltas
            if deltas.records:
                durability.append(deltas)
        if deltas.records:
            durability.sync_for_policy()

    def _record(
        self,
        kind: str,
        lows,
        highs=None,
        *,
        write_target: bool = False,
    ) -> None:
        """Append one access record for the monitor (no-op when detached)."""
        if self.monitor is None:
            return
        log = self._batch_log
        if log is not None:
            log.record(kind, lows, highs, write_target=write_target)
            return
        if isinstance(lows, tuple) and len(lows) == 1:
            # Serial dispatch outside a batch: attribute the single
            # operation through the monitor's scalar entry point instead
            # of paying the record/array ceremony per op.
            if kind == PAIRED_UPDATE_KIND:
                self.monitor.observe(self.table, "update_source", lows[0])
                self.monitor.observe(
                    self.table, "update_target", highs[0], write_target=True
                )
            else:
                self.monitor.observe(
                    self.table,
                    kind,
                    lows[0],
                    highs[0] if highs is not None else None,
                    write_target=write_target,
                )
            return
        log = AccessLog()
        log.record(kind, lows, highs, write_target=write_target)
        self.monitor.observe_batch(self.table, log)

    @property
    def counter(self) -> AccessCounter:
        """The shared access counter of the underlying table."""
        return self.table.counter

    # ------------------------------------------------------------------ #
    # Measured operations
    # ------------------------------------------------------------------ #

    def _measure(self, kind: str, func, *args, **kwargs) -> OperationResult:
        before = self.counter.snapshot()
        start = time.perf_counter_ns()
        result = func(*args, **kwargs)
        wall = float(time.perf_counter_ns() - start)
        accesses = self.counter.diff(before)
        outcome = OperationResult(kind=kind, accesses=accesses, wall_ns=wall, result=result)
        self.statistics.record(kind, outcome.simulated_ns(self.constants), wall)
        return outcome

    def point_query(
        self, key: int, columns: Sequence[str] | None = None
    ) -> OperationResult:
        """Q1: fetch the row(s) with the given key."""
        self._record("point_query", (key,))
        return self._measure("point_query", self.table.point_query, key, columns)

    def multi_point_query(
        self, keys: Sequence[int], columns: Sequence[str] | None = None
    ) -> OperationResult:
        """Batched Q1 on the vectorized fast path."""
        self._record("point_query", keys)
        return self._measure(
            "multi_point_query", self.table.multi_point_query, keys, columns
        )

    def range_count(self, low: int, high: int) -> OperationResult:
        """Q2: count rows with key in ``[low, high]``."""
        self._record("range_count", (low,), (high,))
        return self._measure("range_count", self.table.range_count, low, high)

    def multi_range_count(
        self, bounds: Sequence[tuple[int, int]]
    ) -> OperationResult:
        """Batched Q2 on the vectorized fast path."""
        if self.monitor is not None:
            bounds_arr = np.asarray(bounds, dtype=np.int64).reshape(-1, 2)
            self._record("range_count", bounds_arr[:, 0], bounds_arr[:, 1])
        return self._measure(
            "multi_range_count", self.table.multi_range_count, bounds
        )

    def range_sum(
        self, low: int, high: int, columns: Sequence[str] | None = None
    ) -> OperationResult:
        """Q3: sum payload attributes over rows with key in ``[low, high]``."""
        self._record("range_sum", (low,), (high,))
        return self._measure("range_sum", self.table.range_sum, low, high, columns)

    def _delta_payload_rows(
        self, payloads: Sequence[Sequence[int]] | None, count: int
    ) -> np.ndarray:
        """Normalize insert payloads to the ``(count, width)`` row array the
        table stores (``None`` rows become the zero rows the table pads)."""
        width = len(self.table.payload_names)
        if payloads is None:
            return np.zeros((count, width), dtype=np.int64)
        return np.asarray(payloads, dtype=np.int64).reshape(count, width)

    def insert(self, key: int, payload: Sequence[int] | None = None) -> OperationResult:
        """Q4: insert a new row."""
        with self._commit_scope() as deltas:
            self._record("insert", (key,))
            outcome = self._measure("insert", self.table.insert, key, payload)
            if deltas is not None:
                rows = self._delta_payload_rows(
                    [payload] if payload is not None else None, 1
                )
                deltas.record_insert([key], rows)
        return outcome

    def delete(self, key: int) -> OperationResult:
        """Q5: delete a row by key."""
        with self._commit_scope() as deltas:
            self._record("delete", (key,))
            outcome = self._measure("delete", self.table.delete, key)
            # Recorded only after the measured apply: a miss raises
            # ValueNotFoundError above, mutates nothing and logs nothing.
            if deltas is not None:
                deltas.record_delete([key])
        return outcome

    def multi_insert(
        self,
        keys: Sequence[int],
        payloads: Sequence[Sequence[int]] | None = None,
    ) -> OperationResult:
        """Batched Q4 on the bulk-write fast path; result is the row ids."""
        with self._commit_scope() as deltas:
            self._record("insert", keys)
            if deltas is not None:
                # Convert once and share: the table and the delta log would
                # otherwise each pay the tuple->array conversion.
                keys = np.asarray(keys, dtype=np.int64)
                payloads = self._delta_payload_rows(payloads, len(keys))
            outcome = self._measure(
                "multi_insert", self.table.bulk_insert, keys, payloads
            )
            if deltas is not None:
                deltas.record_insert(keys, payloads)
        return outcome

    def multi_delete(self, keys: Sequence[int]) -> OperationResult:
        """Batched Q5 on the bulk-write fast path.

        The result is the per-key deleted-count array (0 marks a missing
        key; no :class:`ValueNotFoundError` is raised on the bulk path).
        """
        with self._commit_scope() as deltas:
            self._record("delete", keys)
            if deltas is not None:
                keys = np.asarray(keys, dtype=np.int64)
            outcome = self._measure("multi_delete", self.table.bulk_delete, keys)
            # The submitted keys are logged, hits and misses alike: replay
            # re-submits them through the same bulk path, and a miss is a
            # no-op on both sides.
            if deltas is not None:
                deltas.record_delete(keys)
        return outcome

    def update_key(self, old_key: int, new_key: int) -> OperationResult:
        """Q6: change a row's key value."""
        with self._commit_scope() as deltas:
            self._record(PAIRED_UPDATE_KIND, (old_key,), (new_key,))
            outcome = self._measure(
                "update", self.table.update_key, old_key, new_key
            )
            if deltas is not None:
                deltas.record_update([(old_key, new_key)])
        return outcome

    def multi_update(
        self, pairs: Sequence[tuple[int, int]]
    ) -> OperationResult:
        """Batched Q6 on the batch-routed path.

        The result is the per-pair updated-count array (0 marks a missing
        source key; no :class:`ValueNotFoundError` is raised on the bulk
        path).  Pairs are applied in submission order, so results and
        simulated accesses match per-pair :meth:`update_key` dispatch
        exactly.
        """
        with self._commit_scope() as deltas:
            if self.monitor is not None or deltas is not None:
                pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
            if self.monitor is not None:
                self._record(PAIRED_UPDATE_KIND, pairs[:, 0], pairs[:, 1])
            outcome = self._measure("multi_update", self.table.bulk_update, pairs)
            if deltas is not None:
                deltas.record_update(pairs)
        return outcome

    def full_scan(self) -> OperationResult:
        """Scan the entire key column."""
        return self._measure("scan", self.table.scan)

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #

    def begin_transaction(self) -> Transaction:
        """Start a snapshot-isolated transaction."""
        if self.transactions is None:
            raise RuntimeError("transactions are not enabled for this engine")
        return self.transactions.begin()

    def transactional_insert(
        self, txn: Transaction, key: int, payload: Sequence[int] | None = None
    ) -> None:
        """Buffer an insert inside ``txn``; applied at commit."""
        txn.record_write(
            key,
            lambda: self.table.insert(key, payload),
            f"insert {key}",
            record=lambda deltas: deltas.record_insert(
                [key],
                self._delta_payload_rows(
                    [payload] if payload is not None else None, 1
                ),
            ),
        )

    def transactional_delete(self, txn: Transaction, key: int) -> None:
        """Buffer a delete inside ``txn``; applied at commit."""
        txn.record_write(
            key,
            lambda: self.table.delete(key),
            f"delete {key}",
            record=lambda deltas: deltas.record_delete([key]),
        )

    def transactional_update(
        self, txn: Transaction, old_key: int, new_key: int
    ) -> None:
        """Buffer a key update inside ``txn``; applied at commit."""
        txn.record_write(
            old_key,
            lambda: self.table.update_key(old_key, new_key),
            f"update {old_key}->{new_key}",
            record=lambda deltas: deltas.record_update([(old_key, new_key)]),
        )
        txn.record_write(new_key, lambda: None, "update target reservation")

    def commit(self, txn: Transaction) -> int:
        """Commit ``txn`` (first committer wins).

        With durability attached, the commit runs inside a commit scope of
        its own: the manager's commit lock is held across [conflict check +
        intent applies + WAL append] and the write set lands as **one
        atomic WAL record** (``DeltaLog(atomic=True)``) before the commit
        timestamp is returned -- so recovery and followers replay the
        transaction whole or not at all.  A conflict abort raises before
        any intent applies and logs nothing.  The append sits in
        ``finally`` for the same reason ``execute_batch``'s does: if an
        intent apply dies part-way, the applied prefix must still reach
        the log or every later record would replay onto diverged state.
        """
        if self.transactions is None:
            raise RuntimeError("transactions are not enabled for this engine")
        durability = self.durability
        if durability is None or not txn.write_intents:
            return self.transactions.commit(txn)
        durability.require_writable()
        deltas = DeltaLog(atomic=True)
        lsn: int | None = None
        with durability.commit_lock:
            try:
                commit_ts = self.transactions.commit(txn, deltas=deltas)
            finally:
                if deltas.records:
                    lsn = durability.append(deltas)
        if lsn is not None:
            durability.sync_for_policy()
        return commit_ts

    def abort(self, txn: Transaction) -> None:
        """Roll back ``txn``."""
        if self.transactions is None:
            raise RuntimeError("transactions are not enabled for this engine")
        self.transactions.abort(txn)

    # ------------------------------------------------------------------ #
    # Cross-shard move protocol (two-phase: intent / commit / forget)
    # ------------------------------------------------------------------ #

    def take_for_move(
        self, key: int, new_key: int, move_id: int
    ) -> OperationResult:
        """The take half of a cross-shard move: delete one row by key and
        log ``[move_intent, delete]`` as one WAL record.

        The intent carries the victim's payload and the target key, so a
        dispatcher that finds it unresolved after a crash can re-drive the
        insert half without the source row.  The operation result is the
        ``(rowid, payload_row)`` pair of the taken row.  Raises
        :class:`ValueNotFoundError` (logging nothing) when the key is
        absent.
        """
        with self._commit_scope() as deltas:
            self._record("delete", (key,))
            outcome = self._measure("delete", self.table.take_row, key)
            if deltas is not None:
                _, payload_row = outcome.result
                deltas.record_move_intent(move_id, key, new_key, payload_row)
                deltas.record_delete([key])
        return outcome

    def apply_move_put(
        self, key: int, payload: Sequence[int] | None, move_id: int
    ) -> OperationResult:
        """The insert half of a cross-shard move: insert the carried row
        and log ``[move_commit, insert]`` as one WAL record.

        The commit marker is what the dispatcher's move-resolution scan
        consults to decide whether an unresolved source intent needs the
        insert re-driven or only a forget.
        """
        with self._commit_scope() as deltas:
            self._record("insert", (key,))
            outcome = self._measure("insert", self.table.insert, key, payload)
            if deltas is not None:
                rows = self._delta_payload_rows(
                    [payload] if payload is not None else None, 1
                )
                deltas.record_move_commit(move_id)
                deltas.record_insert([key], rows)
        return outcome

    def log_move_forget(self, move_id: int) -> None:
        """Resolve a move on the source shard: log ``[move_forget]``.

        Pure WAL bookkeeping -- no table mutation, no-op without
        durability attached.
        """
        with self._commit_scope() as deltas:
            if deltas is not None:
                deltas.record_move_forget(move_id)

    # ------------------------------------------------------------------ #
    # Workload dispatch
    # ------------------------------------------------------------------ #

    def execute(self, operation) -> OperationResult:
        """Execute a :mod:`repro.workload.operations` object."""
        from ..workload import operations as ops

        if isinstance(operation, ops.PointQuery):
            return self.point_query(operation.key, operation.columns)
        if isinstance(operation, ops.RangeQuery):
            if operation.aggregate is ops.Aggregate.COUNT:
                return self.range_count(operation.low, operation.high)
            return self.range_sum(operation.low, operation.high, operation.columns)
        if isinstance(operation, ops.Insert):
            return self.insert(operation.key, operation.payload)
        if isinstance(operation, ops.Delete):
            return self.delete(operation.key)
        if isinstance(operation, ops.Update):
            return self.update_key(operation.old_key, operation.new_key)
        if isinstance(operation, ops.MultiPointQuery):
            return self.multi_point_query(list(operation.keys), operation.columns)
        if isinstance(operation, ops.MultiRangeCount):
            return self.multi_range_count(list(operation.bounds))
        if isinstance(operation, ops.MultiInsert):
            payloads = (
                [list(row) for row in operation.payloads]
                if operation.payloads is not None
                else None
            )
            return self.multi_insert(list(operation.keys), payloads)
        if isinstance(operation, ops.MultiDelete):
            return self.multi_delete(list(operation.keys))
        if isinstance(operation, ops.MultiUpdate):
            return self.multi_update([tuple(pair) for pair in operation.pairs])
        raise TypeError(f"unsupported operation type: {type(operation)!r}")

    def execute_batch(self, operations) -> BatchResult:
        """Execute a sequence of operations on the vectorized batch fast path.

        Maximal consecutive runs of point queries (with identical column
        lists), of counting range queries, of inserts, of deletes and of key
        updates are grouped and resolved through :meth:`multi_point_query` /
        :meth:`multi_range_count` / :meth:`multi_insert` /
        :meth:`multi_delete` / :meth:`multi_update`; every other operation is
        dispatched individually, preserving the submission order of writes
        relative to the reads around them.  Grouped updates apply their pairs
        in submission order and match per-operation dispatch exactly.  Grouped reads charge simulated accesses
        identical to per-operation dispatch; grouped writes are applied in
        ascending key order within their run and charge at most that
        ordering's per-operation accesses (coalesced ripple sweeps charge
        each touched block once per batch), returning the same row ids and
        deleted counts.  One caveat follows from the in-run reordering: the
        ascending replay is the charge reference, not submission order.
        Victim *identity* is reorder-proof -- every delete removes the
        oldest surviving copy of its key (the rule
        :meth:`PartitionedColumn._oldest_first` pins), a choice
        neighbouring deletes of other keys cannot perturb, and same-key
        deletes keep their relative order under the stable sort -- but a
        run that mixes hits and *misses* in one partition can charge
        differently (a reordered miss is scanned at the partition size
        the replay sees, which can cross a block boundary submission
        order would not).  Delta-store chunks add one
        more caveat: a batch that crosses the merge threshold mid-run pays
        one larger deferred merge instead of sequential's earlier smaller
        one, which can exceed the sequential charge (see
        :meth:`DeltaStoreColumn.bulk_insert`).
        Results are returned in submission order (``None`` for operations
        that raised ``ValueNotFoundError`` and for deletes of missing keys).
        Statistics are recorded per dispatched operation -- grouped runs
        under the ``multi_*`` kinds, the rest under their own kind.

        With a monitor attached, each dispatched run appends one compact
        record to a batch-scoped :class:`AccessLog` and the whole log is
        ingested once per batch (:meth:`WorkloadMonitor.observe_batch`)
        instead of one monitor call per operation.  Attribution routes by
        the chunk fences, which no batched write moves, so the deferred
        flush attributes exactly what per-operation observation would.

        With durability attached, a batch containing any write runs inside
        one commit scope: the manager's commit lock is held across the
        whole dispatch and the batch's accumulated delta log is appended
        as **one WAL record** before results are returned (group-commit
        fsync per the configured policy, outside the lock).  The append
        happens even when a dispatch raises mid-batch -- deltas are
        recorded per *applied* run, so the log matches whatever prefix the
        in-memory state absorbed.  Read-only batches skip the lock
        entirely; durable write batches from concurrent sessions serialize
        against each other (and against checkpoints), which is the price
        of a single gap-free log (per-shard logs are the scale-out path,
        see ROADMAP).
        """
        from ..workload.operations import is_write

        oplist = list(operations)
        durability = self.durability
        if durability is None or not any(is_write(op) for op in oplist):
            return self._execute_batch_inner(oplist)
        durability.require_writable()
        deltas = DeltaLog()
        lsn: int | None = None
        with durability.commit_lock:
            self._batch_deltas = deltas
            try:
                result = self._execute_batch_inner(oplist)
            finally:
                self._batch_deltas = None
                # Append in ``finally``: when the dispatch died mid-batch
                # the already-applied prefix must still reach the log, or
                # every later batch would replay onto diverged state.  (An
                # append failure here masks a mid-batch exception -- both
                # are fatal to the scope, and the WAL error is the one
                # recovery semantics depend on.)
                if deltas.records:
                    lsn = durability.append(deltas)
        if lsn is not None:
            durability.sync_for_policy()
            result.lsn = lsn
        return result

    def _execute_batch_inner(self, oplist) -> BatchResult:
        """Monitor-scoped dispatch loop of :meth:`execute_batch`."""
        before = self.counter.snapshot()
        start = time.perf_counter_ns()
        batch_log = AccessLog() if self.monitor is not None else None
        self._batch_log = batch_log
        try:
            results, errors = self._dispatch_batch(oplist)
        finally:
            self._batch_log = None
            if batch_log is not None and batch_log.records:
                self.monitor.observe_batch(self.table, batch_log)
        wall = float(time.perf_counter_ns() - start)
        accesses = self.counter.diff(before)
        return BatchResult(
            results=results,
            accesses=accesses,
            wall_ns=wall,
            operations=len(oplist),
            errors=errors,
        )

    def _dispatch_batch(self, oplist) -> tuple[list[Any], int]:
        """Run-grouped dispatch loop of :meth:`execute_batch`."""
        group_keys = batch_group_keys(oplist)
        results: list[Any] = []
        errors = 0
        i = 0
        n = len(oplist)
        while i < n:
            operation = oplist[i]
            group_key = group_keys[i]
            if group_key is None:
                try:
                    results.append(self.execute(operation).result)
                except ValueNotFoundError:
                    results.append(None)
                    errors += 1
                i += 1
                continue
            j = i + 1
            while j < n and group_keys[j] == group_key:
                j += 1
            group = oplist[i:j]
            kind = group_key[0]
            if kind == "point_query":
                results.extend(
                    self.multi_point_query(
                        [op.key for op in group], operation.columns
                    ).result
                )
            elif kind == "range_count":
                counts = self.multi_range_count(
                    [(op.low, op.high) for op in group]
                ).result
                results.extend(int(count) for count in counts)
            elif kind == "insert":
                width = len(self.table.payload_names)
                payloads = [
                    list(op.payload) if op.payload is not None else [0] * width
                    for op in group
                ]
                rowids = self.multi_insert(
                    [op.key for op in group], payloads
                ).result
                results.extend(int(rowid) for rowid in rowids)
            elif kind == "delete":
                counts = self.multi_delete([op.key for op in group]).result
                for count in counts:
                    if int(count) > 0:
                        results.append(int(count))
                    else:
                        results.append(None)
                        errors += 1
            else:  # "update"
                pairs = [(op.old_key, op.new_key) for op in group]
                counts = self.multi_update(pairs).result
                # Per-op dispatch returns None for a successful update too,
                # so every pair contributes None; misses additionally count
                # as errors, matching the ValueNotFoundError path.
                for count in counts:
                    results.append(None)
                    if int(count) == 0:
                        errors += 1
            i = j
        return results, errors

    def values(self) -> np.ndarray:
        """All live key values (for validation)."""
        return self.table.keys()
