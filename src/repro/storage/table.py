"""Multi-column tables over partitioned key columns.

A :class:`Table` stores a primary-key column (``a0`` in the HAP benchmark)
under one of the Casper column layouts, chunked into column chunks of a fixed
number of values (the paper uses 1M-value chunks).  Payload columns
(``a1..ap``) are kept in insertion order and addressed through global row
ids, so data movement inside the key column (ripples, delta merges) never has
to touch the payload -- this mirrors the paper's positioning that Casper
controls the layout of individual columns/column groups and is orthogonal to
the rest of the table layout.

Routing across chunks goes through a chunk-level
:class:`~repro.storage.partition_index.PartitionIndex` whose fences are the
chunk upper bounds (the last chunk's fence is ``int64 max`` so inserts of new
maxima route there without fence maintenance).  Because the chunking of the
loaded key column simply slices the sorted keys, a duplicate run may straddle
a chunk boundary; point operations therefore probe the *span* of candidate
chunks returned by :meth:`PartitionIndex.locate_all`, never just one chunk.
Every routing decision is charged through ``AccessCounter.index_probe``.

Concurrency model (chunk-granular)
----------------------------------

A table may be shared by multiple sessions on concurrent threads.  Isolation
is *chunk-granular*: every chunk visit is bracketed by that chunk's
:class:`~repro.storage.latches.RWLatch` -- shared for reads, exclusive for
writes -- so reads share chunks freely, writes to different chunks run in
parallel, and only writers (or a publish) targeting the *same* chunk
serialize.  Operations spanning several chunks latch them one at a time (or,
for cross-chunk key moves, all at once in ascending order), so a multi-chunk
read observes each chunk atomically but not the whole span -- the documented
unit of read consistency is the chunk.

Online reorganization is copy-on-write: :meth:`Table.snapshot_chunk` pins a
consistent (values, rowids, generation) snapshot under the shared latch, the
replacement chunk is built entirely off to the side
(:meth:`Table.build_chunk_replacement`, no latch held), and
:meth:`Table.publish_chunk` swaps it in with a single generation-checked
exchange under the exclusive latch.  Readers therefore stall on a replan
only for the O(1) publish of one chunk, never for the solve or the rebuild;
in-flight reads that already fetched the prior chunk object keep reading it
(Python reference counting reclaims the snapshot when the last reader
drops it).  A write that lands between snapshot and publish bumps the
chunk's generation, so the publish detects the race and refuses the stale
replacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro import discipline
from repro.discipline import requires_latch, requires_lock

from .cost_accounting import (
    DEFAULT_BLOCK_VALUES,
    AccessCounter,
    blocks_spanned,
)
from .column import expand_ranges
from .errors import LayoutError, ValueNotFoundError
from .latches import ChunkLatches
from .layouts import ColumnLike, LayoutKind, LayoutSpec, build_column
from .partition_index import PartitionIndex

#: Per-chunk column builder: (sorted chunk keys, global rowids, counter) -> chunk.
ChunkBuilder = Callable[[np.ndarray, np.ndarray, AccessCounter], ColumnLike]

#: Below this many probes per chunk, batched point/range resolution falls
#: back to per-value dispatch: the vectorized machinery's fixed per-call
#: overhead (partition grouping, expansion arrays) only amortizes once a
#: chunk receives a reasonable number of probes.  Both paths charge
#: identical simulated accesses, so the cutover is invisible to the cost
#: model -- it is purely a wall-clock adaptation for batches that scatter
#: thinly across many chunks.
SMALL_PROBE_FALLBACK = 16


def layout_chunk_builder(spec: LayoutSpec) -> ChunkBuilder:
    """Build chunks with a fixed :class:`LayoutSpec` (non-Casper modes)."""

    def builder(
        sorted_keys: np.ndarray, rowids: np.ndarray, counter: AccessCounter
    ) -> ColumnLike:
        return build_column(
            spec, sorted_keys, counter=counter, track_rowids=True, rowids=rowids
        )

    return builder


@dataclass
class Row:
    """A materialized row: the key plus the requested payload attributes."""

    key: int
    rowid: int
    payload: dict[str, int]


@dataclass(frozen=True)
class ChunkSnapshot:
    """A pinned, consistent view of one chunk's live data.

    Taken under the chunk's shared latch by :meth:`Table.snapshot_chunk`:
    ``values``/``rowids`` are aligned copies in ascending key order,
    ``generation`` is the chunk's data generation *at snapshot time* --
    the staleness token a copy-on-write :meth:`Table.publish_chunk`
    re-checks -- and ``partition_offsets`` describes the chunk's *current*
    physical layout (exclusive value end offsets of its partitions; a
    single ``[size]`` partition for layouts that do not expose counts,
    e.g. delta-store chunks) so a cost gate can price the live layout
    against the same data the plan is solved for.
    """

    chunk_index: int
    values: np.ndarray
    rowids: np.ndarray
    generation: int
    partition_offsets: np.ndarray


class Table:
    """A table with a partitioned key column and row-id addressed payload.

    Parameters
    ----------
    keys:
        Primary-key values (need not be sorted; they are sorted per chunk).
    payload:
        2-D array of shape ``(len(keys), num_payload_columns)`` or ``None``.
    chunk_size:
        Number of key values per column chunk (1M in the paper).
    chunk_builder:
        Callable that builds the key-column chunk from sorted keys, aligned
        global row ids and the shared access counter.  Defaults to a sorted
        layout.
    payload_names:
        Optional payload column names; defaults to ``a1..ap``.
    """

    def __init__(
        self,
        keys: np.ndarray | Sequence[int],
        payload: np.ndarray | None = None,
        *,
        chunk_size: int = 1_000_000,
        chunk_builder: ChunkBuilder | None = None,
        payload_names: Sequence[str] | None = None,
        block_values: int = DEFAULT_BLOCK_VALUES,
        router_fanout: int = 16,
    ) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise LayoutError("keys must be one-dimensional")
        if chunk_size <= 0:
            raise LayoutError("chunk_size must be positive")
        self.chunk_size = int(chunk_size)
        self.block_values = int(block_values)
        self.counter = AccessCounter()
        if chunk_builder is None:
            chunk_builder = layout_chunk_builder(
                LayoutSpec(kind=LayoutKind.SORTED, block_values=block_values)
            )
        self._chunk_builder = chunk_builder

        if payload is None:
            payload = np.empty((keys.shape[0], 0), dtype=np.int64)
        payload = np.asarray(payload, dtype=np.int64)
        if payload.ndim != 2 or payload.shape[0] != keys.shape[0]:
            raise LayoutError("payload must have one row per key")
        num_payload = payload.shape[1]
        if payload_names is None:
            payload_names = [f"a{i + 1}" for i in range(num_payload)]
        if len(payload_names) != num_payload:
            raise LayoutError("payload_names must match payload width")
        self.payload_names = list(payload_names)

        # Global row id i refers to the i-th row in key-sorted load order;
        # the payload array is stored in that same order.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        self._payload = payload[order].copy()
        self._payload_capacity = self._payload.shape[0]
        self._next_rowid = int(keys.shape[0])

        self._chunks: list[ColumnLike] = []
        self._chunk_bounds: list[int] = []
        n = sorted_keys.shape[0]
        start = 0
        while True:
            end = min(start + self.chunk_size, n)
            chunk_keys = sorted_keys[start:end]
            rowids = np.arange(start, end, dtype=np.int64)
            chunk = self._chunk_builder(chunk_keys, rowids, self.counter)
            self._chunks.append(chunk)
            high = int(chunk_keys[-1]) if chunk_keys.size else np.iinfo(np.int64).max
            self._chunk_bounds.append(high)
            start = end
            if start >= n:
                break
        self._chunk_bounds[-1] = np.iinfo(np.int64).max
        # Chunk-granular read/write latches (see the module docstring for
        # the concurrency model) plus two small structural locks: payload
        # appends allocate row ids, and publishes refresh the chunk bound /
        # router, each under its own mutex.  Created before the router so
        # every ``_rebuild_router`` call -- including the initial one --
        # runs under the structure lock.
        self._latches = ChunkLatches(len(self._chunks))
        self._payload_lock = discipline.make_lock("table_payload")
        self._structure_lock = discipline.make_lock("table_structure")
        self._router = PartitionIndex(fanout=router_fanout)
        with self._structure_lock:
            self._rebuild_router()
        # Per-chunk data generation: bumped (under the chunk's exclusive
        # latch) on every mutation that touches a chunk -- inserts, deletes,
        # key updates, bulk writes, published rebuilds.  An incremental
        # reorganizer snapshots the generation when it solves a layout and
        # re-checks it at publish time, so a replan that raced a concurrent
        # write is detected and requeued instead of applied stale.
        self._generations = [0] * len(self._chunks)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_chunks(self) -> int:
        """Number of column chunks backing the key column."""
        return len(self._chunks)

    @property
    def num_rows(self) -> int:
        """Number of live rows."""
        return sum(chunk.size for chunk in self._chunks)

    @property
    def chunks(self) -> list[ColumnLike]:
        """The key-column chunks (read-only use)."""
        return list(self._chunks)

    @property
    def chunk_bounds(self) -> np.ndarray:
        """Upper fence (maximum routable key) of each chunk."""
        return np.asarray(self._chunk_bounds, dtype=np.int64)

    @property
    def router(self) -> PartitionIndex:
        """The chunk-level routing index (read-only use)."""
        return self._router

    @property
    def latches(self) -> ChunkLatches:
        """The per-chunk read/write latches (tests may instrument them)."""
        return self._latches

    def keys(self) -> np.ndarray:
        """Materialize all live keys (unsorted)."""
        pieces = []
        for chunk_index in range(len(self._chunks)):
            self._latches.acquire_read(chunk_index)
            try:
                pieces.append(self._chunks[chunk_index].values())
            finally:
                self._latches.release_read(chunk_index)
        return np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Data generations
    # ------------------------------------------------------------------ #

    def chunk_generation(self, chunk_index: int) -> int:
        """Mutation counter of one chunk (monotonic, starts at 0)."""
        return self._generations[chunk_index]

    @property
    def generation(self) -> int:
        """Table-wide mutation counter: the sum of all chunk generations."""
        return sum(self._generations)

    @requires_latch("exclusive")
    def _bump_generation(self, chunk_index: int) -> None:
        # Only ever called with the chunk's exclusive latch held (checked:
        # LB01 statically, held-latch assertion in debug mode), so the
        # read-modify-write cannot race another mutator.
        self._generations[chunk_index] += 1

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    @requires_lock("table_structure")
    def _rebuild_router(self) -> None:
        self._router.rebuild(np.asarray(self._chunk_bounds, dtype=np.int64))

    def _route_key(self, key: int) -> tuple[int, int]:
        """Inclusive span of chunks that may contain ``key`` (index probe).

        Duplicate runs straddling a chunk boundary make the span wider than
        one chunk; all candidates must be probed for correct point reads,
        deletes and key updates.
        """
        self.counter.index_probe()
        return self._router.locate_all(int(key))

    def _route_insert(self, key: int) -> int:
        """Chunk that receives an insert of ``key`` (first candidate)."""
        self.counter.index_probe()
        return self._router.locate(int(key))

    def _route_range(self, low: int, high: int) -> tuple[int, int]:
        self.counter.index_probe()
        return self._router.locate_range(int(low), int(high))

    def chunk_span(self, low: int, high: int | None = None) -> tuple[int, int]:
        """Chunk span for monitoring/planning purposes (no access charged)."""
        if high is None:
            return self._router.locate_all(int(low))
        return self._router.locate_range(int(low), int(high))

    def chunk_span_batch(
        self,
        lows: np.ndarray | Sequence[int],
        highs: np.ndarray | Sequence[int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`chunk_span` (no access charged).

        One ``searchsorted`` pass over the chunk fences resolves the whole
        key (or bound-pair) array; returns aligned ``(first, last)``
        candidate-span arrays.  This is the monitor's attribution fast path.
        """
        lows = np.asarray(lows, dtype=np.int64)
        if highs is None:
            return self._router.locate_batch(lows)
        return self._router.locate_range_batch(
            lows, np.asarray(highs, dtype=np.int64)
        )

    # ------------------------------------------------------------------ #
    # Payload access
    # ------------------------------------------------------------------ #

    def _payload_indices(self, columns: Sequence[str]) -> list[int]:
        try:
            return [self.payload_names.index(name) for name in columns]
        except ValueError as exc:
            raise LayoutError(f"unknown payload column: {exc}") from exc

    def _append_payload(self, values: Sequence[int]) -> int:
        if len(values) != len(self.payload_names):
            raise LayoutError("payload width mismatch")
        row = np.asarray(values, dtype=np.int64).reshape(1, -1)
        return int(self._append_payload_batch(row)[0])

    def _append_payload_batch(self, rows: np.ndarray) -> np.ndarray:
        """Append ``rows`` (one payload row per new key) in one write.

        Returns the assigned global row ids, in row order.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[1] != len(self.payload_names):
            raise LayoutError("payload width mismatch")
        count = int(rows.shape[0])
        # Row-id allocation and the growth vstack are serialized; readers
        # never hold this lock -- a row id only becomes visible once its
        # chunk insert publishes it (under the chunk's exclusive latch), by
        # which time the payload row is durably written.
        with self._payload_lock:
            needed = self._next_rowid + count
            if needed > self._payload_capacity:
                extra = max(
                    1024, self._payload_capacity // 2, needed - self._payload_capacity
                )
                self._payload = np.vstack(
                    (
                        self._payload,
                        np.zeros(
                            (extra, max(self._payload.shape[1], 0)), dtype=np.int64
                        ),
                    )
                )
                self._payload_capacity = self._payload.shape[0]
            start = self._next_rowid
            if self._payload.shape[1]:
                self._payload[start:needed, :] = rows
            self._next_rowid = needed
        return np.arange(start, needed, dtype=np.int64)

    def payload_rows(self, rowids: np.ndarray | Sequence[int]) -> np.ndarray:
        """Copy the payload rows addressed by ``rowids`` (snapshot path).

        Returns a ``(len(rowids), num_payload_columns)`` array aligned with
        the input.  Unlocked, like every payload read: a row id is only
        handed out after its chunk insert published it, by which time its
        payload row is durably written (``_payload`` is ``"write"``-guarded,
        see :data:`repro.discipline.GUARDED_BY`).
        """
        rowids = np.asarray(rowids, dtype=np.int64)
        return self._payload[rowids].copy()

    def _materialize_rows(
        self,
        key: int,
        rowids: np.ndarray,
        columns: list[str],
        indices: list[int],
    ) -> list[Row]:
        rows: list[Row] = []
        for rowid in rowids:
            rowid = int(rowid)
            payload = {
                name: int(self._payload[rowid, idx])
                for name, idx in zip(columns, indices, strict=True)
            }
            rows.append(Row(key=int(key), rowid=rowid, payload=payload))
        return rows

    # ------------------------------------------------------------------ #
    # HAP-style operations
    # ------------------------------------------------------------------ #

    def point_query(
        self, key: int, columns: Sequence[str] | None = None
    ) -> list[Row]:
        """Q1: return the rows whose key equals ``key`` with payload columns."""
        key = int(key)
        first, last = self._route_key(key)
        columns = list(columns) if columns is not None else list(self.payload_names)
        indices = self._payload_indices(columns)
        pieces: list[np.ndarray] = []
        for chunk_index in range(first, last + 1):
            self._latches.acquire_read(chunk_index)
            try:
                hits = self._chunks[chunk_index].point_query(
                    key, return_rowids=True
                )
            finally:
                self._latches.release_read(chunk_index)
            hits = np.asarray(hits, dtype=np.int64)
            if hits.size:
                pieces.append(hits)
        rowids = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        )
        if rowids.size and columns:
            self.counter.random_read(int(rowids.size) * len(columns))
        return self._materialize_rows(key, rowids, columns, indices)

    def multi_point_query(
        self, keys: np.ndarray | Sequence[int], columns: Sequence[str] | None = None
    ) -> list[list[Row]]:
        """Vectorized Q1 batch: one row list per input key, in input order.

        Keys are routed with a single ``searchsorted`` over the chunk fences,
        grouped by chunk and resolved with vectorized per-chunk probes; the
        simulated block accesses are identical to issuing each point query
        individually.
        """
        keys_arr = np.asarray(keys, dtype=np.int64)
        if keys_arr.ndim != 1:
            raise LayoutError("keys must be one-dimensional")
        columns = list(columns) if columns is not None else list(self.payload_names)
        indices = self._payload_indices(columns)
        m = int(keys_arr.size)
        if m == 0:
            return []
        self.counter.index_probe(m)
        first, last = self._router.locate_batch(keys_arr)
        spans = (last - first + 1).astype(np.int64)
        expanded_pos = np.repeat(np.arange(m, dtype=np.int64), spans)
        expanded_chunks = expand_ranges(first, spans)
        counts_per_key = np.zeros(m, dtype=np.int64)
        owner_pieces: list[np.ndarray] = []
        hit_pieces: list[np.ndarray] = []
        # Chunks are visited in ascending order, so the stable owner sort
        # below reproduces the per-op candidate-chunk probing order.
        for chunk_index in np.unique(expanded_chunks):
            positions = expanded_pos[expanded_chunks == chunk_index]
            chunk_keys = keys_arr[positions]
            self._latches.acquire_read(int(chunk_index))
            try:
                chunk = self._chunks[int(chunk_index)]
                if chunk_keys.size >= SMALL_PROBE_FALLBACK and hasattr(
                    chunk, "multi_point_query"
                ):
                    hits, counts = chunk.multi_point_query(
                        chunk_keys, return_rowids=True
                    )
                else:
                    found = [
                        np.asarray(
                            chunk.point_query(int(value), return_rowids=True),
                            dtype=np.int64,
                        )
                        for value in chunk_keys
                    ]
                    counts = np.asarray(
                        [hit.size for hit in found], dtype=np.int64
                    )
                    hits = (
                        np.concatenate(found)
                        if found
                        else np.empty(0, dtype=np.int64)
                    )
            finally:
                self._latches.release_read(int(chunk_index))
            if not int(counts.sum()):
                continue
            counts_per_key[positions] += counts
            owner_pieces.append(np.repeat(positions, counts))
            hit_pieces.append(hits)
        total_hits = int(counts_per_key.sum())
        if total_hits and columns:
            self.counter.random_read(total_hits * len(columns))
        if owner_pieces:
            owners = np.concatenate(owner_pieces)
            hits_flat = np.concatenate(hit_pieces)
            hits_flat = hits_flat[np.argsort(owners, kind="stable")]
        else:
            hits_flat = np.empty(0, dtype=np.int64)
        results: list[list[Row]] = []
        offset = 0
        for i in range(m):
            count = int(counts_per_key[i])
            rowids = hits_flat[offset : offset + count]
            offset += count
            results.append(
                self._materialize_rows(int(keys_arr[i]), rowids, columns, indices)
            )
        return results

    def range_count(self, low: int, high: int) -> int:
        """Q2: ``SELECT count(*) WHERE key BETWEEN low AND high``."""
        first, last = self._route_range(int(low), int(high))
        total = 0
        for chunk_index in range(first, last + 1):
            self._latches.acquire_read(chunk_index)
            try:
                result = self._chunks[chunk_index].range_query(
                    int(low), int(high), materialize=False
                )
            finally:
                self._latches.release_read(chunk_index)
            total += result.count
        return total

    def multi_range_count(
        self, bounds: Sequence[tuple[int, int]] | np.ndarray
    ) -> np.ndarray:
        """Vectorized Q2 batch: one count per ``(low, high)`` pair.

        Ranges are routed with one ``searchsorted`` pass over the chunk
        fences and resolved per chunk with vectorized fence lookups; the
        simulated accesses are identical to issuing each range count
        individually.
        """
        bounds_arr = np.asarray(bounds, dtype=np.int64)
        if bounds_arr.size == 0:
            return np.empty(0, dtype=np.int64)
        if bounds_arr.ndim != 2 or bounds_arr.shape[1] != 2:
            raise LayoutError("bounds must be a sequence of (low, high) pairs")
        lows = bounds_arr[:, 0]
        highs = bounds_arr[:, 1]
        if np.any(lows > highs):
            raise ValueError("low must be <= high")
        m = int(bounds_arr.shape[0])
        self.counter.index_probe(m)
        first, last = self._router.locate_range_batch(lows, highs)
        totals = np.zeros(m, dtype=np.int64)
        spans = (last - first + 1).astype(np.int64)
        expanded_pos = np.repeat(np.arange(m, dtype=np.int64), spans)
        expanded_chunks = expand_ranges(first, spans)
        for chunk_index in np.unique(expanded_chunks):
            positions = expanded_pos[expanded_chunks == chunk_index]
            self._latches.acquire_read(int(chunk_index))
            try:
                chunk = self._chunks[int(chunk_index)]
                if positions.size >= SMALL_PROBE_FALLBACK and hasattr(
                    chunk, "multi_range_count"
                ):
                    counts = chunk.multi_range_count(
                        lows[positions], highs[positions]
                    )
                else:
                    counts = np.asarray(
                        [
                            chunk.range_query(
                                int(lows[pos]), int(highs[pos]), materialize=False
                            ).count
                            for pos in positions
                        ],
                        dtype=np.int64,
                    )
            finally:
                self._latches.release_read(int(chunk_index))
            np.add.at(totals, positions, counts)
        return totals

    def range_sum(
        self, low: int, high: int, columns: Sequence[str] | None = None
    ) -> int:
        """Q3: sum payload attributes over rows whose key is in ``[low, high]``."""
        columns = list(columns) if columns is not None else list(self.payload_names)
        indices = self._payload_indices(columns)
        first, last = self._route_range(int(low), int(high))
        total = 0
        for chunk_index in range(first, last + 1):
            self._latches.acquire_read(chunk_index)
            try:
                rowids = self._chunks[chunk_index].range_rowids(
                    int(low), int(high)
                )
            finally:
                self._latches.release_read(chunk_index)
            rowids = np.asarray(rowids, dtype=np.int64)
            if rowids.size == 0 or not indices:
                continue
            blocks = blocks_spanned(0, int(rowids.size), self.block_values)
            self.counter.seq_read(blocks * len(indices))
            total += int(self._payload[np.ix_(rowids, indices)].sum())
        return total

    def insert(self, key: int, payload: Sequence[int] | None = None) -> int:
        """Q4: insert a new row; returns its global row id."""
        payload = payload if payload is not None else [0] * len(self.payload_names)
        rowid = self._append_payload(payload)
        key = int(key)
        chunk_index = self._route_insert(key)
        while True:
            self._latches.acquire_write(chunk_index)
            # Revalidate the insert route under the latch: a concurrent
            # publish may have tightened this chunk's fence between routing
            # and latching, and inserting above the fence would make the
            # key unreachable.  Once the route checks out while we hold the
            # exclusive latch it cannot move again -- tightening *this*
            # fence needs this latch, and earlier fences are already below
            # the key and only ever tighten further.
            if self._router.locate(key) == chunk_index:
                try:
                    self._chunks[chunk_index].insert(key, rowid=rowid)
                    self._bump_generation(chunk_index)
                finally:
                    self._latches.release_write(chunk_index)
                return rowid
            self._latches.release_write(chunk_index)
            chunk_index = self._route_insert(key)

    def delete(self, key: int) -> int:
        """Q5: delete one row by key; returns the number of deleted rows.

        All candidate chunks are probed in routing order, so duplicates split
        across a chunk boundary are reachable by repeated deletes.  Within
        the first chunk holding the key, the victim is the oldest surviving
        copy (smallest row id -- see
        :meth:`~repro.storage.column.PartitionedColumn._oldest_first`), so
        which copy dies is deterministic and serial/sharded executions
        agree, payloads included.
        """
        key = int(key)
        first, last = self._route_key(key)
        for chunk_index in range(first, last + 1):
            self._latches.acquire_write(chunk_index)
            try:
                deleted = self._chunks[chunk_index].delete(key, limit=1)
                self._bump_generation(chunk_index)
                return deleted
            except ValueNotFoundError:
                continue
            finally:
                self._latches.release_write(chunk_index)
        raise ValueNotFoundError(f"key {key} not found")

    def take_row(self, key: int) -> tuple[int, np.ndarray]:
        """Delete one row by key and return ``(rowid, payload_row)``.

        Chooses the same victim :meth:`delete` would (the oldest copy --
        smallest row id -- in the first candidate chunk holding the key)
        with identical charged accesses, but reports which row it removed
        so a cross-shard move can carry the payload to the target shard.
        The payload row is copied before the row id goes back into
        circulation.
        """
        key = int(key)
        first, last = self._route_key(key)
        for chunk_index in range(first, last + 1):
            self._latches.acquire_write(chunk_index)
            try:
                rowid = self._chunks[chunk_index].remove_one(key)
                self._bump_generation(chunk_index)
            except ValueNotFoundError:
                continue
            finally:
                self._latches.release_write(chunk_index)
            row = (
                self._payload[rowid].copy()
                if self.payload_names
                else np.empty(0, dtype=np.int64)
            )
            return int(rowid), row
        raise ValueNotFoundError(f"key {key} not found")

    def bulk_insert(
        self,
        keys: np.ndarray | Sequence[int],
        payload: np.ndarray | Sequence[Sequence[int]] | None = None,
    ) -> np.ndarray:
        """Batched Q4: insert many rows on the vectorized bulk-write path.

        Payload rows are appended (and global row ids assigned) in *input*
        order with one array write; the keys are then routed with a single
        ``searchsorted`` over the chunk fences and handed to each receiving
        chunk's :meth:`~repro.storage.column.PartitionedColumn.bulk_insert`
        in ascending key order.  The resulting table state is identical to
        inserting the same (key, row id) pairs sequentially in ascending key
        order; chunk bounds never change on insert (the last fence is
        ``int64 max``), so the router is left untouched.  Returns the new
        global row ids aligned with the input order.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise LayoutError("keys must be one-dimensional")
        m = int(keys.size)
        if payload is None:
            rows = np.zeros((m, len(self.payload_names)), dtype=np.int64)
        else:
            try:
                rows = np.asarray(payload, dtype=np.int64)
            except ValueError as exc:
                raise LayoutError("payload width mismatch") from exc
            if rows.ndim != 2 or rows.shape[0] != m:
                raise LayoutError("payload must have one row per key")
        rowids = self._append_payload_batch(rows)
        if m == 0:
            return rowids
        self.counter.index_probe(m)
        pending = np.arange(m, dtype=np.int64)
        while pending.size:
            # First-candidate (insert) routing is locate_batch's `first`
            # array.  Each group revalidates its routes under the chunk's
            # exclusive latch (a concurrent publish may have tightened the
            # fence since routing); re-routed keys retry on the next pass.
            chunk_ids, _ = self._router.locate_batch(keys[pending])
            perm = np.argsort(keys[pending], kind="stable")
            order = pending[perm]
            sorted_chunks = chunk_ids[perm]
            unique_chunks, group_starts, group_counts = np.unique(
                sorted_chunks, return_index=True, return_counts=True
            )
            stale_pieces: list[np.ndarray] = []
            for chunk_index, lo, count in zip(
                unique_chunks.tolist(),
                group_starts.tolist(),
                group_counts.tolist(),
                strict=True,
            ):
                sel = order[lo : lo + count]
                self._latches.acquire_write(chunk_index)
                try:
                    fresh, _ = self._router.locate_batch(keys[sel])
                    valid = sel[fresh == chunk_index]
                    stale = sel[fresh != chunk_index]
                    if stale.size:
                        stale_pieces.append(stale)
                    if valid.size == 0:
                        continue
                    chunk = self._chunks[chunk_index]
                    if hasattr(chunk, "bulk_insert"):
                        chunk.bulk_insert(keys[valid], rowids[valid])
                    else:
                        for i in valid.tolist():
                            chunk.insert(int(keys[i]), rowid=int(rowids[i]))
                    self._bump_generation(chunk_index)
                finally:
                    self._latches.release_write(chunk_index)
            pending = (
                np.concatenate(stale_pieces)
                if stale_pieces
                else np.empty(0, dtype=np.int64)
            )
        return rowids

    def bulk_delete(self, keys: np.ndarray | Sequence[int]) -> np.ndarray:
        """Batched Q5: delete one row per key on the vectorized bulk path.

        Keys are routed with one ``searchsorted`` pass over the chunk fences
        and resolved in ascending key order; keys that miss their first
        candidate chunk retry the next chunk of their candidate span, so
        duplicate runs straddling a chunk boundary stay reachable exactly as
        on the per-key path.  Chunk bounds are left stale-high (deletes only
        widen routing), so the router is never rebuilt.  Returns an array
        aligned with the input: 1 where a row was deleted, 0 where the key
        was absent.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise LayoutError("keys must be one-dimensional")
        m = int(keys.size)
        deleted = np.zeros(m, dtype=np.int64)
        if m == 0:
            return deleted
        self.counter.index_probe(m)
        first, last = self._router.locate_batch(keys)
        order = np.argsort(keys, kind="stable")
        attempt = first[order].copy()
        span_last = last[order]
        unresolved = np.ones(m, dtype=bool)
        for chunk_index in range(int(attempt.min()), int(span_last.max()) + 1):
            group = np.nonzero(unresolved & (attempt == chunk_index))[0]
            if group.size == 0:
                continue
            sel = order[group]
            self._latches.acquire_write(chunk_index)
            try:
                chunk = self._chunks[chunk_index]
                if hasattr(chunk, "bulk_delete"):
                    counts = chunk.bulk_delete(keys[sel])
                else:
                    counts = np.zeros(group.size, dtype=np.int64)
                    for j, i in enumerate(sel.tolist()):
                        try:
                            counts[j] = chunk.delete(int(keys[i]), limit=1)
                        except ValueNotFoundError:
                            counts[j] = 0
                hit = counts > 0
                if np.any(hit):
                    self._bump_generation(chunk_index)
            finally:
                self._latches.release_write(chunk_index)
            deleted[sel[hit]] = counts[hit]
            unresolved[group[hit]] = False
            missed = group[~hit]
            retriable = missed[span_last[missed] > chunk_index]
            unresolved[missed] = False
            unresolved[retriable] = True
            attempt[retriable] = chunk_index + 1
        return deleted

    def bulk_update(
        self, pairs: np.ndarray | Sequence[tuple[int, int]]
    ) -> np.ndarray:
        """Batched Q6: apply ``old_key -> new_key`` corrections in one call.

        Routing is batched -- one ``searchsorted`` pass over the chunk fences
        for the source spans and one for the insert targets, charging the
        same two index probes per pair as :meth:`update_key` -- but the pairs
        themselves are applied *in submission order* with the exact per-pair
        logic of :meth:`update_key`.  Updates never move chunk fences, so the
        pre-computed routes stay valid throughout the batch and the resulting
        table state, results and simulated access counts are identical to
        dispatching each update individually (unlike the insert/delete bulk
        paths, nothing is reordered or coalesced).  Returns an array aligned
        with the input: 1 where a row was updated, 0 where ``old_key`` was
        absent (no :class:`ValueNotFoundError` is raised on the bulk path).
        """
        pairs_arr = np.asarray(pairs, dtype=np.int64)
        if pairs_arr.size == 0:
            return np.zeros(0, dtype=np.int64)
        if pairs_arr.ndim != 2 or pairs_arr.shape[1] != 2:
            raise LayoutError("pairs must be a sequence of (old, new) tuples")
        m = int(pairs_arr.shape[0])
        self.counter.index_probe(m)
        first, last = self._router.locate_batch(pairs_arr[:, 0])
        self.counter.index_probe(m)
        targets, _ = self._router.locate_batch(pairs_arr[:, 1])
        updated = np.zeros(m, dtype=np.int64)
        for i in range(m):
            updated[i] = self._apply_update(
                int(pairs_arr[i, 0]),
                int(pairs_arr[i, 1]),
                int(first[i]),
                int(last[i]),
                int(targets[i]),
            )
        return updated

    def _apply_update(
        self, old_key: int, new_key: int, first: int, last: int, target: int
    ) -> int:
        """One ``old_key -> new_key`` correction over pre-computed routes.

        Latches the candidate span plus the insert target exclusively (in
        ascending order, the deadlock-free multi-chunk protocol) so a
        cross-chunk move -- remove from the source, insert into the target
        -- is atomic with respect to concurrent readers and writers.  The
        target route is revalidated under the latches (a concurrent
        publish may have tightened its fence since routing; the source
        span needs no revalidation -- fences only tighten, which keeps a
        stale span covering).  Returns 1 when a row was updated, 0 when
        ``old_key`` was absent.
        """
        while True:
            latched = self._latches.acquire_write_many(
                list(range(first, last + 1)) + [target]
            )
            try:
                fresh_target = self._router.locate(new_key)
                if fresh_target == target:
                    for chunk_index in range(first, last + 1):
                        try:
                            if chunk_index == target:
                                self._chunks[chunk_index].update(
                                    old_key, new_key
                                )
                            else:
                                rowid = self._chunks[chunk_index].remove_one(
                                    old_key
                                )
                                self._chunks[target].insert(
                                    new_key, rowid=rowid
                                )
                                self._bump_generation(target)
                            self._bump_generation(chunk_index)
                            return 1
                        except ValueNotFoundError:
                            continue
                    return 0
            finally:
                self._latches.release_write_many(latched)
            target = fresh_target

    def update_key(self, old_key: int, new_key: int) -> None:
        """Q6: correct a primary-key value (update ``old_key`` -> ``new_key``).

        The source chunk is the first candidate chunk that actually holds
        ``old_key`` (duplicate runs may straddle chunk bounds); the target is
        the insert route of ``new_key``.  A same-chunk update rewrites in
        place via the column's ripple update; a cross-chunk move preserves
        the global row id, so the payload never moves.
        """
        old_key, new_key = int(old_key), int(new_key)
        first, last = self._route_key(old_key)
        target = self._route_insert(new_key)
        # Same-chunk updates rewrite in place via the column's ripple update
        # (which performs and charges the single source scan, per Eq. 12/14);
        # cross-chunk moves preserve the global row id via remove_one, so the
        # payload never moves.  Both run under the span+target latches.
        if not self._apply_update(old_key, new_key, first, last, target):
            raise ValueNotFoundError(f"key {old_key} not found")

    def scan(self) -> np.ndarray:
        """Full scan of the key column."""
        pieces = []
        for chunk_index in range(len(self._chunks)):
            self._latches.acquire_read(chunk_index)
            try:
                chunk = self._chunks[chunk_index]
                if hasattr(chunk, "full_scan"):
                    pieces.append(chunk.full_scan())
                else:
                    pieces.append(chunk.values())
            finally:
                self._latches.release_read(chunk_index)
        return np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Online reorganization
    # ------------------------------------------------------------------ #

    def snapshot_chunk(self, chunk_index: int) -> ChunkSnapshot:
        """Pin a consistent (values, rowids, generation) view of one chunk.

        Taken under the chunk's shared latch, so the arrays and the
        generation belong to one point in the chunk's mutation history --
        the copy-on-write contract :meth:`publish_chunk` re-checks.  Values
        and row ids come back aligned in ascending key order, ready for a
        chunk builder.  No simulated accesses are charged (pricing belongs
        to :meth:`build_chunk_replacement`).
        """
        if not 0 <= chunk_index < len(self._chunks):
            raise LayoutError(f"chunk index {chunk_index} out of range")
        self._latches.acquire_read(chunk_index)
        try:
            chunk = self._chunks[chunk_index]
            if not hasattr(chunk, "rowids"):
                raise LayoutError(
                    "chunk does not expose row ids; cannot rebuild in place"
                )
            values = np.asarray(chunk.values(), dtype=np.int64)
            rowids = np.asarray(chunk.rowids(), dtype=np.int64)
            generation = self._generations[chunk_index]
            offsets = None
            if hasattr(chunk, "partition_counts"):
                offsets = np.cumsum(
                    np.asarray(chunk.partition_counts(), dtype=np.int64)
                )
                offsets = offsets[offsets > 0]
                if not offsets.size or int(offsets[-1]) != int(values.size):
                    offsets = None
        finally:
            self._latches.release_read(chunk_index)
        if offsets is None:
            # Price the chunk as one partition (e.g. delta-store chunks,
            # whose main run is a single sorted area).
            offsets = np.asarray([values.size], dtype=np.int64)
        order = np.argsort(values, kind="stable")
        return ChunkSnapshot(
            chunk_index=chunk_index,
            values=values[order],
            rowids=rowids[order],
            generation=generation,
            partition_offsets=offsets,
        )

    def build_chunk_replacement(
        self, snapshot: ChunkSnapshot, chunk_builder: ChunkBuilder | None = None
    ) -> ColumnLike:
        """Build a replacement chunk off to the side (no latch held).

        Charges the rebuild's sequential read+write sweep -- the same charge
        ``DeltaStoreColumn.merge`` pays for its reorganization -- and feeds
        the snapshot through ``chunk_builder`` (the table's default when
        omitted).  The result is not visible to readers until
        :meth:`publish_chunk` swaps it in.
        """
        blocks = blocks_spanned(0, int(snapshot.values.size), self.block_values)
        self.counter.seq_read(blocks)
        self.counter.seq_write(blocks)
        builder = chunk_builder if chunk_builder is not None else self._chunk_builder
        return builder(snapshot.values, snapshot.rowids, self.counter)

    def publish_chunk(
        self, snapshot: ChunkSnapshot, rebuilt: ColumnLike
    ) -> bool:
        """Atomically swap a rebuilt chunk in, iff its snapshot is current.

        Takes the chunk's exclusive latch, re-checks the data generation
        against the snapshot, and -- when no write raced the rebuild --
        publishes the replacement with a single reference exchange, bumps
        the generation, refreshes the chunk's upper fence from the snapshot
        maximum (tightening stale-high fences left by deletes) and rebuilds
        the router.  Returns ``False`` when the generation moved: the
        replacement was built from data that no longer exists, so the
        caller must re-snapshot and rebuild (or requeue the replan).

        Readers never block on the rebuild itself -- only on this O(1)
        publish; in-flight reads that already fetched the prior chunk
        object keep using it and drop it when they finish (reference-count
        reclamation).
        """
        chunk_index = snapshot.chunk_index
        self._latches.acquire_write(chunk_index)
        try:
            if self._generations[chunk_index] != snapshot.generation:
                return False
            self._chunks[chunk_index] = rebuilt
            self._bump_generation(chunk_index)
            with self._structure_lock:
                if (
                    chunk_index < len(self._chunks) - 1
                    and snapshot.values.size
                ):
                    self._chunk_bounds[chunk_index] = int(snapshot.values[-1])
                self._rebuild_router()
            return True
        finally:
            self._latches.release_write(chunk_index)

    def rebuild_chunk(
        self, chunk_index: int, chunk_builder: ChunkBuilder | None = None
    ) -> ColumnLike:
        """Re-lay-out one chunk in place (the paper's online loop, Fig. 10).

        The chunk's live keys and row ids are extracted, re-sorted and fed
        back through ``chunk_builder`` (the table's default builder when
        omitted -- pass e.g. ``CasperPlanner.build_chunk`` to re-optimize for
        a drifted workload).  The chunk's upper fence is refreshed from the
        surviving maximum and the router rebuilt, so stale-high fences left
        by deletes are tightened.

        The rebuild is copy-on-write (:meth:`snapshot_chunk` ->
        :meth:`build_chunk_replacement` -> :meth:`publish_chunk`): readers
        proceed against the prior chunk throughout and only pause for the
        O(1) publish.  A write racing the rebuild fails the publish, and
        this synchronous entry point simply re-snapshots and rebuilds until
        it lands (single-threaded callers always land on the first try;
        callers that would rather requeue than retry use the three-phase
        API directly, as :meth:`repro.api.reorg.ReorgPolicy.apply_action`
        does).
        """
        while True:
            snapshot = self.snapshot_chunk(chunk_index)
            if snapshot.values.size == 0:
                with self._latches.shared(chunk_index):
                    return self._chunks[chunk_index]
            rebuilt = self.build_chunk_replacement(snapshot, chunk_builder)
            if self.publish_chunk(snapshot, rebuilt):
                return rebuilt

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Validate every chunk plus the cross-chunk routing invariants.

        Beyond per-chunk structure this asserts the fence-maintenance
        contract of :mod:`repro.storage.partition_index`: non-decreasing
        chunk bounds mirrored by the router, a ``+inf`` final fence, every
        chunk's keys at most its own bound and at least the previous bound
        (equality allowed -- duplicate runs may straddle a boundary), and
        globally unique row ids.
        """
        bounds = np.asarray(self._chunk_bounds, dtype=np.int64)
        assert bounds.shape[0] == len(self._chunks), "bounds/chunks mismatch"
        assert bounds.size == 0 or np.all(np.diff(bounds) >= 0), (
            "chunk bounds must be non-decreasing"
        )
        assert bounds.size and bounds[-1] == np.iinfo(np.int64).max, (
            "last chunk bound must be +inf"
        )
        assert np.array_equal(self._router.fences, bounds), (
            "router fences out of sync with chunk bounds"
        )
        previous_bound = np.iinfo(np.int64).min
        all_rowids: list[np.ndarray] = []
        for i, chunk in enumerate(self._chunks):
            chunk.check_invariants()
            values = np.asarray(chunk.values(), dtype=np.int64)
            if values.size:
                assert int(values.min()) >= previous_bound, (
                    f"chunk {i} holds keys below the previous chunk bound"
                )
                assert int(values.max()) <= int(bounds[i]), (
                    f"chunk {i} holds keys above its bound"
                )
            if hasattr(chunk, "rowids"):
                all_rowids.append(np.asarray(chunk.rowids(), dtype=np.int64))
            previous_bound = int(bounds[i])
        if all_rowids:
            merged = np.concatenate(all_rowids)
            assert np.unique(merged).shape[0] == merged.shape[0], (
                "duplicate row ids across chunks"
            )


def require_key(rows: list[Row], key: int) -> Row:
    """Return the single row matching ``key`` or raise ``ValueNotFoundError``."""
    if not rows:
        raise ValueNotFoundError(f"key {key} not found")
    return rows[0]
