"""Multi-column tables over partitioned key columns.

A :class:`Table` stores a primary-key column (``a0`` in the HAP benchmark)
under one of the Casper column layouts, chunked into column chunks of a fixed
number of values (the paper uses 1M-value chunks).  Payload columns
(``a1..ap``) are kept in insertion order and addressed through global row
ids, so data movement inside the key column (ripples, delta merges) never has
to touch the payload -- this mirrors the paper's positioning that Casper
controls the layout of individual columns/column groups and is orthogonal to
the rest of the table layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .cost_accounting import (
    DEFAULT_BLOCK_VALUES,
    AccessCounter,
    blocks_spanned,
)
from .errors import LayoutError, ValueNotFoundError
from .layouts import ColumnLike, LayoutKind, LayoutSpec, build_column

#: Per-chunk column builder: (sorted chunk keys, global rowids, counter) -> chunk.
ChunkBuilder = Callable[[np.ndarray, np.ndarray, AccessCounter], ColumnLike]


def layout_chunk_builder(spec: LayoutSpec) -> ChunkBuilder:
    """Build chunks with a fixed :class:`LayoutSpec` (non-Casper modes)."""

    def builder(
        sorted_keys: np.ndarray, rowids: np.ndarray, counter: AccessCounter
    ) -> ColumnLike:
        return build_column(
            spec, sorted_keys, counter=counter, track_rowids=True, rowids=rowids
        )

    return builder


@dataclass
class Row:
    """A materialized row: the key plus the requested payload attributes."""

    key: int
    rowid: int
    payload: dict[str, int]


class Table:
    """A table with a partitioned key column and row-id addressed payload.

    Parameters
    ----------
    keys:
        Primary-key values (need not be sorted; they are sorted per chunk).
    payload:
        2-D array of shape ``(len(keys), num_payload_columns)`` or ``None``.
    chunk_size:
        Number of key values per column chunk (1M in the paper).
    chunk_builder:
        Callable that builds the key-column chunk from sorted keys, aligned
        global row ids and the shared access counter.  Defaults to a sorted
        layout.
    payload_names:
        Optional payload column names; defaults to ``a1..ap``.
    """

    def __init__(
        self,
        keys: np.ndarray | Sequence[int],
        payload: np.ndarray | None = None,
        *,
        chunk_size: int = 1_000_000,
        chunk_builder: ChunkBuilder | None = None,
        payload_names: Sequence[str] | None = None,
        block_values: int = DEFAULT_BLOCK_VALUES,
    ) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise LayoutError("keys must be one-dimensional")
        if chunk_size <= 0:
            raise LayoutError("chunk_size must be positive")
        self.chunk_size = int(chunk_size)
        self.block_values = int(block_values)
        self.counter = AccessCounter()
        if chunk_builder is None:
            chunk_builder = layout_chunk_builder(
                LayoutSpec(kind=LayoutKind.SORTED, block_values=block_values)
            )
        self._chunk_builder = chunk_builder

        if payload is None:
            payload = np.empty((keys.shape[0], 0), dtype=np.int64)
        payload = np.asarray(payload, dtype=np.int64)
        if payload.ndim != 2 or payload.shape[0] != keys.shape[0]:
            raise LayoutError("payload must have one row per key")
        num_payload = payload.shape[1]
        if payload_names is None:
            payload_names = [f"a{i + 1}" for i in range(num_payload)]
        if len(payload_names) != num_payload:
            raise LayoutError("payload_names must match payload width")
        self.payload_names = list(payload_names)

        # Global row id i refers to the i-th row in key-sorted load order;
        # the payload array is stored in that same order.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        self._payload = payload[order].copy()
        self._payload_capacity = self._payload.shape[0]
        self._next_rowid = int(keys.shape[0])

        self._chunks: list[ColumnLike] = []
        self._chunk_bounds: list[int] = []
        n = sorted_keys.shape[0]
        start = 0
        while True:
            end = min(start + self.chunk_size, n)
            chunk_keys = sorted_keys[start:end]
            rowids = np.arange(start, end, dtype=np.int64)
            chunk = self._chunk_builder(chunk_keys, rowids, self.counter)
            self._chunks.append(chunk)
            high = int(chunk_keys[-1]) if chunk_keys.size else np.iinfo(np.int64).max
            self._chunk_bounds.append(high)
            start = end
            if start >= n:
                break
        self._chunk_bounds[-1] = np.iinfo(np.int64).max

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_chunks(self) -> int:
        """Number of column chunks backing the key column."""
        return len(self._chunks)

    @property
    def num_rows(self) -> int:
        """Number of live rows."""
        return sum(chunk.size for chunk in self._chunks)

    @property
    def chunks(self) -> list[ColumnLike]:
        """The key-column chunks (read-only use)."""
        return list(self._chunks)

    def keys(self) -> np.ndarray:
        """Materialize all live keys (unsorted)."""
        pieces = [chunk.values() for chunk in self._chunks]
        return np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def _route(self, key: int) -> int:
        """Chunk index responsible for ``key``."""
        for i, high in enumerate(self._chunk_bounds):
            if key <= high:
                return i
        return len(self._chunks) - 1

    def _route_range(self, low: int, high: int) -> tuple[int, int]:
        first = self._route(low)
        last = self._route(high)
        return first, max(first, last)

    # ------------------------------------------------------------------ #
    # Payload access
    # ------------------------------------------------------------------ #

    def _payload_indices(self, columns: Sequence[str]) -> list[int]:
        try:
            return [self.payload_names.index(name) for name in columns]
        except ValueError as exc:
            raise LayoutError(f"unknown payload column: {exc}") from exc

    def _append_payload(self, values: Sequence[int]) -> int:
        if len(values) != len(self.payload_names):
            raise LayoutError("payload width mismatch")
        if self._next_rowid >= self._payload_capacity:
            extra = max(1024, self._payload_capacity // 2)
            self._payload = np.vstack(
                (
                    self._payload,
                    np.zeros((extra, max(self._payload.shape[1], 0)), dtype=np.int64),
                )
            )
            self._payload_capacity = self._payload.shape[0]
        rowid = self._next_rowid
        if self._payload.shape[1]:
            self._payload[rowid, :] = np.asarray(values, dtype=np.int64)
        self._next_rowid += 1
        return rowid

    # ------------------------------------------------------------------ #
    # HAP-style operations
    # ------------------------------------------------------------------ #

    def point_query(
        self, key: int, columns: Sequence[str] | None = None
    ) -> list[Row]:
        """Q1: return the rows whose key equals ``key`` with payload columns."""
        chunk_index = self._route(int(key))
        chunk = self._chunks[chunk_index]
        columns = list(columns) if columns is not None else list(self.payload_names)
        indices = self._payload_indices(columns)
        rowids = chunk.point_query(int(key), return_rowids=True)
        rowids = np.asarray(rowids, dtype=np.int64)
        if rowids.size and columns:
            self.counter.random_read(int(rowids.size) * len(columns))
        rows: list[Row] = []
        for rowid in rowids:
            rowid = int(rowid)
            payload = {
                name: int(self._payload[rowid, idx])
                for name, idx in zip(columns, indices)
            }
            rows.append(Row(key=int(key), rowid=rowid, payload=payload))
        return rows

    def range_count(self, low: int, high: int) -> int:
        """Q2: ``SELECT count(*) WHERE key BETWEEN low AND high``."""
        first, last = self._route_range(int(low), int(high))
        total = 0
        for chunk_index in range(first, last + 1):
            result = self._chunks[chunk_index].range_query(
                int(low), int(high), materialize=False
            )
            total += result.count
        return total

    def range_sum(
        self, low: int, high: int, columns: Sequence[str] | None = None
    ) -> int:
        """Q3: sum payload attributes over rows whose key is in ``[low, high]``."""
        columns = list(columns) if columns is not None else list(self.payload_names)
        indices = self._payload_indices(columns)
        first, last = self._route_range(int(low), int(high))
        total = 0
        for chunk_index in range(first, last + 1):
            chunk = self._chunks[chunk_index]
            rowids = chunk.range_rowids(int(low), int(high))
            rowids = np.asarray(rowids, dtype=np.int64)
            if rowids.size == 0 or not indices:
                continue
            blocks = blocks_spanned(0, int(rowids.size), self.block_values)
            self.counter.seq_read(blocks * len(indices))
            total += int(self._payload[np.ix_(rowids, indices)].sum())
        return total

    def insert(self, key: int, payload: Sequence[int] | None = None) -> int:
        """Q4: insert a new row; returns its global row id."""
        payload = payload if payload is not None else [0] * len(self.payload_names)
        rowid = self._append_payload(payload)
        chunk_index = self._route(int(key))
        self._chunks[chunk_index].insert(int(key), rowid=rowid)
        return rowid

    def delete(self, key: int) -> int:
        """Q5: delete one row by key; returns the number of deleted rows."""
        chunk_index = self._route(int(key))
        return self._chunks[chunk_index].delete(int(key), limit=1)

    def update_key(self, old_key: int, new_key: int) -> None:
        """Q6: correct a primary-key value (update ``old_key`` -> ``new_key``)."""
        source = self._route(int(old_key))
        target = self._route(int(new_key))
        if source == target:
            self._chunks[source].update(int(old_key), int(new_key))
            return
        chunk = self._chunks[source]
        rowids = chunk.point_query(int(old_key), return_rowids=True)
        rowid = int(rowids[0]) if len(rowids) else None
        if rowid is None:
            raise ValueNotFoundError(f"key {old_key} not found")
        chunk.delete(int(old_key), limit=1)
        self._chunks[target].insert(int(new_key), rowid=rowid)

    def scan(self) -> np.ndarray:
        """Full scan of the key column."""
        pieces = []
        for chunk in self._chunks:
            if hasattr(chunk, "full_scan"):
                pieces.append(chunk.full_scan())
            else:
                pieces.append(chunk.values())
        return np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Validate every chunk."""
        for chunk in self._chunks:
            chunk.check_invariants()


def require_key(rows: list[Row], key: int) -> Row:
    """Return the single row matching ``key`` or raise ``ValueNotFoundError``."""
    if not rows:
        raise ValueNotFoundError(f"key {key} not found")
    return rows[0]
