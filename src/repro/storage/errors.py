"""Exception hierarchy for the storage engine."""

from __future__ import annotations


class StorageError(Exception):
    """Base class for all storage-engine errors."""


class ValueNotFoundError(StorageError):
    """Raised when a delete/update targets a value that is not present."""


class CapacityError(StorageError):
    """Raised when a fixed-capacity structure cannot absorb more data."""


class LayoutError(StorageError):
    """Raised when a column layout specification is invalid."""


class TransactionError(StorageError):
    """Base class for transaction-related failures."""


class TransactionConflictError(TransactionError):
    """Raised when first-committer-wins conflict detection aborts a commit."""


class TransactionStateError(TransactionError):
    """Raised when a transaction is used after commit/abort."""
