"""Delta-store column: the state-of-the-art comparator layout.

Modern analytical systems keep the read-optimized main column sorted and
absorb writes in a global out-of-place buffer (the *delta store*), which is
periodically merged back into the main column (Section 2, "state-of-art" in
Section 7).  This module implements that design on top of
:class:`~repro.storage.column.PartitionedColumn`:

* the main column is fully sorted (one partition per block, dense),
* inserts append to an unsorted delta buffer,
* deletes of main-resident values are recorded as tombstones,
* every read consults both the main column and the whole delta buffer,
* when the delta grows beyond ``merge_threshold`` times the main size the
  whole chunk is rewritten (charged as a sequential read + write of every
  block), which is the recurring reorganization cost the paper attributes to
  delta-store designs.
"""

from __future__ import annotations

import numpy as np

from .column import (
    PartitionedColumn,
    RangeResult,
    equal_width_boundaries,
    expand_ranges,
    sort_batch_with_rowids,
)
from repro.discipline import requires_latch

from .cost_accounting import (
    DEFAULT_BLOCK_VALUES,
    AccessCounter,
    blocks_spanned,
)
from .errors import LayoutError, ValueNotFoundError


class DeltaStoreColumn:
    """Sorted main column plus a global out-of-place delta buffer."""

    def __init__(
        self,
        sorted_values: np.ndarray | list[int],
        *,
        block_values: int = DEFAULT_BLOCK_VALUES,
        merge_threshold: float = 0.05,
        merge_entries: int | None = None,
        counter: AccessCounter | None = None,
        track_rowids: bool = False,
        rowids: np.ndarray | None = None,
    ) -> None:
        values = np.asarray(sorted_values, dtype=np.int64)
        self.block_values = int(block_values)
        self.merge_threshold = float(merge_threshold)
        #: Absolute merge trigger (entries).  When set it overrides the
        #: fractional threshold and models the *continuous integration* of the
        #: delta that state-of-the-art HTAP systems perform so analytical
        #: scans always see (almost) fully merged, sorted data.
        self.merge_entries = int(merge_entries) if merge_entries is not None else None
        self.counter = counter if counter is not None else AccessCounter()
        self._track_rowids = bool(track_rowids)
        self._merges = 0
        if rowids is None:
            rowids = np.arange(values.size, dtype=np.int64)
        else:
            rowids = np.asarray(rowids, dtype=np.int64)
        self._next_rowid = int(rowids.max()) + 1 if rowids.size else 0
        self._build_main(values, rowids)
        self._delta_values: list[int] = []
        self._delta_rowids: list[int] = []
        self._tombstones: dict[int, int] = {}

    def _build_main(self, values: np.ndarray, rowids: np.ndarray) -> None:
        partitions = max(1, blocks_spanned(0, values.size, self.block_values))
        boundaries = (
            equal_width_boundaries(values.size, partitions)
            if values.size
            else None
        )
        self._main = PartitionedColumn(
            values,
            boundaries,
            block_values=self.block_values,
            dense=True,
            track_rowids=self._track_rowids,
            rowids=rowids if self._track_rowids else None,
            counter=self.counter,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of live values (main minus tombstones plus delta)."""
        return self._main.size - sum(self._tombstones.values()) + len(
            self._delta_values
        )

    @property
    def delta_size(self) -> int:
        """Number of values currently buffered in the delta store."""
        return len(self._delta_values)

    @property
    def merges(self) -> int:
        """Number of delta merges performed so far."""
        return self._merges

    @property
    def num_partitions(self) -> int:
        """Number of partitions in the sorted main column."""
        return self._main.num_partitions

    @property
    def memory_amplification(self) -> float:
        """Physical slots divided by live values (delta counts as physical)."""
        live = self.size
        physical = self._main.physical_size + len(self._delta_values)
        return float(physical) / live if live else 1.0

    def _live_main_mask(self, main_values: np.ndarray) -> np.ndarray | None:
        """Keep-mask dropping the first tombstoned occurrences of each value.

        ``values`` and ``rowids`` must suppress the *same* entries or they
        misalign; both derive their mask here.  Returns ``None`` when no
        tombstones exist.
        """
        if not self._tombstones:
            return None
        keep = np.ones(main_values.shape[0], dtype=bool)
        remaining = dict(self._tombstones)
        for i, value in enumerate(main_values):
            count = remaining.get(int(value), 0)
            if count > 0:
                keep[i] = False
                remaining[int(value)] = count - 1
        return keep

    def values(self) -> np.ndarray:
        """Materialize all live values (main minus tombstones, plus delta)."""
        main_values = self._main.values()
        keep = self._live_main_mask(main_values)
        if keep is not None:
            main_values = main_values[keep]
        if not self._delta_values:
            return main_values
        return np.concatenate(
            (main_values, np.asarray(self._delta_values, dtype=np.int64))
        )

    def rowids(self) -> np.ndarray:
        """Live row ids, aligned with :meth:`values`."""
        if not self._track_rowids:
            raise LayoutError("row-id tracking is disabled for this column")
        main_rowids = self._main.rowids()
        keep = self._live_main_mask(self._main.values())
        if keep is not None:
            main_rowids = main_rowids[keep]
        if not self._delta_rowids:
            return main_rowids
        return np.concatenate(
            (main_rowids, np.asarray(self._delta_rowids, dtype=np.int64))
        )

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def _charge_delta_scan(self) -> None:
        self._charge_delta_scans(1)

    @requires_latch("shared")
    def point_query(self, value: int, *, return_rowids: bool = False) -> np.ndarray:
        """Positions/row ids of entries equal to ``value`` in main and delta."""
        value = int(value)
        main_hits = self._main.point_query(value, return_rowids=return_rowids)
        suppressed = self._tombstones.get(value, 0)
        if suppressed:
            main_hits = main_hits[suppressed:]
        self._charge_delta_scan()
        delta_hits = [
            (self._delta_rowids[i] if return_rowids else -(i + 1))
            for i, v in enumerate(self._delta_values)
            if v == value
        ]
        if delta_hits:
            return np.concatenate(
                (main_hits, np.asarray(delta_hits, dtype=np.int64))
            )
        return main_hits

    def _charge_delta_scans(self, scans: int) -> None:
        """Charge ``scans`` independent delta-buffer scans at once."""
        blocks = blocks_spanned(0, len(self._delta_values), self.block_values)
        if blocks > 0 and scans > 0:
            self.counter.random_read(scans)
            if blocks > 1:
                self.counter.seq_read((blocks - 1) * scans)

    @requires_latch("shared")
    def multi_point_query(
        self, values: np.ndarray | list[int], *, return_rowids: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized point queries over main and delta at once.

        Same contract as :meth:`PartitionedColumn.multi_point_query`:
        ``(hits, counts)`` grouped by input value in input order, with main
        hits (first tombstoned occurrences suppressed) preceding delta hits
        per value.  Charged accesses match issuing each point query
        individually.
        """
        values = np.asarray(values, dtype=np.int64)
        m = int(values.size)
        empty = np.empty(0, dtype=np.int64)
        if m == 0:
            return empty, empty
        main_hits, main_counts = self._main.multi_point_query(
            values, return_rowids=return_rowids
        )
        if self._tombstones:
            suppressed = np.asarray(
                [self._tombstones.get(int(value), 0) for value in values],
                dtype=np.int64,
            )
            group_starts = np.cumsum(main_counts) - main_counts
            local = np.arange(main_hits.size, dtype=np.int64) - np.repeat(
                group_starts, main_counts
            )
            keep = local >= np.repeat(suppressed, main_counts)
            main_hits = main_hits[keep]
            main_counts = np.maximum(main_counts - suppressed, 0)
        self._charge_delta_scans(m)
        delta_counts = np.zeros(m, dtype=np.int64)
        delta_hits = empty
        if self._delta_values:
            delta_values = np.asarray(self._delta_values, dtype=np.int64)
            delta_order = np.argsort(delta_values, kind="stable")
            delta_sorted = delta_values[delta_order]
            lo = np.searchsorted(delta_sorted, values, side="left")
            hi = np.searchsorted(delta_sorted, values, side="right")
            delta_counts = (hi - lo).astype(np.int64)
            indices = delta_order[expand_ranges(lo, delta_counts)]
            if return_rowids:
                delta_rowids = np.asarray(self._delta_rowids, dtype=np.int64)
                delta_hits = delta_rowids[indices]
            else:
                delta_hits = -(indices + 1)
        counts = main_counts + delta_counts
        owners = np.concatenate(
            (
                np.repeat(np.arange(m, dtype=np.int64), main_counts),
                np.repeat(np.arange(m, dtype=np.int64), delta_counts),
            )
        )
        hits = np.concatenate((main_hits, delta_hits))
        return hits[np.argsort(owners, kind="stable")], counts

    @requires_latch("shared")
    def multi_range_count(
        self, lows: np.ndarray | list[int], highs: np.ndarray | list[int]
    ) -> np.ndarray:
        """Vectorized range counts over main (minus tombstones) plus delta.

        Charged accesses match issuing each range query individually with
        ``materialize=False``.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        m = int(lows.size)
        if m == 0:
            if lows.shape != highs.shape:
                raise ValueError("lows and highs must be aligned")
            return np.empty(0, dtype=np.int64)
        totals = self._main.multi_range_count(lows, highs)
        if self._tombstones:
            tombstone_values = np.sort(
                np.fromiter(self._tombstones, dtype=np.int64)
            )
            tombstone_counts = np.asarray(
                [self._tombstones[int(v)] for v in tombstone_values],
                dtype=np.int64,
            )
            cumulative = np.concatenate(([0], np.cumsum(tombstone_counts)))
            totals -= (
                cumulative[np.searchsorted(tombstone_values, highs, side="right")]
                - cumulative[np.searchsorted(tombstone_values, lows, side="left")]
            )
        self._charge_delta_scans(m)
        if self._delta_values:
            delta_sorted = np.sort(np.asarray(self._delta_values, dtype=np.int64))
            totals += np.searchsorted(delta_sorted, highs, side="right")
            totals -= np.searchsorted(delta_sorted, lows, side="left")
        return totals

    @requires_latch("shared")
    def range_query(
        self, low: int, high: int, *, materialize: bool = True
    ) -> RangeResult:
        """Count (and optionally materialize) values in ``[low, high]``."""
        result = self._main.range_query(low, high, materialize=materialize)
        total = result.count
        if self._tombstones:
            for value, count in self._tombstones.items():
                if low <= value <= high:
                    total -= count
        self._charge_delta_scan()
        delta_matches = [v for v in self._delta_values if low <= v <= high]
        total += len(delta_matches)
        values = None
        if materialize:
            base = result.values if result.values is not None else np.empty(0)
            values = np.concatenate(
                (np.asarray(base, dtype=np.int64), np.asarray(delta_matches, dtype=np.int64))
            )
        return RangeResult(count=total, positions=None, values=values)

    @requires_latch("shared")
    def range_rowids(self, low: int, high: int) -> np.ndarray:
        """Row ids of entries whose value lies in ``[low, high]``.

        Tombstoned main-resident rows are *not* excluded (tombstones are
        tracked per value, not per row id); the HAP benchmark deletes by
        unique primary key so this does not affect its results.
        """
        if not self._track_rowids:
            raise ValueNotFoundError("row-id tracking is disabled for this column")
        main = self._main.range_query(low, high, materialize=True, return_rowids=True)
        self._charge_delta_scan()
        delta = [
            self._delta_rowids[i]
            for i, v in enumerate(self._delta_values)
            if low <= v <= high
        ]
        base = main.values if main.values is not None else np.empty(0, dtype=np.int64)
        if delta:
            return np.concatenate((base, np.asarray(delta, dtype=np.int64)))
        return np.asarray(base, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    @requires_latch("exclusive")
    def insert(self, value: int, rowid: int | None = None) -> int:
        """Append ``value`` to the delta buffer, merging if it overflows."""
        if rowid is None:
            rowid = self._next_rowid
        self._next_rowid = max(self._next_rowid, rowid + 1)
        self._delta_values.append(int(value))
        self._delta_rowids.append(int(rowid))
        self.counter.random_write(1)
        self._maybe_merge()
        return int(rowid)

    @requires_latch("exclusive")
    def delete(self, value: int, *, limit: int = 1) -> int:
        """Delete up to ``limit`` occurrences of ``value``.

        Victim rule: delta-buffer copies die first (insertion order), then
        main-area copies in scan order via count-based tombstones -- a
        deterministic per-layout rule, but deliberately *not* the
        partitioned column's oldest-copy rule
        (:meth:`~repro.storage.column.PartitionedColumn._oldest_first`):
        the tombstone machinery suppresses occurrences by count, not row
        id.  This layout is the "State-of-art" baseline and is not
        reachable from the sharded path, which pins the oldest-copy rule.
        """
        value = int(value)
        deleted = 0
        # Delete from the delta buffer first (cheapest).
        self._charge_delta_scan()
        i = 0
        while i < len(self._delta_values) and deleted < limit:
            if self._delta_values[i] == value:
                self._delta_values.pop(i)
                self._delta_rowids.pop(i)
                self.counter.random_write(1)
                deleted += 1
            else:
                i += 1
        if deleted < limit:
            hits = self._main.point_query(value)
            available = hits.shape[0] - self._tombstones.get(value, 0)
            take = min(available, limit - deleted)
            if take > 0:
                self._tombstones[value] = self._tombstones.get(value, 0) + take
                self.counter.random_write(1)
                deleted += take
        if deleted == 0:
            raise ValueNotFoundError(f"value {value} not found")
        return deleted

    @requires_latch("exclusive")
    def remove_one(self, value: int) -> int | None:
        """Delete one occurrence of ``value`` and return its row id.

        The victim is removed exactly as :meth:`delete` would remove it (the
        delta copy first, then the first untombstoned main copy) and its row
        id is reported (``None`` when untracked), so callers moving a row
        elsewhere keep global row ids consistent.  Charges match
        ``delete(value, limit=1)``.
        """
        value = int(value)
        self._charge_delta_scan()
        for i, buffered in enumerate(self._delta_values):
            if buffered == value:
                self._delta_values.pop(i)
                rowid = self._delta_rowids.pop(i)
                self.counter.random_write(1)
                return int(rowid)
        hits = self._main.point_query(value, return_rowids=self._track_rowids)
        suppressed = self._tombstones.get(value, 0)
        if hits.shape[0] - suppressed <= 0:
            raise ValueNotFoundError(f"value {value} not found")
        rowid = int(hits[suppressed]) if self._track_rowids else None
        self._tombstones[value] = suppressed + 1
        self.counter.random_write(1)
        return rowid

    @requires_latch("exclusive")
    def update(self, old_value: int, new_value: int) -> None:
        """Update one occurrence of ``old_value``, preserving its row id."""
        rowid = self.remove_one(old_value)
        self.insert(new_value, rowid=rowid)

    # ------------------------------------------------------------------ #
    # Bulk writes
    # ------------------------------------------------------------------ #

    @requires_latch("exclusive")
    def bulk_insert(
        self, values: np.ndarray | list[int], rowids: np.ndarray | None = None
    ) -> np.ndarray:
        """Append a batch to the delta buffer with one merge-threshold check.

        Values are appended in ascending (stable) value order, matching the
        sequential path's processing order for bulk writes, but the merge
        trigger is evaluated once for the whole batch: the batch is ingested
        atomically (the delta-store idiom for batched deltas) and at most one
        reorganization is paid per batch instead of one per crossing insert.
        Note the charge consequence: the single deferred merge folds a
        *larger* delta than sequential's earlier, smaller merge would have,
        so when a batch crosses the threshold mid-run its charges are not
        bounded by the sequential path's -- fewer merges, but each one
        bigger.  Returns the row ids of the inserted values aligned with the
        input order.
        """
        _, sorted_values, sorted_rowids, out = sort_batch_with_rowids(
            values, rowids, self._next_rowid
        )
        m = int(sorted_values.size)
        if m == 0:
            return out
        self._next_rowid = max(self._next_rowid, int(sorted_rowids.max()) + 1)
        self._delta_values.extend(int(v) for v in sorted_values)
        self._delta_rowids.extend(int(r) for r in sorted_rowids)
        self.counter.random_write(m)
        self._maybe_merge()
        return out

    @requires_latch("exclusive")
    def bulk_delete(self, values: np.ndarray | list[int]) -> np.ndarray:
        """Delete one occurrence of each value; absent values report 0.

        Equivalent to calling ``delete(value, limit=1)`` per value in
        ascending (stable) value order -- delta copies are consumed before
        main-resident copies are tombstoned -- with identical charged
        accesses, but the delta buffer and the main column are each scanned
        once for the whole batch.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise LayoutError("values must be one-dimensional")
        m = int(values.size)
        deleted = np.zeros(m, dtype=np.int64)
        if m == 0:
            return deleted
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        deleted_sorted = np.zeros(m, dtype=np.int64)

        # One pass over the delta buffer: per requested value, the indices of
        # its buffered copies in append order.
        delta_indices: dict[int, list[int]] = {}
        if self._delta_values:
            wanted = set(int(v) for v in sorted_values)
            for index, buffered in enumerate(self._delta_values):
                if buffered in wanted:
                    delta_indices.setdefault(buffered, []).append(index)
        popped: set[int] = set()
        needs_main = np.zeros(m, dtype=bool)
        # Each delete scans the delta buffer as it stands at its turn: pops
        # shrink the buffer, so the scan charges shrink exactly as they do on
        # the per-value path.
        buffered_len = len(self._delta_values)
        random_reads = 0
        seq_reads = 0
        for i, value in enumerate(sorted_values.tolist()):
            blocks = blocks_spanned(0, buffered_len, self.block_values)
            if blocks > 0:
                random_reads += 1
                seq_reads += blocks - 1
            queue = delta_indices.get(value)
            if queue:
                popped.add(queue.pop(0))
                buffered_len -= 1
                self.counter.random_write(1)
                deleted_sorted[i] = 1
            else:
                needs_main[i] = True
        if random_reads:
            self.counter.random_read(random_reads)
        if seq_reads:
            self.counter.seq_read(seq_reads)

        if np.any(needs_main):
            main_values = sorted_values[needs_main]
            # One vectorized probe of the main column, charged per value
            # exactly as the per-value path's point queries.
            _, main_counts = self._main.multi_point_query(main_values)
            available = {}
            for value, count in zip(main_values.tolist(), main_counts.tolist(), strict=True):
                if value not in available:
                    available[value] = count - self._tombstones.get(value, 0)
            main_positions = np.nonzero(needs_main)[0]
            for i, value in zip(main_positions.tolist(), main_values.tolist(), strict=True):
                if available[value] > 0:
                    available[value] -= 1
                    self._tombstones[value] = self._tombstones.get(value, 0) + 1
                    self.counter.random_write(1)
                    deleted_sorted[i] = 1

        if popped:
            self._delta_values = [
                v for i, v in enumerate(self._delta_values) if i not in popped
            ]
            self._delta_rowids = [
                r for i, r in enumerate(self._delta_rowids) if i not in popped
            ]
        deleted[order] = deleted_sorted
        return deleted

    # ------------------------------------------------------------------ #
    # Merge
    # ------------------------------------------------------------------ #

    def _maybe_merge(self) -> None:
        if self.merge_entries is not None:
            threshold = max(1, self.merge_entries)
        else:
            threshold = max(1, int(self.merge_threshold * max(self._main.size, 1)))
        if len(self._delta_values) >= threshold:
            self.merge()

    def merge(self) -> None:
        """Fold the delta buffer and tombstones back into the sorted main."""
        merged = self.values()
        if self._track_rowids:
            main_rowids = self._main.rowids()
            main_values = self._main.values()
            pairs = list(zip(main_values.tolist(), main_rowids.tolist(), strict=True))
            remaining = dict(self._tombstones)
            kept = []
            for value, rid in pairs:
                count = remaining.get(value, 0)
                if count > 0:
                    remaining[value] = count - 1
                    continue
                kept.append((value, rid))
            kept.extend(zip(self._delta_values, self._delta_rowids, strict=True))
            kept.sort(key=lambda pair: pair[0])
            merged = np.asarray([pair[0] for pair in kept], dtype=np.int64)
            rowids = np.asarray([pair[1] for pair in kept], dtype=np.int64)
        else:
            merged = np.sort(merged)
            rowids = np.arange(merged.size, dtype=np.int64)
        blocks = blocks_spanned(0, merged.size, self.block_values)
        self.counter.seq_read(blocks)
        self.counter.seq_write(blocks)
        self._build_main(merged, rowids)
        self._delta_values = []
        self._delta_rowids = []
        self._tombstones = {}
        self._merges += 1

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Validate the main column and tombstone bookkeeping."""
        self._main.check_invariants()
        for value, count in self._tombstones.items():
            assert count > 0, "tombstone with non-positive count"
            hits = self._main.point_query(value)
            assert hits.shape[0] >= count, "tombstone exceeds main occurrences"
