"""Helpers for distributing ghost values (empty slots) across partitions.

Ghost values (Section 2 and Section 4.6) are empty slots interspersed at the
tail of partitions.  They let deletes simply leave a hole behind and let
inserts/updates land without rippling, trading memory amplification for
update performance.

This module contains allocation-shape helpers shared by the storage layouts
and by the optimizer's ghost allocator (:mod:`repro.core.ghost_allocation`).
"""

from __future__ import annotations

import numpy as np


def spread_evenly(total: int, partitions: int) -> np.ndarray:
    """Distribute ``total`` ghost slots as evenly as possible.

    The first ``total % partitions`` partitions receive one extra slot, which
    is how the Equi-GV baseline in the paper allocates its buffer space.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    base, remainder = divmod(total, partitions)
    allocation = np.full(partitions, base, dtype=np.int64)
    allocation[:remainder] += 1
    return allocation


def spread_proportionally(weights: np.ndarray | list[float], total: int) -> np.ndarray:
    """Distribute ``total`` slots proportionally to non-negative ``weights``.

    Implements the largest-remainder rounding of Eq. 18: each partition gets
    ``floor(weight / sum * total)`` slots and the leftover slots go to the
    partitions with the largest fractional remainders.  If every weight is
    zero the slots are spread evenly instead.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if total < 0:
        raise ValueError("total must be non-negative")
    weight_sum = float(weights.sum())
    if weight_sum == 0.0:
        return spread_evenly(total, weights.size)
    raw = weights / weight_sum * total
    allocation = np.floor(raw).astype(np.int64)
    leftover = int(total - allocation.sum())
    if leftover > 0:
        remainders = raw - allocation
        winners = np.argsort(-remainders, kind="stable")[:leftover]
        allocation[winners] += 1
    return allocation


def ghost_budget_from_fraction(data_size: int, fraction: float) -> int:
    """Total ghost slots for a chunk of ``data_size`` values.

    ``fraction`` is the memory-amplification knob from the paper's
    experiments (e.g. 0.001 for 0.1% ghost values in Fig. 12, 0.0001 to 0.1
    for the sweep in Fig. 14).
    """
    if fraction < 0:
        raise ValueError("fraction must be non-negative")
    return int(round(data_size * fraction))
