"""Chunk-granular latches: shared reads, exclusive writes and publishes.

One :class:`RWLatch` guards one column chunk.  Readers share the latch (any
number of concurrent read operations may probe a chunk), writers and
copy-on-write publishes take it exclusively -- so two sessions writing the
*same* chunk serialize, while writes to different chunks, and reads
anywhere, proceed in parallel.

The latch is writer-preferring: once a writer is waiting, new readers queue
behind it.  Chunk writes and publish swaps are short (a ripple, or an O(1)
reference swap -- the expensive rebuild work happens *off* the latch, see
:meth:`repro.storage.table.Table.publish_chunk`), so briefly pausing the
read stream is cheap and keeps a steady read load from starving background
reorganization out of ever landing its replans.

Latches are intentionally *not* reentrant and never held across calls into
other latches except in ascending chunk order (:meth:`ChunkLatches.
acquire_write_many`), which is what makes the locking deadlock-free:

* read operations hold at most one chunk's shared latch at a time;
* single-chunk writes hold exactly one exclusive latch;
* multi-chunk writes (cross-chunk key updates) acquire their exclusive
  latches in ascending chunk order;
* a publish holds one exclusive latch plus the table's structure lock,
  which is only ever acquired *inside* an exclusive chunk latch.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from repro import discipline


class RWLatch:
    """A writer-preferring readers-writer latch.

    ``acquire_read``/``release_read`` bracket shared critical sections;
    ``acquire_write``/``release_write`` bracket exclusive ones.  Writers
    waiting block new readers, so a continuous read stream cannot starve a
    publish.  Not reentrant in either mode.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_waiting_writers")

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    def acquire_read(self) -> None:
        """Enter a shared section (blocks while a writer holds or waits)."""
        with self._cond:
            while self._writer or self._waiting_writers:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave a shared section."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Enter the exclusive section (blocks until sole holder)."""
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        """Leave the exclusive section."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    def __enter__(self) -> "RWLatch":
        self.acquire_write()
        return self

    def __exit__(self, *exc) -> None:
        self.release_write()


class _LatchScope:
    """Context manager bracketing one chunk latch (shared or exclusive)."""

    __slots__ = ("_latches", "_chunk_index", "_exclusive")

    def __init__(
        self, latches: "ChunkLatches", chunk_index: int, exclusive: bool
    ) -> None:
        self._latches = latches
        self._chunk_index = chunk_index
        self._exclusive = exclusive

    def __enter__(self) -> int:
        if self._exclusive:
            self._latches.acquire_write(self._chunk_index)
        else:
            self._latches.acquire_read(self._chunk_index)
        return self._chunk_index

    def __exit__(self, *exc) -> None:
        if self._exclusive:
            self._latches.release_write(self._chunk_index)
        else:
            self._latches.release_read(self._chunk_index)


class ChunkLatches:
    """One :class:`RWLatch` per column chunk of a table.

    The table's operations bracket each chunk visit with
    :meth:`acquire_read`/:meth:`release_read` (shared) or
    :meth:`acquire_write`/:meth:`release_write` (exclusive); cross-chunk
    writes take :meth:`acquire_write_many`, which sorts the chunk set so
    every multi-latch acquisition follows the same ascending order.

    The per-chunk latch list is exposed (:meth:`latch`) so tests can swap a
    latch for an instrumented subclass and drive controlled interleavings
    at the latch boundaries -- the yield points of the concurrency model.

    Constructing with ``debug=True`` (default: the ``REPRO_DEBUG_LATCHES``
    flag, see :mod:`repro.discipline`) returns a :class:`DebugChunkLatches`
    that feeds every acquire/release into the discipline layer's per-thread
    held-set, order checks and lock-order graph.  Tracking lives at this
    level -- not inside :class:`RWLatch` -- so latches swapped in via
    :meth:`replace` stay tracked.
    """

    __slots__ = ("_latches",)

    def __new__(cls, count: int, debug: "bool | None" = None):
        if cls is ChunkLatches:
            if debug if debug is not None else discipline.debug_enabled():
                return super().__new__(DebugChunkLatches)
        return super().__new__(cls)

    def __init__(self, count: int, debug: "bool | None" = None) -> None:
        self._latches = [RWLatch() for _ in range(count)]

    def __len__(self) -> int:
        return len(self._latches)

    def latch(self, chunk_index: int) -> RWLatch:
        """The latch guarding one chunk (tests may replace it)."""
        return self._latches[chunk_index]

    def replace(self, chunk_index: int, latch: RWLatch) -> None:
        """Swap in an instrumented latch (test hook)."""
        self._latches[chunk_index] = latch

    def acquire_read(self, chunk_index: int) -> None:
        self._latches[chunk_index].acquire_read()

    def release_read(self, chunk_index: int) -> None:
        self._latches[chunk_index].release_read()

    def acquire_write(self, chunk_index: int) -> None:
        self._latches[chunk_index].acquire_write()

    def release_write(self, chunk_index: int) -> None:
        self._latches[chunk_index].release_write()

    def acquire_write_many(self, chunk_indices: Iterable[int]) -> Sequence[int]:
        """Exclusively latch several chunks in ascending order.

        Returns the acquired (deduplicated, sorted) chunk list; pass it to
        :meth:`release_write_many` in a ``finally`` block.
        """
        acquired = sorted(set(int(i) for i in chunk_indices))
        for chunk_index in acquired:
            self._latches[chunk_index].acquire_write()
        return acquired

    def release_write_many(self, chunk_indices: Sequence[int]) -> None:
        """Release latches taken by :meth:`acquire_write_many`."""
        for chunk_index in reversed(chunk_indices):
            self._latches[chunk_index].release_write()

    def shared(self, chunk_index: int) -> _LatchScope:
        """``with latches.shared(i):`` -- a bracketed shared section."""
        return _LatchScope(self, chunk_index, exclusive=False)

    def exclusive(self, chunk_index: int) -> _LatchScope:
        """``with latches.exclusive(i):`` -- a bracketed exclusive section."""
        return _LatchScope(self, chunk_index, exclusive=True)


class DebugChunkLatches(ChunkLatches):
    """Discipline-tracked :class:`ChunkLatches` (``REPRO_DEBUG_LATCHES``).

    Every acquisition runs the lock-order checks *before* blocking (a
    potential deadlock is reported even if the acquire would actually
    deadlock) and lands in the calling thread's held-set on success, which
    is what powers ``@requires_latch`` assertions, :meth:`assert_latched`
    and the Eraser-lite guarded-state pass.
    """

    __slots__ = ()

    def _key(self, chunk_index: int) -> tuple[str, int, int]:
        return ("latch", id(self), chunk_index)

    def acquire_read(self, chunk_index: int) -> None:
        discipline.note_latch_request(
            self._key(chunk_index), "shared", group=id(self), index=chunk_index
        )
        self._latches[chunk_index].acquire_read()
        discipline.note_latch_acquired(
            self._key(chunk_index), "shared", group=id(self), index=chunk_index
        )

    def release_read(self, chunk_index: int) -> None:
        self._latches[chunk_index].release_read()
        discipline.note_latch_released(self._key(chunk_index))

    def acquire_write(self, chunk_index: int) -> None:
        discipline.note_latch_request(
            self._key(chunk_index),
            "exclusive",
            group=id(self),
            index=chunk_index,
        )
        self._latches[chunk_index].acquire_write()
        discipline.note_latch_acquired(
            self._key(chunk_index),
            "exclusive",
            group=id(self),
            index=chunk_index,
        )

    def release_write(self, chunk_index: int) -> None:
        self._latches[chunk_index].release_write()
        discipline.note_latch_released(self._key(chunk_index))

    def acquire_write_many(self, chunk_indices: Iterable[int]) -> Sequence[int]:
        """Tracked multi-acquire (routes through :meth:`acquire_write`)."""
        acquired = sorted(set(int(i) for i in chunk_indices))
        for chunk_index in acquired:
            self.acquire_write(chunk_index)
        return acquired

    def release_write_many(self, chunk_indices: Sequence[int]) -> None:
        for chunk_index in reversed(chunk_indices):
            self.release_write(chunk_index)

    def assert_latched(self, chunk_index: int, mode: str) -> None:
        """Raise unless the calling thread holds this chunk's latch."""
        discipline.assert_held(self._key(chunk_index), mode)
