"""Chunk-granular latches: shared reads, exclusive writes and publishes.

One :class:`RWLatch` guards one column chunk.  Readers share the latch (any
number of concurrent read operations may probe a chunk), writers and
copy-on-write publishes take it exclusively -- so two sessions writing the
*same* chunk serialize, while writes to different chunks, and reads
anywhere, proceed in parallel.

The latch is writer-preferring: once a writer is waiting, new readers queue
behind it.  Chunk writes and publish swaps are short (a ripple, or an O(1)
reference swap -- the expensive rebuild work happens *off* the latch, see
:meth:`repro.storage.table.Table.publish_chunk`), so briefly pausing the
read stream is cheap and keeps a steady read load from starving background
reorganization out of ever landing its replans.

Latches are intentionally *not* reentrant and never held across calls into
other latches except in ascending chunk order (:meth:`ChunkLatches.
acquire_write_many`), which is what makes the locking deadlock-free:

* read operations hold at most one chunk's shared latch at a time;
* single-chunk writes hold exactly one exclusive latch;
* multi-chunk writes (cross-chunk key updates) acquire their exclusive
  latches in ascending chunk order;
* a publish holds one exclusive latch plus the table's structure lock,
  which is only ever acquired *inside* an exclusive chunk latch.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence


class RWLatch:
    """A writer-preferring readers-writer latch.

    ``acquire_read``/``release_read`` bracket shared critical sections;
    ``acquire_write``/``release_write`` bracket exclusive ones.  Writers
    waiting block new readers, so a continuous read stream cannot starve a
    publish.  Not reentrant in either mode.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_waiting_writers")

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    def acquire_read(self) -> None:
        """Enter a shared section (blocks while a writer holds or waits)."""
        with self._cond:
            while self._writer or self._waiting_writers:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave a shared section."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Enter the exclusive section (blocks until sole holder)."""
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        """Leave the exclusive section."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    def __enter__(self) -> "RWLatch":
        self.acquire_write()
        return self

    def __exit__(self, *exc) -> None:
        self.release_write()


class ChunkLatches:
    """One :class:`RWLatch` per column chunk of a table.

    The table's operations bracket each chunk visit with
    :meth:`acquire_read`/:meth:`release_read` (shared) or
    :meth:`acquire_write`/:meth:`release_write` (exclusive); cross-chunk
    writes take :meth:`acquire_write_many`, which sorts the chunk set so
    every multi-latch acquisition follows the same ascending order.

    The per-chunk latch list is exposed (:meth:`latch`) so tests can swap a
    latch for an instrumented subclass and drive controlled interleavings
    at the latch boundaries -- the yield points of the concurrency model.
    """

    __slots__ = ("_latches",)

    def __init__(self, count: int) -> None:
        self._latches = [RWLatch() for _ in range(count)]

    def __len__(self) -> int:
        return len(self._latches)

    def latch(self, chunk_index: int) -> RWLatch:
        """The latch guarding one chunk (tests may replace it)."""
        return self._latches[chunk_index]

    def replace(self, chunk_index: int, latch: RWLatch) -> None:
        """Swap in an instrumented latch (test hook)."""
        self._latches[chunk_index] = latch

    def acquire_read(self, chunk_index: int) -> None:
        self._latches[chunk_index].acquire_read()

    def release_read(self, chunk_index: int) -> None:
        self._latches[chunk_index].release_read()

    def acquire_write(self, chunk_index: int) -> None:
        self._latches[chunk_index].acquire_write()

    def release_write(self, chunk_index: int) -> None:
        self._latches[chunk_index].release_write()

    def acquire_write_many(self, chunk_indices: Iterable[int]) -> Sequence[int]:
        """Exclusively latch several chunks in ascending order.

        Returns the acquired (deduplicated, sorted) chunk list; pass it to
        :meth:`release_write_many` in a ``finally`` block.
        """
        acquired = sorted(set(int(i) for i in chunk_indices))
        for chunk_index in acquired:
            self._latches[chunk_index].acquire_write()
        return acquired

    def release_write_many(self, chunk_indices: Sequence[int]) -> None:
        """Release latches taken by :meth:`acquire_write_many`."""
        for chunk_index in reversed(chunk_indices):
            self._latches[chunk_index].release_write()
