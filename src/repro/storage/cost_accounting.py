"""Block-access cost accounting.

The paper's evaluation runs on a C++ engine whose scan speed depends on
SIMD-friendly tight loops.  In this reproduction the primary performance
metric is a *block access model*: every storage operation charges a counter
with the number of random/sequential block reads and writes it performs, and
the simulated latency of the operation is the dot product of those counters
with per-access-type cost constants (Section 4.4/4.5 of the paper).

The constants are fitted per deployment (Section 4.5).  The paper reports a
random access latency of 100ns and sequentially amortized accesses that are
14x cheaper *per cache line*; the ``RR``/``RW`` constants therefore model the
cost of jumping to (and touching one value in) a random location, while the
``SR``/``SW`` constants model the cost of consuming one whole block's worth
of data sequentially (``block_bytes / cache_line_bytes`` amortized line
reads).  With the default 16KB blocks that makes a sequential block read
~1.83us and a random touch 100ns, which reproduces the relative magnitudes of
the paper's measurements (partition scans proportional to partition size,
ripple steps ~0.2us per partition, delta merges ~1ms per 1M-value chunk).
``repro.bench.microbench`` can re-fit the constants on the host machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Default block size in bytes (the paper's experiments use 16KB blocks).
DEFAULT_BLOCK_BYTES = 16 * 1024

#: Default width of a column value in bytes (4-byte attributes in HAP).
DEFAULT_VALUE_BYTES = 4

#: Default number of values per block.
DEFAULT_BLOCK_VALUES = DEFAULT_BLOCK_BYTES // DEFAULT_VALUE_BYTES

#: Cache-line size used to derive sequential block-scan costs.
CACHE_LINE_BYTES = 64

#: Random access (cache miss) latency in nanoseconds (Section 4.5).
RANDOM_ACCESS_NS = 100.0

#: Sequential per-cache-line cost: amortized to be 14x cheaper (Section 4.5).
SEQUENTIAL_LINE_NS = RANDOM_ACCESS_NS / 14.0


@dataclass(frozen=True)
class CostConstants:
    """Latency constants (in nanoseconds) for the four basic access patterns.

    Attributes
    ----------
    random_read:
        Cost of a random read access touching one location (``RR``).
    random_write:
        Cost of a random write access touching one location (``RW``).
    seq_read:
        Cost of sequentially consuming one block of data (``SR``).
    seq_write:
        Cost of sequentially writing one block of data (``SW``).
    index_probe:
        Fixed cost of probing the shallow partition index.  The paper reports
        a cumulative 8.5us per operation that is shared by all operations and
        does not influence the partitioning decision; we keep it configurable
        and exclude it from the optimizer's objective, as the paper does.
    """

    random_read: float = RANDOM_ACCESS_NS
    random_write: float = RANDOM_ACCESS_NS
    seq_read: float = SEQUENTIAL_LINE_NS * (DEFAULT_BLOCK_BYTES / CACHE_LINE_BYTES)
    seq_write: float = SEQUENTIAL_LINE_NS * (DEFAULT_BLOCK_BYTES / CACHE_LINE_BYTES)
    index_probe: float = 0.0

    @classmethod
    def for_block(
        cls,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        *,
        random_ns: float = RANDOM_ACCESS_NS,
        seq_line_ns: float = SEQUENTIAL_LINE_NS,
        cache_line_bytes: int = CACHE_LINE_BYTES,
        index_probe: float = 0.0,
    ) -> "CostConstants":
        """Derive block-granularity constants from cache-line constants."""
        lines = max(1, block_bytes // cache_line_bytes)
        return cls(
            random_read=random_ns,
            random_write=random_ns,
            seq_read=seq_line_ns * lines,
            seq_write=seq_line_ns * lines,
            index_probe=index_probe,
        )

    def scaled(self, factor: float) -> "CostConstants":
        """Return a copy with every constant multiplied by ``factor``."""
        return CostConstants(
            random_read=self.random_read * factor,
            random_write=self.random_write * factor,
            seq_read=self.seq_read * factor,
            seq_write=self.seq_write * factor,
            index_probe=self.index_probe * factor,
        )


#: Constants used throughout the test-suite and the benchmark defaults.
DEFAULT_COST_CONSTANTS = CostConstants()


def constants_for_block_values(
    block_values: int, value_bytes: int = DEFAULT_VALUE_BYTES
) -> CostConstants:
    """Cost constants for blocks holding ``block_values`` values."""
    return CostConstants.for_block(block_values * value_bytes)


@dataclass
class AccessCounter:
    """Mutable tally of block accesses performed by a storage component.

    The counter is deliberately tiny: four integers plus the number of index
    probes.  Engines hold one counter and expose it so that the benchmark
    harness can snapshot/diff it around each operation.

    Concurrency note: increments are deliberately lock-free.  Charges land
    on the storage hot path (per partition touched, per ripple step), so a
    mutex here would tax exactly the work the cost model simulates; under
    concurrent sessions a racing read-modify-write can therefore drop an
    increment.  Simulated totals are a *model metric*, exact when one
    thread drives the engine and statistically faithful (sub-percent
    undercount at worst) under contention -- results and wall-clock
    measurements are never affected.  Callers needing exact concurrent
    attribution should diff the counter around a quiesced phase.
    """

    random_reads: int = 0
    random_writes: int = 0
    seq_reads: int = 0
    seq_writes: int = 0
    index_probes: int = 0

    def random_read(self, blocks: int = 1) -> None:
        """Charge ``blocks`` random block reads."""
        self.random_reads += blocks

    def random_write(self, blocks: int = 1) -> None:
        """Charge ``blocks`` random block writes."""
        self.random_writes += blocks

    def seq_read(self, blocks: int = 1) -> None:
        """Charge ``blocks`` sequential block reads."""
        self.seq_reads += blocks

    def seq_write(self, blocks: int = 1) -> None:
        """Charge ``blocks`` sequential block writes."""
        self.seq_writes += blocks

    def index_probe(self, probes: int = 1) -> None:
        """Charge ``probes`` partition-index probes."""
        self.index_probes += probes

    def reset(self) -> None:
        """Zero every counter."""
        self.random_reads = 0
        self.random_writes = 0
        self.seq_reads = 0
        self.seq_writes = 0
        self.index_probes = 0

    def snapshot(self) -> "AccessCounter":
        """Return an immutable-by-convention copy of the current counts."""
        return AccessCounter(
            random_reads=self.random_reads,
            random_writes=self.random_writes,
            seq_reads=self.seq_reads,
            seq_writes=self.seq_writes,
            index_probes=self.index_probes,
        )

    def diff(self, earlier: "AccessCounter") -> "AccessCounter":
        """Return the accesses performed since ``earlier`` was snapshotted."""
        return AccessCounter(
            random_reads=self.random_reads - earlier.random_reads,
            random_writes=self.random_writes - earlier.random_writes,
            seq_reads=self.seq_reads - earlier.seq_reads,
            seq_writes=self.seq_writes - earlier.seq_writes,
            index_probes=self.index_probes - earlier.index_probes,
        )

    def merge(self, other: "AccessCounter") -> None:
        """Add ``other``'s counts into this counter."""
        self.random_reads += other.random_reads
        self.random_writes += other.random_writes
        self.seq_reads += other.seq_reads
        self.seq_writes += other.seq_writes
        self.index_probes += other.index_probes

    @property
    def total_blocks(self) -> int:
        """Total number of block accesses of any kind."""
        return (
            self.random_reads + self.random_writes + self.seq_reads + self.seq_writes
        )

    def cost(self, constants: CostConstants = DEFAULT_COST_CONSTANTS) -> float:
        """Simulated latency in nanoseconds under ``constants``."""
        return (
            self.random_reads * constants.random_read
            + self.random_writes * constants.random_write
            + self.seq_reads * constants.seq_read
            + self.seq_writes * constants.seq_write
            + self.index_probes * constants.index_probe
        )

    def __add__(self, other: "AccessCounter") -> "AccessCounter":
        result = self.snapshot()
        result.merge(other)
        return result


class SimulatedCost:
    """Mixin for outcome records that carry an :class:`AccessCounter`.

    Any class with an ``accesses`` attribute gains ``simulated_ns``: the
    simulated latency of the tallied block accesses under a set of cost
    constants.  This is the single definition shared by the engine's
    per-operation, per-batch and per-session outcome types.
    """

    accesses: AccessCounter

    def simulated_ns(
        self, constants: CostConstants = DEFAULT_COST_CONSTANTS
    ) -> float:
        """Simulated latency in nanoseconds under ``constants``."""
        return self.accesses.cost(constants)


@dataclass
class OperationCost(SimulatedCost):
    """Cost of a single logical operation: accesses plus wall-clock time."""

    accesses: AccessCounter = field(default_factory=AccessCounter)
    wall_ns: float = 0.0


def blocks_spanned(start: int, length: int, block_values: int) -> int:
    """Number of blocks touched by ``length`` values beginning at ``start``.

    ``start`` and ``length`` are expressed in values; ``block_values`` is the
    number of values per block.  A zero-length span touches zero blocks.
    """
    if length <= 0:
        return 0
    first_block = start // block_values
    last_block = (start + length - 1) // block_values
    return last_block - first_block + 1
