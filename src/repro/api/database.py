"""The :class:`Database` façade: declarative stack construction.

Where the lower layers expose planner, table, engine and monitor as
separate components the caller wires by hand, :class:`Database` builds the
whole stack from a declaration of *what* to store and *which* workload to
tune for:

* :meth:`Database.from_rows` loads rows under one of the fixed layout
  modes (sorted, equi-width, delta store, ...);
* :meth:`Database.plan_for` runs the paper's offline pipeline -- learn the
  Frequency Model from a workload sample, optimize per-chunk layouts,
  allocate ghost values -- and keeps the planner attached so sessions can
  replan drifted chunks online;
* :meth:`Database.session` opens the execution surface: a context-managed
  :class:`~repro.api.session.Session` with pluggable execution and
  reorganization policies.

The engine (with its workload monitor) stays reachable through
``db.engine`` as the compatibility layer for pre-façade code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.constraints import SLAConstraints
from ..core.monitor import WorkloadMonitor
from ..core.optimizer import SolverBackend
from ..core.planner import CasperPlanner
from ..storage.cost_accounting import (
    DEFAULT_BLOCK_VALUES,
    CostConstants,
    constants_for_block_values,
)
from ..storage.engine import EngineStatistics, StorageEngine
from ..storage.layouts import LayoutKind, LayoutSpec
from ..storage.table import Table, layout_chunk_builder
from ..workload.operations import Workload
from .policies import ExecutionPolicy
from .reorg import ReorgPolicy
from .reorganizer import Reorganizer
from .session import Session


class Database:
    """Declarative façade over the planner/table/engine/monitor stack.

    Most callers construct one through :meth:`from_rows` or
    :meth:`plan_for`; the constructor itself wraps an existing
    :class:`Table` (attaching a fresh engine and workload monitor), which is
    the migration path for code that already builds tables directly.
    """

    def __init__(
        self,
        table: Table,
        *,
        constants: CostConstants | None = None,
        planner: CasperPlanner | None = None,
        monitor: WorkloadMonitor | bool | None = None,
        enable_transactions: bool = False,
    ) -> None:
        self.table = table
        self.constants = (
            constants
            if constants is not None
            else constants_for_block_values(table.block_values)
        )
        self.planner = planner
        # Monitoring costs a per-operation attribution on the hot path and
        # only pays off where a planner can act on it, so by default it is
        # attached exactly when a planner is (pass ``True``/an instance to
        # force it on, ``False`` to force it off).
        if monitor is None:
            monitor = planner is not None
        if monitor is True:
            monitor = WorkloadMonitor()
        elif monitor is False:
            monitor = None
        self.monitor = monitor
        self.engine = StorageEngine(
            table,
            constants=self.constants,
            enable_transactions=enable_transactions,
            monitor=self.monitor,
        )

    # ------------------------------------------------------------------ #
    # Declarative constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(
        cls,
        keys: np.ndarray | Sequence[int],
        payload: np.ndarray | None = None,
        *,
        layout: LayoutKind | LayoutSpec = LayoutKind.SORTED,
        chunk_size: int = 1_000_000,
        block_values: int = DEFAULT_BLOCK_VALUES,
        partitions: int = 64,
        ghost_fraction: float = 0.01,
        merge_threshold: float = 0.01,
        merge_entries: int | None = 16,
        payload_names: Sequence[str] | None = None,
        constants: CostConstants | None = None,
        monitor: WorkloadMonitor | bool | None = None,
        enable_transactions: bool = False,
    ) -> "Database":
        """Load rows under a fixed layout mode.

        ``layout`` is either a :class:`LayoutKind` (with the partitioning
        knobs passed alongside) or a fully-specified :class:`LayoutSpec`.
        The Casper mode needs a workload sample to tune for -- use
        :meth:`plan_for` instead.  No workload monitor is attached unless
        requested (``monitor=True``): without a planner there is nothing to
        replan, so per-operation attribution would be pure overhead.
        """
        if isinstance(layout, LayoutSpec):
            spec = layout
            # The spec's block size governs the physical layout; the table
            # and the cost constants must price the same block size.
            block_values = spec.block_values
        else:
            if layout is LayoutKind.CASPER:
                raise ValueError(
                    "the Casper layout is workload-driven; "
                    "use Database.plan_for(workload, keys, ...)"
                )
            spec = LayoutSpec(
                kind=layout,
                partitions=partitions,
                ghost_fraction=ghost_fraction,
                merge_threshold=merge_threshold,
                merge_entries=merge_entries,
                block_values=block_values,
            )
        table = Table(
            keys,
            payload,
            chunk_size=chunk_size,
            chunk_builder=layout_chunk_builder(spec),
            payload_names=payload_names,
            block_values=block_values,
        )
        return cls(
            table,
            constants=constants,
            monitor=monitor,
            enable_transactions=enable_transactions,
        )

    @classmethod
    def plan_for(
        cls,
        workload: Workload,
        keys: np.ndarray | Sequence[int],
        payload: np.ndarray | None = None,
        *,
        chunk_size: int = 1_000_000,
        block_values: int = DEFAULT_BLOCK_VALUES,
        ghost_fraction: float = 0.001,
        sla: SLAConstraints | None = None,
        solver: SolverBackend | str = SolverBackend.DP,
        payload_names: Sequence[str] | None = None,
        constants: CostConstants | None = None,
        monitor: WorkloadMonitor | bool | None = None,
        enable_transactions: bool = False,
    ) -> "Database":
        """Build a Casper-planned database tuned for ``workload``.

        Runs the offline pipeline of Fig. 10 (A-C): the planner learns the
        Frequency Model from the sample, solves every chunk's layout and
        allocates ghost values while the table loads.  The planner stays
        attached, so sessions opened with a
        :class:`~repro.api.reorg.ReorgPolicy` can replan drifted chunks
        online against their observed mixes.  A workload monitor is
        attached by default (the reorg lifecycle needs it); pass
        ``monitor=False`` when no session will ever replan and the per-op
        attribution overhead is unwanted.
        """
        constants = (
            constants
            if constants is not None
            else constants_for_block_values(block_values)
        )
        planner = CasperPlanner(
            sample_workload=workload,
            block_values=block_values,
            ghost_fraction=ghost_fraction,
            constants=constants,
            sla=sla,
            solver=solver,
        )
        table = Table(
            keys,
            payload,
            chunk_size=chunk_size,
            chunk_builder=planner.build_chunk,
            payload_names=payload_names,
            block_values=block_values,
        )
        return cls(
            table,
            constants=constants,
            planner=planner,
            monitor=monitor,
            enable_transactions=enable_transactions,
        )

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #

    def session(
        self,
        *,
        execution: ExecutionPolicy | None = None,
        reorg: ReorgPolicy | Reorganizer | None = None,
    ) -> Session:
        """Open a :class:`Session` with the given policies.

        ``execution`` defaults to serial dispatch; pass
        :class:`~repro.api.policies.VectorizedPolicy` or
        :class:`~repro.api.policies.AdaptivePolicy` for the batched fast
        paths.  ``reorg`` enables the automatic reorganization lifecycle:
        a bare :class:`~repro.api.reorg.ReorgPolicy` replans inline, a
        :class:`~repro.api.reorganizer.Reorganizer` drains the same
        replans incrementally (budgeted slices between execute calls, or a
        background worker thread).

        Multiple live sessions may be open at once -- one per thread --
        over this one database; their executions interleave under the
        table's chunk-granular latches (see :mod:`repro.storage.table`).
        Give each session its *own* execution-policy instance (policies
        carry adaptive state); a single :class:`Reorganizer` (and the
        :class:`ReorgPolicy` inside it) is safe to share across the
        database's sessions, and its background worker keeps running until
        the last sharing session closes.
        """
        return Session(self, execution=execution, reorg=reorg)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        """Number of live rows."""
        return self.table.num_rows

    @property
    def num_chunks(self) -> int:
        """Number of column chunks backing the key column."""
        return self.table.num_chunks

    @property
    def statistics(self) -> EngineStatistics:
        """The engine's running per-operation-kind statistics."""
        return self.engine.statistics

    def check_invariants(self) -> None:
        """Validate the underlying table's structural invariants."""
        self.table.check_invariants()
