"""The :class:`Database` façade: declarative stack construction.

Where the lower layers expose planner, table, engine and monitor as
separate components the caller wires by hand, :class:`Database` builds the
whole stack from a declaration of *what* to store and *which* workload to
tune for:

* :meth:`Database.from_rows` loads rows under one of the fixed layout
  modes (sorted, equi-width, delta store, ...);
* :meth:`Database.plan_for` runs the paper's offline pipeline -- learn the
  Frequency Model from a workload sample, optimize per-chunk layouts,
  allocate ghost values -- and keeps the planner attached so sessions can
  replan drifted chunks online;
* :meth:`Database.session` opens the execution surface: a context-managed
  :class:`~repro.api.session.Session` with pluggable execution and
  reorganization policies;
* the durability surface: pass ``durability=`` (a log-directory path or a
  :class:`~repro.durability.manager.DurabilityConfig`) to
  :meth:`from_rows` / :meth:`plan_for` to write-ahead-log every write and
  take a baseline snapshot, then :meth:`Database.open` recovers the stored
  state (latest snapshot + WAL replay), :meth:`checkpoint` takes a new
  snapshot and rotates the log, and :meth:`close` fsyncs the tail and
  releases the log.

The engine (with its workload monitor) stays reachable through
``db.engine`` as the compatibility layer for pre-façade code.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from ..core.constraints import SLAConstraints
from ..core.monitor import WorkloadMonitor
from ..core.optimizer import SolverBackend
from ..core.planner import CasperPlanner
from ..durability.manager import DurabilityConfig, DurabilityManager
from ..durability.recovery import recover, spec_to_meta
from ..storage.cost_accounting import (
    DEFAULT_BLOCK_VALUES,
    CostConstants,
    constants_for_block_values,
)
from ..storage.engine import EngineStatistics, StorageEngine
from ..storage.layouts import LayoutKind, LayoutSpec
from ..storage.table import Table, layout_chunk_builder
from ..workload.operations import Workload
from .policies import ExecutionPolicy
from .reorg import ReorgPolicy
from .reorganizer import Reorganizer
from .session import FollowerSession, Session


def _durability_config(
    durability: "str | os.PathLike | DurabilityConfig | None",
) -> DurabilityConfig | None:
    if durability is None or isinstance(durability, DurabilityConfig):
        return durability
    return DurabilityConfig(root=durability)


class Database:
    """Declarative façade over the planner/table/engine/monitor stack.

    Most callers construct one through :meth:`from_rows` or
    :meth:`plan_for`; the constructor itself wraps an existing
    :class:`Table` (attaching a fresh engine and workload monitor), which is
    the migration path for code that already builds tables directly.
    """

    def __init__(
        self,
        table: Table,
        *,
        constants: CostConstants | None = None,
        planner: CasperPlanner | None = None,
        monitor: WorkloadMonitor | bool | None = None,
        enable_transactions: bool = False,
    ) -> None:
        self.table = table
        self.constants = (
            constants
            if constants is not None
            else constants_for_block_values(table.block_values)
        )
        self.planner = planner
        # Monitoring costs a per-operation attribution on the hot path and
        # only pays off where a planner can act on it, so by default it is
        # attached exactly when a planner is (pass ``True``/an instance to
        # force it on, ``False`` to force it off).
        if monitor is None:
            monitor = planner is not None
        if monitor is True:
            monitor = WorkloadMonitor()
        elif monitor is False:
            monitor = None
        self.monitor = monitor
        self.engine = StorageEngine(
            table,
            constants=self.constants,
            enable_transactions=enable_transactions,
            monitor=self.monitor,
        )
        #: Attached :class:`DurabilityManager`, or ``None`` (memory-only).
        self.durability: DurabilityManager | None = None
        #: :class:`~repro.durability.recovery.RecoveryReport` when this
        #: database was built by :meth:`open`, else ``None``.
        self.recovery = None
        #: Attached :class:`~repro.replication.follower.Follower` when this
        #: database was built by :meth:`follow`, else ``None``.
        self.follower = None

    def _attach_durability(
        self,
        config: DurabilityConfig,
        *,
        layout_spec: LayoutSpec | None,
        next_lsn: int | None = None,
        checkpoint: bool = True,
    ) -> None:
        meta = {
            "chunk_size": self.table.chunk_size,
            "block_values": self.table.block_values,
            "payload_names": list(self.table.payload_names),
            "layout_spec": spec_to_meta(layout_spec),
        }
        manager = DurabilityManager(config, meta=meta, next_lsn=next_lsn)
        self.durability = manager
        self.engine.attach_durability(manager)
        if checkpoint:
            # Baseline snapshot: makes a freshly-created database
            # recoverable before its first checkpoint call.
            manager.checkpoint(self.table)

    # ------------------------------------------------------------------ #
    # Declarative constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(
        cls,
        keys: np.ndarray | Sequence[int],
        payload: np.ndarray | None = None,
        *,
        layout: LayoutKind | LayoutSpec = LayoutKind.SORTED,
        chunk_size: int = 1_000_000,
        block_values: int = DEFAULT_BLOCK_VALUES,
        partitions: int = 64,
        ghost_fraction: float = 0.01,
        merge_threshold: float = 0.01,
        merge_entries: int | None = 16,
        payload_names: Sequence[str] | None = None,
        constants: CostConstants | None = None,
        monitor: WorkloadMonitor | bool | None = None,
        enable_transactions: bool = False,
        durability: "str | os.PathLike | DurabilityConfig | None" = None,
    ) -> "Database":
        """Load rows under a fixed layout mode.

        ``layout`` is either a :class:`LayoutKind` (with the partitioning
        knobs passed alongside) or a fully-specified :class:`LayoutSpec`.
        The Casper mode needs a workload sample to tune for -- use
        :meth:`plan_for` instead.  No workload monitor is attached unless
        requested (``monitor=True``): without a planner there is nothing to
        replan, so per-operation attribution would be pure overhead.

        Pass ``durability`` (a log-directory path or a
        :class:`DurabilityConfig`) to make writes durable: every write
        batch is write-ahead logged before its results return, a baseline
        snapshot is taken at load, and :meth:`Database.open` on the same
        directory recovers the stored state after a crash or restart.
        """
        if isinstance(layout, LayoutSpec):
            spec = layout
            # The spec's block size governs the physical layout; the table
            # and the cost constants must price the same block size.
            block_values = spec.block_values
        else:
            if layout is LayoutKind.CASPER:
                raise ValueError(
                    "the Casper layout is workload-driven; "
                    "use Database.plan_for(workload, keys, ...)"
                )
            spec = LayoutSpec(
                kind=layout,
                partitions=partitions,
                ghost_fraction=ghost_fraction,
                merge_threshold=merge_threshold,
                merge_entries=merge_entries,
                block_values=block_values,
            )
        table = Table(
            keys,
            payload,
            chunk_size=chunk_size,
            chunk_builder=layout_chunk_builder(spec),
            payload_names=payload_names,
            block_values=block_values,
        )
        database = cls(
            table,
            constants=constants,
            monitor=monitor,
            enable_transactions=enable_transactions,
        )
        config = _durability_config(durability)
        if config is not None:
            database._attach_durability(config, layout_spec=spec)
        return database

    @classmethod
    def plan_for(
        cls,
        workload: Workload,
        keys: np.ndarray | Sequence[int],
        payload: np.ndarray | None = None,
        *,
        chunk_size: int = 1_000_000,
        block_values: int = DEFAULT_BLOCK_VALUES,
        ghost_fraction: float = 0.001,
        sla: SLAConstraints | None = None,
        solver: SolverBackend | str = SolverBackend.DP,
        payload_names: Sequence[str] | None = None,
        constants: CostConstants | None = None,
        monitor: WorkloadMonitor | bool | None = None,
        enable_transactions: bool = False,
        durability: "str | os.PathLike | DurabilityConfig | None" = None,
    ) -> "Database":
        """Build a Casper-planned database tuned for ``workload``.

        Runs the offline pipeline of Fig. 10 (A-C): the planner learns the
        Frequency Model from the sample, solves every chunk's layout and
        allocates ghost values while the table loads.  The planner stays
        attached, so sessions opened with a
        :class:`~repro.api.reorg.ReorgPolicy` can replan drifted chunks
        online against their observed mixes.  A workload monitor is
        attached by default (the reorg lifecycle needs it); pass
        ``monitor=False`` when no session will ever replan and the per-op
        attribution overhead is unwanted.
        """
        constants = (
            constants
            if constants is not None
            else constants_for_block_values(block_values)
        )
        planner = CasperPlanner(
            sample_workload=workload,
            block_values=block_values,
            ghost_fraction=ghost_fraction,
            constants=constants,
            sla=sla,
            solver=solver,
        )
        table = Table(
            keys,
            payload,
            chunk_size=chunk_size,
            chunk_builder=planner.build_chunk,
            payload_names=payload_names,
            block_values=block_values,
        )
        database = cls(
            table,
            constants=constants,
            planner=planner,
            monitor=monitor,
            enable_transactions=enable_transactions,
        )
        config = _durability_config(durability)
        if config is not None:
            # Planner-built chunks have no serializable LayoutSpec; the
            # manifest records ``layout_spec: null`` and recovery falls
            # back to the sorted builder (Database.open accepts an
            # explicit ``chunk_builder`` to restore a planned layout).
            database._attach_durability(config, layout_spec=None)
        return database

    @classmethod
    def open(
        cls,
        durability: "str | os.PathLike | DurabilityConfig",
        *,
        chunk_builder=None,
        constants: CostConstants | None = None,
        monitor: WorkloadMonitor | bool | None = None,
        enable_transactions: bool = False,
    ) -> "Database":
        """Recover the database stored under a durability log directory.

        Rebuilds the table as *latest intact snapshot + WAL replay* (see
        :mod:`repro.durability.recovery`), truncates any CRC-rejected torn
        tail off the log, and re-attaches a durability manager so writes
        resume appending where the recovered history ends.  The recovery
        account is kept on :attr:`recovery`.  Global row ids are
        renumbered by recovery; the logical row multiset is preserved.
        """
        config = _durability_config(durability)
        table, report = recover(config.root, chunk_builder=chunk_builder)
        database = cls(
            table,
            constants=constants,
            monitor=monitor,
            enable_transactions=enable_transactions,
        )
        manager = DurabilityManager(
            config,
            meta={
                "chunk_size": table.chunk_size,
                "block_values": table.block_values,
                "payload_names": list(table.payload_names),
                "layout_spec": None,
            },
            next_lsn=report.last_lsn + 1,
        )
        # Preserve the stored manifest metadata (including the layout
        # spec) for the snapshots this incarnation will take.
        from ..durability.snapshot import load_snapshot

        manager.meta = dict(load_snapshot(report.snapshot_path).meta)
        database.durability = manager
        database.engine.attach_durability(manager)
        database.recovery = report
        return database

    @classmethod
    def follow(
        cls,
        root: "str | os.PathLike",
        *,
        primary=None,
        follower_id: str | None = None,
        chunk_builder=None,
        constants: CostConstants | None = None,
        poll_interval: float = 0.02,
        start: bool = True,
        catch_up: bool = True,
    ) -> "Database":
        """Open a read-only replica of the database logged under ``root``.

        Bootstraps a :class:`~repro.replication.follower.Follower` from
        the latest snapshot, optionally catches it up synchronously and
        starts its background tailing thread, and wraps the replica table
        in a database whose :meth:`session` hands out read-only
        :class:`~repro.api.session.FollowerSession` objects with
        ``lag_lsn`` / ``caught_up`` introspection.

        ``primary`` is the watermark endpoint -- a
        :class:`~repro.replication.primary.Primary` over the live
        database's durability manager (same process), a
        :class:`~repro.replication.transport.RemotePrimary` (socket, other
        process), or ``None`` for offline tailing of a dead primary's
        directory.  With an endpoint attached the follower applies only
        fsync-covered records and pins WAL retention at its cursor;
        :meth:`close` releases the pin.
        """
        from ..replication.follower import Follower

        follower = Follower(
            root,
            primary=primary,
            follower_id=follower_id,
            chunk_builder=chunk_builder,
            poll_interval=poll_interval,
        )
        if catch_up:
            follower.catch_up()
        if start:
            follower.start()
        database = cls(follower.table, constants=constants, monitor=False)
        database.follower = follower
        return database

    @classmethod
    def sharded(
        cls,
        keys: np.ndarray | Sequence[int],
        payload: np.ndarray | None = None,
        *,
        n_shards: int = 2,
        **options,
    ):
        """Load rows into a multi-process sharded database.

        Splits the key space across ``n_shards`` worker processes (each
        running its own engine, durability manager and reorganizer) and
        returns a :class:`~repro.sharding.database.ShardedDatabase` whose
        :meth:`~repro.sharding.database.ShardedDatabase.session` speaks
        the :class:`Session` execution surface with serial-oracle
        results.  See :meth:`ShardedDatabase.from_rows` for the options
        (``durability=``, ``plan=``, ``cluster=``, ...).
        """
        from ..sharding.database import ShardedDatabase

        return ShardedDatabase.from_rows(
            keys, payload, n_shards=n_shards, **options
        )

    # ------------------------------------------------------------------ #
    # Durability lifecycle
    # ------------------------------------------------------------------ #

    @property
    def read_only(self) -> bool:
        """Whether the durability layer degraded to read-only mode."""
        return self.durability is not None and self.durability.read_only

    def checkpoint(self):
        """Snapshot the current state and rotate the WAL.

        Returns the :class:`~repro.durability.snapshot.SnapshotInfo`.
        Bounds recovery replay at the cost of one chunk-by-chunk snapshot;
        durable writes are excluded while it runs, reads are not.
        """
        if self.durability is None:
            raise RuntimeError("no durability manager attached")
        return self.durability.checkpoint(self.table)

    def sync(self) -> int:
        """Force a group-commit fsync; returns the durable LSN."""
        if self.durability is None:
            raise RuntimeError("no durability manager attached")
        return self.durability.sync()

    def close(self) -> None:
        """Release the durability layer (idempotent): fsync the WAL tail
        and close its descriptors.  On a follower database, stops the
        tailing thread and releases the primary-side retention pin.
        Memory-only databases are a no-op."""
        if self.follower is not None:
            self.follower.close()
        if self.durability is not None:
            self.durability.close()

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #

    def session(
        self,
        *,
        execution: ExecutionPolicy | None = None,
        reorg: ReorgPolicy | Reorganizer | None = None,
    ) -> Session:
        """Open a :class:`Session` with the given policies.

        ``execution`` defaults to serial dispatch; pass
        :class:`~repro.api.policies.VectorizedPolicy` or
        :class:`~repro.api.policies.AdaptivePolicy` for the batched fast
        paths.  ``reorg`` enables the automatic reorganization lifecycle:
        a bare :class:`~repro.api.reorg.ReorgPolicy` replans inline, a
        :class:`~repro.api.reorganizer.Reorganizer` drains the same
        replans incrementally (budgeted slices between execute calls, or a
        background worker thread).

        Multiple live sessions may be open at once -- one per thread --
        over this one database; their executions interleave under the
        table's chunk-granular latches (see :mod:`repro.storage.table`).
        Give each session its *own* execution-policy instance (policies
        carry adaptive state); a single :class:`Reorganizer` (and the
        :class:`ReorgPolicy` inside it) is safe to share across the
        database's sessions, and its background worker keeps running until
        the last sharing session closes.

        On a follower database (built with :meth:`follow`) the session is
        a read-only :class:`FollowerSession`; ``reorg`` must be ``None``
        (a replan would fight the replication applier for the chunks).
        """
        if self.follower is not None:
            if reorg is not None:
                raise ValueError(
                    "follower databases do not reorganize: their layout "
                    "follows the primary's snapshots; pass reorg=None"
                )
            return FollowerSession(self, execution=execution)
        return Session(self, execution=execution, reorg=reorg)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        """Number of live rows."""
        return self.table.num_rows

    @property
    def num_chunks(self) -> int:
        """Number of column chunks backing the key column."""
        return self.table.num_chunks

    @property
    def statistics(self) -> EngineStatistics:
        """The engine's running per-operation-kind statistics."""
        return self.engine.statistics

    def check_invariants(self) -> None:
        """Validate the underlying table's structural invariants."""
        self.table.check_invariants()
