"""Incremental reorganization: drain replans off the execute hot path.

Inline reorganization (:meth:`ReorgPolicy.maybe_reorganize`) solves and
rebuilds every drifted chunk inside the ``Session.execute`` call that trips
the drift check -- one batch absorbs the whole stall.  A
:class:`Reorganizer` decouples the phases: after every execute the policy
*scans* for drifted candidates (cheap -- no solver), the candidates join a
work queue, and the queue is drained in *budgeted slices* -- at most
``chunk_budget`` chunks or ``ns_budget`` modeled nanoseconds of rebuild
work per slice -- between execute calls, or continuously on a background
worker thread (``background=True``).

Staleness is handled with the table's per-chunk data generation counter:
the decision phase snapshots the generation when it solves a layout, and
the apply phase re-checks it under the reorganizer's lock.  A replan that
raced a concurrent write is detected and the chunk *requeued* (a fresh
decision will price the new data) rather than applied stale.  Sessions
acquire the same lock around operation execution, so a background apply
can never interleave with a running batch.

Concurrency model: the background worker's *decision* phase deliberately
runs without the lock -- solving a layout is the expensive part, and the
generation re-check makes a raced plan harmless -- so its snapshot reads
(chunk values, monitor windows) and the cost gate's baseline bookkeeping
rely on the GIL's per-operation atomicity rather than mutual exclusion.
A read that catches a chunk mid-mutation can produce a garbage plan
(discarded by the generation check) or raise; the worker shields each
chunk's processing so an exception is counted (:attr:`Reorganizer.errors`),
retried a bounded number of times, and never kills the thread.  Only the
apply phase -- the part that mutates the table -- requires the lock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING

from .reorg import ReorgAction, ReorgDecision, ReorgPolicy

if TYPE_CHECKING:
    from .database import Database

#: Retries granted to a chunk whose background decision raised before the
#: worker stops re-trying it (transient races resolve; persistent faults
#: must not spin).
_MAX_CHUNK_FAILURES = 3


class Reorganizer:
    """Budgeted, optionally background, application of reorg decisions.

    Parameters
    ----------
    policy:
        The :class:`ReorgPolicy` that scans, prices and applies replans; a
        default-configured one is created when omitted.  The policy's
        ``decisions`` list remains the single record of everything the
        lifecycle did.
    chunk_budget:
        Maximum chunks *priced* per drain slice (approved ones are also
        applied).  ``None`` removes the per-chunk bound.
    ns_budget:
        Maximum modeled (simulated) nanoseconds of reorganization work per
        drain slice; the slice stops once the replans it applied charged
        this much.  ``None`` removes the bound.  At least one chunk is
        always processed per slice, so the queue cannot stall.
    background:
        When true, a daemon worker thread drains the queue continuously
        between execute calls instead of the session draining one slice
        after each execute.  Budgets then bound each wake-up of the worker.

    One reorganizer serves one database (like the policy it wraps); reuse
    across that database's sessions is fine.
    """

    def __init__(
        self,
        policy: ReorgPolicy | None = None,
        *,
        chunk_budget: int | None = 1,
        ns_budget: float | None = None,
        background: bool = False,
    ) -> None:
        if chunk_budget is not None and chunk_budget <= 0:
            raise ValueError("chunk_budget must be positive (or None)")
        if ns_budget is not None and ns_budget <= 0:
            raise ValueError("ns_budget must be positive (or None)")
        self.policy = policy if policy is not None else ReorgPolicy()
        self.chunk_budget = chunk_budget
        self.ns_budget = ns_budget
        self.background = bool(background)
        #: Chunks requeued because a write raced their solved plan.
        self.requeues = 0
        #: Exceptions swallowed by the background worker (the shielded
        #: chunk is retried up to ``_MAX_CHUNK_FAILURES`` times).
        self.errors = 0
        self._pending: deque[int] = deque()
        self._pending_set: set[int] = set()
        self._failures: dict[int, int] = {}
        # ``_lock`` serializes database mutation (session execution and the
        # apply phase); ``_wake`` guards the queue and wakes the worker.
        self._lock = threading.RLock()
        self._wake = threading.Condition(threading.Lock())
        self._thread: threading.Thread | None = None
        self._stop = False
        self._busy = False
        self._database: "Database | None" = None
        self._reported = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def decisions(self) -> list[ReorgDecision]:
        """All decisions recorded by the wrapped policy."""
        return list(self.policy.decisions)

    @property
    def replans(self) -> int:
        """Number of replans performed so far."""
        return self.policy.replans

    def pending_chunks(self) -> list[int]:
        """Chunks currently queued for pricing, in queue order."""
        with self._wake:
            return list(self._pending)

    # ------------------------------------------------------------------ #
    # Lifecycle plumbing
    # ------------------------------------------------------------------ #

    def attach(self, database: "Database") -> None:
        """Bind to ``database`` and start the worker in background mode."""
        self.policy.bind(database)
        self._database = database
        if self.background and self._thread is None:
            self._stop = False
            self._thread = threading.Thread(
                target=self._worker, name="repro-reorganizer", daemon=True
            )
            self._thread.start()

    def guard(self):
        """The lock sessions hold while executing operations.

        Background applies take the same lock, so a replan can only land
        *between* batches, never in the middle of one.
        """
        return self._lock

    def _enqueue(self, chunks) -> None:
        with self._wake:
            added = False
            for chunk_index in chunks:
                if chunk_index not in self._pending_set:
                    self._pending.append(chunk_index)
                    self._pending_set.add(chunk_index)
                    added = True
            if added:
                self._wake.notify_all()

    def _pop(self) -> int | None:
        with self._wake:
            if not self._pending:
                return None
            chunk_index = self._pending.popleft()
            self._pending_set.discard(chunk_index)
            return chunk_index

    def _new_decisions(self) -> list[ReorgDecision]:
        """Decisions recorded since the last report (any thread's)."""
        # Advance the watermark by what was actually sliced: taking
        # len(decisions) instead would silently swallow a decision the
        # worker appends between the slice and the length read.
        new = list(self.policy.decisions[self._reported :])
        self._reported += len(new)
        return new

    # ------------------------------------------------------------------ #
    # Session entry points
    # ------------------------------------------------------------------ #

    def after_execute(self, database: "Database") -> list[ReorgDecision]:
        """Scan for drifted chunks and make incremental progress.

        Called by the session after every ``execute``.  Foreground mode
        drains one budgeted slice right here (the bounded between-batch
        stall); background mode only wakes the worker.  Returns the
        decisions recorded since the previous report, so replans the
        worker performed while the caller was idle still reach the
        session's decision log -- note their simulated charges landed
        outside any execute call, so they appear in
        ``Session.report()``'s counter totals but not in any single
        ``SessionResult``'s ``accesses``/``reorg_ns`` window.
        """
        self.attach(database)
        self._enqueue(self.policy.scan(database))
        if not self.background:
            self._drain_slice(database)
        return self._new_decisions()

    def finish(
        self, database: "Database", *, reorganize: bool = True
    ) -> list[ReorgDecision]:
        """Close-time drain: stop the worker and flush the queue.

        With ``reorganize`` (the default) a final forced scan runs and the
        queue is drained to empty -- budget-free, mirroring the inline
        policy's close-time check -- so drift accumulated by a session's
        last execute calls still gets decided.  ``reorganize=False`` (the
        session's exceptional-exit path) only stops the worker and clears
        the queue.
        """
        self.attach(database)
        self._stop_worker()
        if reorganize:
            self._enqueue(self.policy.scan(database, force=True))
            self._drain_slice(database, unbounded=True)
        else:
            with self._wake:
                self._pending.clear()
                self._pending_set.clear()
        return self._new_decisions()

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until the queue is empty and the worker rests (tests)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._wake:
                if not self._pending and not self._busy:
                    return True
            time.sleep(0.005)
        return False

    # ------------------------------------------------------------------ #
    # Draining
    # ------------------------------------------------------------------ #

    def _drain_slice(
        self,
        database: "Database",
        *,
        unbounded: bool = False,
        shielded: bool = False,
    ) -> None:
        """Price (and apply) queued chunks up to the slice budgets.

        ``shielded`` (the background worker's mode) keeps an exception in
        one chunk's decision from killing the drain: the error is counted,
        the chunk retried on a later slice (up to a small cap), and the
        remaining queue still progresses.  Foreground drains propagate, so
        a session sees failures exactly as the inline lifecycle would
        surface them.
        """
        chunks_done = 0
        modeled_ns = 0.0
        while True:
            if not unbounded:
                if (
                    self.chunk_budget is not None
                    and chunks_done >= self.chunk_budget
                ):
                    break
                if self.ns_budget is not None and modeled_ns >= self.ns_budget:
                    break
            chunk_index = self._pop()
            if chunk_index is None:
                break
            if shielded:
                try:
                    modeled_ns += self._process(database, chunk_index)
                except Exception:
                    self.errors += 1
                    failures = self._failures.get(chunk_index, 0) + 1
                    self._failures[chunk_index] = failures
                    if failures < _MAX_CHUNK_FAILURES:
                        self._enqueue((chunk_index,))
                else:
                    # A success clears the strike count: the cap exists to
                    # stop *persistent* faults from spinning, not to ban a
                    # chunk for transient races spread over a long session.
                    self._failures.pop(chunk_index, None)
            else:
                modeled_ns += self._process(database, chunk_index)
            chunks_done += 1

    def _process(self, database: "Database", chunk_index: int) -> float:
        """Decide one chunk and apply the outcome; returns the modeled ns.

        The decision (solver) runs without the lock -- it reads a value
        snapshot -- and the apply phase takes the lock plus the generation
        re-check; a stale action requeues the chunk for a fresh decision.
        """
        outcome = self.policy.decide_chunk(database, chunk_index)
        if not isinstance(outcome, ReorgAction):
            return 0.0
        counter = database.engine.counter
        with self._lock:
            before = counter.snapshot()
            decision = self.policy.apply_action(database, outcome)
            spent = counter.diff(before).cost(database.constants)
        if decision is None:
            self.requeues += 1
            self._enqueue((chunk_index,))
            return 0.0
        return spent

    # ------------------------------------------------------------------ #
    # Background worker
    # ------------------------------------------------------------------ #

    def _worker(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._stop:
                    self._wake.wait()
                if self._stop:
                    return
                self._busy = True
            try:
                database = self._database
                if database is not None:
                    # One budgeted slice per wake-up, shielded so a failing
                    # chunk cannot kill the worker thread and silently stop
                    # background reorganization for the rest of the session.
                    self._drain_slice(database, shielded=True)
            finally:
                with self._wake:
                    self._busy = False
                    self._wake.notify_all()

    def _stop_worker(self) -> None:
        thread = self._thread
        if thread is None:
            return
        with self._wake:
            self._stop = True
            self._wake.notify_all()
        thread.join(timeout=30.0)
        self._thread = None
