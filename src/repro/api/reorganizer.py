"""Incremental reorganization: drain replans off the execute hot path.

Inline reorganization (:meth:`ReorgPolicy.maybe_reorganize`) solves and
rebuilds every drifted chunk inside the ``Session.execute`` call that trips
the drift check -- one batch absorbs the whole stall.  A
:class:`Reorganizer` decouples the phases: after every execute the policy
*scans* for drifted candidates (cheap -- no solver), the candidates join a
work queue, and the queue is drained in *budgeted slices* -- at most
``chunk_budget`` chunks or ``ns_budget`` modeled nanoseconds of rebuild
work per slice -- between execute calls, or continuously on a background
worker thread (``background=True``).

Staleness is handled with the table's per-chunk data generation counter:
the decision phase snapshots the generation when it solves a layout, and
the apply phase builds the replacement chunk copy-on-write and swaps it in
through the table's generation-checked
:meth:`~repro.storage.table.Table.publish_chunk`.  A replan that raced a
concurrent write fails the publish and the chunk is *requeued* (a fresh
decision will price the new data) rather than applied stale.

Concurrency model: there is deliberately **no** global lock between
session execution and background reorganization.  The rules below are
machine-checked -- statically by ``python -m repro.analysis`` and at
runtime under ``REPRO_DEBUG_LATCHES=1`` (check IDs refer to
:mod:`repro.analysis`; the declaration tables live in
:mod:`repro.discipline`):

* Reads and writes are isolated by the table's chunk-granular latches;
  every chunk access is latch-bracketed (checks LB01/LB02/LB03) and
  multi-chunk latching is ascending-index only (LO02).
* The replan's expensive phases -- solving the layout, building the
  replacement chunk -- run entirely *off* the latches against a pinned
  snapshot (SL01: a solver call under any latch or declared lock is an
  error), so concurrent readers only ever pause for the O(1) publish swap
  of one chunk, and only writers targeting the chunk being swapped
  serialize with it.  Every publish is generation-checked (GC01: a
  ``publish_chunk`` call site must test the result or be dominated by a
  generation comparison).
* Cross-object lock nesting follows the declared partial order
  ``repro.discipline.LOCK_ORDER`` -- chunk latch before structure locks
  before monitor before reorganizer state (LO01, runtime cycle detection
  LO03).  The decision phase's monitor reads go through the monitor's own
  ingest lock; the cost gate's baseline bookkeeping is guarded inside
  :class:`ReorgPolicy`.
* The reorganizer's own shared scalars are declared in
  ``repro.discipline.GUARDED_BY`` (GS01/GS02): the queue and worker wake
  state under ``_wake``, counters and lifecycle under ``_state``.

A decision that still catches transient state (e.g. a chunk emptied
between scan and decide) can raise; the worker shields each chunk's
processing so an exception is counted (:attr:`Reorganizer.errors`),
retried a bounded number of times, and never kills the thread.

One reorganizer may serve many concurrent sessions of its database: the
work queue, failure counters and decision watermark are mutex-guarded,
and the background worker keeps running until the *last* registered
session closes (sessions register on open and deregister on close).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING

from repro import discipline
from repro.discipline import guarded_class

from .reorg import ReorgAction, ReorgDecision, ReorgPolicy

if TYPE_CHECKING:
    from .database import Database

#: Retries granted to a chunk whose background decision raised before the
#: worker stops re-trying it (transient races resolve; persistent faults
#: must not spin).
_MAX_CHUNK_FAILURES = 3


@guarded_class
class Reorganizer:
    """Budgeted, optionally background, application of reorg decisions.

    Parameters
    ----------
    policy:
        The :class:`ReorgPolicy` that scans, prices and applies replans; a
        default-configured one is created when omitted.  The policy's
        ``decisions`` list remains the single record of everything the
        lifecycle did.
    chunk_budget:
        Maximum chunks *priced* per drain slice (approved ones are also
        applied).  ``None`` removes the per-chunk bound.
    ns_budget:
        Maximum modeled (simulated) nanoseconds of reorganization work per
        drain slice; the slice stops once the replans it applied charged
        this much.  ``None`` removes the bound.  At least one chunk is
        always processed per slice, so the queue cannot stall.
    background:
        When true, a daemon worker thread drains the queue continuously
        between execute calls instead of the session draining one slice
        after each execute.  Budgets then bound each wake-up of the worker.

    One reorganizer serves one database (like the policy it wraps); reuse
    across that database's sessions is fine.
    """

    def __init__(
        self,
        policy: ReorgPolicy | None = None,
        *,
        chunk_budget: int | None = 1,
        ns_budget: float | None = None,
        background: bool = False,
    ) -> None:
        if chunk_budget is not None and chunk_budget <= 0:
            raise ValueError("chunk_budget must be positive (or None)")
        if ns_budget is not None and ns_budget <= 0:
            raise ValueError("ns_budget must be positive (or None)")
        self.policy = policy if policy is not None else ReorgPolicy()
        self.chunk_budget = chunk_budget
        self.ns_budget = ns_budget
        self.background = bool(background)
        #: Chunks requeued because a write raced their solved plan.
        self.requeues = 0
        #: Exceptions swallowed by the background worker (the shielded
        #: chunk is retried up to ``_MAX_CHUNK_FAILURES`` times).
        self.errors = 0
        self._pending: deque[int] = deque()
        self._pending_set: set[int] = set()
        self._failures: dict[int, int] = {}
        # ``_wake`` guards the queue and wakes the worker; ``_state`` guards
        # the small shared scalars (session count, requeue/error tallies,
        # decision watermark, worker lifecycle).  Database mutation needs no
        # reorganizer-level lock: the table's chunk latches isolate the
        # copy-on-write publish from session execution.
        self._wake = discipline.make_condition("reorg_wake")
        self._state = discipline.make_lock("reorg_state")
        self._thread: threading.Thread | None = None
        self._stop = False
        self._busy = False
        self._database: "Database | None" = None
        self._reported = 0
        self._sessions = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def decisions(self) -> list[ReorgDecision]:
        """All decisions recorded by the wrapped policy."""
        return list(self.policy.decisions)

    @property
    def replans(self) -> int:
        """Number of replans performed so far."""
        return self.policy.replans

    def pending_chunks(self) -> list[int]:
        """Chunks currently queued for pricing, in queue order."""
        with self._wake:
            return list(self._pending)

    # ------------------------------------------------------------------ #
    # Lifecycle plumbing
    # ------------------------------------------------------------------ #

    def attach(self, database: "Database") -> None:
        """Bind to ``database`` and start the worker in background mode.

        ``_database`` and the worker lifecycle are written under their
        declared guards (GS01: ``_database``/``_thread`` under ``_state``,
        ``_stop`` under ``_wake``) -- an unlocked ``_database`` publish
        could race a concurrent ``_stop_worker``/re-attach, and a
        ``_stop`` write outside ``_wake`` could be reordered against the
        worker's condition-variable check.
        """
        self.policy.bind(database)
        with self._state:
            self._database = database
            if self.background and self._thread is None:
                with self._wake:
                    self._stop = False
                self._thread = threading.Thread(
                    target=self._worker,
                    name="repro-reorganizer",
                    daemon=True,
                )
                self._thread.start()

    def register_session(self, database: "Database") -> None:
        """Count a session against the worker's lifetime.

        The background worker (and the pending queue) survive until the
        last registered session closes, so several concurrent sessions of
        one database can share a single reorganizer without the first
        closer tearing reorganization down under the others.
        """
        self.attach(database)
        with self._state:
            self._sessions += 1

    def _enqueue(self, chunks) -> None:
        with self._wake:
            added = False
            for chunk_index in chunks:
                if chunk_index not in self._pending_set:
                    self._pending.append(chunk_index)
                    self._pending_set.add(chunk_index)
                    added = True
            if added:
                self._wake.notify_all()

    def _pop(self) -> int | None:
        with self._wake:
            if not self._pending:
                return None
            chunk_index = self._pending.popleft()
            self._pending_set.discard(chunk_index)
            return chunk_index

    def _new_decisions(self) -> list[ReorgDecision]:
        """Decisions recorded since the last report (any thread's)."""
        # Advance the watermark by what was actually sliced: taking
        # len(decisions) instead would silently swallow a decision the
        # worker appends between the slice and the length read.  The
        # watermark itself is guarded so two sessions reporting at once
        # never double-report (or skip) a decision.
        with self._state:
            new = list(self.policy.decisions[self._reported :])
            self._reported += len(new)
        return new

    # ------------------------------------------------------------------ #
    # Session entry points
    # ------------------------------------------------------------------ #

    def after_execute(self, database: "Database") -> list[ReorgDecision]:
        """Scan for drifted chunks and make incremental progress.

        Called by the session after every ``execute``.  Foreground mode
        drains one budgeted slice right here (the bounded between-batch
        stall); background mode only wakes the worker.  Returns the
        decisions recorded since the previous report, so replans the
        worker performed while the caller was idle still reach the
        session's decision log -- note their simulated charges landed
        outside any execute call, so they appear in
        ``Session.report()``'s counter totals but not in any single
        ``SessionResult``'s ``accesses``/``reorg_ns`` window.
        """
        self.attach(database)
        self._enqueue(self.policy.scan(database))
        if not self.background:
            self._drain_slice(database)
        return self._new_decisions()

    def finish(
        self, database: "Database", *, reorganize: bool = True
    ) -> list[ReorgDecision]:
        """Close-time drain: stop the worker and flush the queue.

        Called by each closing session.  While *other* sessions remain
        registered, the worker and queue are left running (a forced scan
        still enqueues any drift the closing session accumulated); the
        *last* session's close performs the full teardown.  With
        ``reorganize`` (the default) that teardown runs a final forced scan
        and drains the queue to empty -- budget-free, mirroring the inline
        policy's close-time check -- so drift accumulated by a session's
        last execute calls still gets decided.  ``reorganize=False`` (the
        session's exceptional-exit path) only stops the worker and clears
        the queue.
        """
        self.attach(database)
        with self._state:
            self._sessions = max(0, self._sessions - 1)
            last = self._sessions == 0
        if not last:
            if reorganize:
                self._enqueue(self.policy.scan(database, force=True))
            return self._new_decisions()
        self._stop_worker()
        if reorganize:
            self._enqueue(self.policy.scan(database, force=True))
            self._drain_slice(database, unbounded=True)
        else:
            with self._wake:
                self._pending.clear()
                self._pending_set.clear()
        return self._new_decisions()

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until the queue is empty and the worker rests (tests)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._wake:
                if not self._pending and not self._busy:
                    return True
            time.sleep(0.005)
        return False

    # ------------------------------------------------------------------ #
    # Draining
    # ------------------------------------------------------------------ #

    def _drain_slice(
        self,
        database: "Database",
        *,
        unbounded: bool = False,
        shielded: bool = False,
    ) -> None:
        """Price (and apply) queued chunks up to the slice budgets.

        ``shielded`` (the background worker's mode) keeps an exception in
        one chunk's decision from killing the drain: the error is counted,
        the chunk retried on a later slice (up to a small cap), and the
        remaining queue still progresses.  Foreground drains propagate, so
        a session sees failures exactly as the inline lifecycle would
        surface them.
        """
        chunks_done = 0
        modeled_ns = 0.0
        while True:
            if not unbounded:
                if (
                    self.chunk_budget is not None
                    and chunks_done >= self.chunk_budget
                ):
                    break
                if self.ns_budget is not None and modeled_ns >= self.ns_budget:
                    break
            chunk_index = self._pop()
            if chunk_index is None:
                break
            if shielded:
                try:
                    modeled_ns += self._process(database, chunk_index)
                except Exception:
                    with self._state:
                        self.errors += 1
                        failures = self._failures.get(chunk_index, 0) + 1
                        self._failures[chunk_index] = failures
                    if failures < _MAX_CHUNK_FAILURES:
                        self._enqueue((chunk_index,))
                else:
                    # A success clears the strike count: the cap exists to
                    # stop *persistent* faults from spinning, not to ban a
                    # chunk for transient races spread over a long session.
                    with self._state:
                        self._failures.pop(chunk_index, None)
            else:
                modeled_ns += self._process(database, chunk_index)
            chunks_done += 1

    def _process(self, database: "Database", chunk_index: int) -> float:
        """Decide one chunk and apply the outcome; returns the modeled ns.

        Both phases run without any reorganizer-level lock: the decision
        solves against a latched snapshot, and the apply builds the
        replacement copy-on-write and lands it through the table's
        generation-checked publish.  A stale action (the publish refused
        it) requeues the chunk for a fresh decision.  The modeled-ns charge
        is measured as engine-counter movement around the apply, so with
        concurrent sessions executing it can over-count -- budgets treat it
        as an upper bound on the slice's reorganization work.
        """
        outcome = self.policy.decide_chunk(database, chunk_index)
        if not isinstance(outcome, ReorgAction):
            return 0.0
        counter = database.engine.counter
        before = counter.snapshot()
        decision = self.policy.apply_action(database, outcome)
        spent = counter.diff(before).cost(database.constants)
        if decision is None:
            with self._state:
                self.requeues += 1
            self._enqueue((chunk_index,))
            return 0.0
        return spent

    # ------------------------------------------------------------------ #
    # Background worker
    # ------------------------------------------------------------------ #

    def _worker(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._stop:
                    self._wake.wait()
                if self._stop:
                    return
                self._busy = True
            try:
                database = self._database
                if database is not None:
                    # One budgeted slice per wake-up, shielded so a failing
                    # chunk cannot kill the worker thread and silently stop
                    # background reorganization for the rest of the session.
                    self._drain_slice(database, shielded=True)
            finally:
                with self._wake:
                    self._busy = False
                    self._wake.notify_all()

    def _stop_worker(self) -> None:
        with self._state:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        with self._wake:
            self._stop = True
            self._wake.notify_all()
        # The join runs outside ``_state``: the worker's shielded drain
        # takes that lock for its failure bookkeeping, so holding it here
        # could deadlock the shutdown.
        thread.join(timeout=30.0)
