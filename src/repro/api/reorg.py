"""Reorganization policy: automatic, cost-gated online replans.

The paper's Fig. 10 loop (sample -> plan -> execute -> monitor -> replan)
closes here: a :class:`ReorgPolicy` attached to a session watches the
per-chunk operation mixes the engine's
:class:`~repro.core.monitor.WorkloadMonitor` records, detects drift against
a baseline mix (seeded from the planner's offline training sample), and
re-lays-out a drifted chunk *only when the modeled savings beat the rebuild
charge*:

* **drift detection** -- total-variation distance between the chunk's
  observed mix and its baseline (:func:`repro.core.monitor.mix_distance`),
  thresholded once enough operations have accumulated;
* **cost gate** -- a candidate plan for the chunk's recorded sample is
  solved (:meth:`CasperPlanner.plan_chunk`) and its modeled cost compared to
  the *current* layout priced under the same frequency model
  (:meth:`CasperPlanner.evaluate_layout`); the replan proceeds only if the
  modeled savings exceed ``rebuild_margin`` times the sequential
  read+rewrite charge of the rebuild itself;
* **replan** -- :meth:`WorkloadMonitor.replan_chunk` rebuilds the chunk in
  place against the recorded sample and resets its activity; the chunk's
  baseline mix becomes the mix that triggered the replan.

Every evaluation that crosses the drift threshold is recorded as a
:class:`ReorgDecision`, whether or not it replanned, so sessions can report
exactly why the lifecycle did (or did not) act.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.monitor import WorkloadMonitor, mix_distance
from ..storage.cost_accounting import blocks_spanned

if TYPE_CHECKING:
    from .database import Database


@dataclass
class ReorgDecision:
    """Outcome of evaluating one drifted chunk."""

    chunk_index: int
    drift: float
    observed_operations: int
    replanned: bool
    reason: str
    current_cost_ns: float | None = None
    planned_cost_ns: float | None = None
    rebuild_cost_ns: float | None = None

    @property
    def modeled_savings_ns(self) -> float | None:
        """Modeled cost reduction of the replan over the recorded sample."""
        if self.current_cost_ns is None or self.planned_cost_ns is None:
            return None
        return self.current_cost_ns - self.planned_cost_ns


@dataclass
class ReorgPolicy:
    """When (and whether) a session replans drifted chunks.

    Parameters
    ----------
    drift_threshold:
        Total-variation distance between a chunk's observed operation mix
        and its baseline above which the chunk becomes a replan candidate.
    min_chunk_operations:
        Minimum operations attributed to a chunk (since its last replan)
        before drift is evaluated, so a handful of operations cannot trigger
        a rebuild.
    cost_gate:
        When true (the default), a candidate layout is solved for the
        chunk's recorded sample and the replan only proceeds if the modeled
        savings beat ``rebuild_margin`` times the rebuild charge.  A
        rejection adopts the evaluated mix as the chunk's new baseline and
        resets its recorded window, so a workload that persists in a
        judged-unprofitable mix never re-triggers the solver -- the mix has
        to drift past the threshold again.  When false, crossing the drift
        threshold replans unconditionally.
    rebuild_margin:
        Multiplier on the rebuild charge the modeled savings must exceed.
    check_interval:
        Evaluate drift only every N-th ``Session.execute`` call (1 = every
        call).

    A policy instance carries per-database state (baseline mixes, call
    counts), so it is bound to the first database it evaluates; create a
    fresh instance per database (sharing one across a database's sessions
    is fine -- baselines deliberately persist across them).
    """

    drift_threshold: float = 0.25
    min_chunk_operations: int = 256
    cost_gate: bool = True
    rebuild_margin: float = 1.0
    check_interval: int = 1
    decisions: list[ReorgDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drift_threshold <= 1.0:
            raise ValueError("drift_threshold must be in [0, 1]")
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self._baselines: dict[int, dict[str, float]] = {}
        self._baselines_seeded = False
        self._calls = 0
        self._database: "Database | None" = None

    @property
    def replans(self) -> int:
        """Number of replans performed so far."""
        return sum(1 for decision in self.decisions if decision.replanned)

    def _seed_baselines(self, database: "Database") -> None:
        """Seed baseline chunk mixes from the planner's training sample."""
        if self._baselines_seeded:
            return
        self._baselines_seeded = True
        planner = database.planner
        if planner is None or not len(planner.sample_workload):
            return
        probe = WorkloadMonitor(sample_limit=0)
        probe.observe_workload(database.table, planner.sample_workload)
        for chunk_index in probe.observed_chunks():
            self._baselines[chunk_index] = probe.chunk_mix(chunk_index)

    def maybe_reorganize(
        self, database: "Database", *, force: bool = False
    ) -> list[ReorgDecision]:
        """Evaluate every active chunk; replan where drift and gate agree.

        Returns the decisions made during this check (also appended to
        :attr:`decisions`).  A no-op unless the database carries both a
        monitor and a planner.  ``force`` bypasses ``check_interval`` (the
        session's close-time check uses it, so drift accumulated by the
        last execute calls is always evaluated once).
        """
        if self._database is None:
            self._database = database
        elif self._database is not database:
            raise ValueError(
                "ReorgPolicy instances carry per-database state (baseline "
                "mixes, call counts); create a fresh policy per database"
            )
        self._calls += 1
        if not force and self._calls % self.check_interval:
            return []
        monitor = database.monitor
        planner = database.planner
        if monitor is None or planner is None:
            return []
        self._seed_baselines(database)
        made: list[ReorgDecision] = []
        for chunk_index in monitor.observed_chunks():
            decision = self._evaluate_chunk(database, chunk_index)
            if decision is not None:
                self.decisions.append(decision)
                made.append(decision)
        return made

    def _evaluate_chunk(
        self, database: "Database", chunk_index: int
    ) -> ReorgDecision | None:
        monitor = database.monitor
        planner = database.planner
        table = database.table
        counts = monitor.operation_counts(chunk_index)
        total = sum(counts.values())
        if total < self.min_chunk_operations:
            return None
        mix = monitor.chunk_mix(chunk_index)
        baseline = self._baselines.get(chunk_index)
        if baseline is None:
            # First sighting of an un-trained chunk: adopt the observed mix
            # as its baseline rather than replanning against nothing.
            self._baselines[chunk_index] = mix
            return None
        drift = mix_distance(mix, baseline)
        if drift < self.drift_threshold:
            return None
        chunk = table.chunks[chunk_index]
        if not hasattr(chunk, "rowids"):
            return ReorgDecision(
                chunk_index=chunk_index,
                drift=drift,
                observed_operations=total,
                replanned=False,
                reason="chunk does not expose row ids; cannot rebuild",
            )
        sample = monitor.recorded_workload(chunk_index)
        if not len(sample):
            return ReorgDecision(
                chunk_index=chunk_index,
                drift=drift,
                observed_operations=total,
                replanned=False,
                reason="no recorded operation sample",
            )
        current_cost = planned_cost = rebuild_cost = None
        if self.cost_gate:
            values = np.sort(np.asarray(chunk.values(), dtype=np.int64))
            if values.size == 0:
                return ReorgDecision(
                    chunk_index=chunk_index,
                    drift=drift,
                    observed_operations=total,
                    replanned=False,
                    reason="chunk is empty",
                )
            replanner = planner.with_sample(sample)
            plan = replanner.plan_chunk(values)
            planned_cost = plan.estimated_cost
            offsets = self._current_offsets(chunk, values.size)
            current_cost = replanner.evaluate_layout(
                plan.frequency_model, offsets
            )
            constants = planner.constants
            blocks = blocks_spanned(0, int(values.size), planner.block_values)
            rebuild_cost = blocks * (constants.seq_read + constants.seq_write)
            if current_cost - planned_cost < self.rebuild_margin * rebuild_cost:
                # Back off: the evaluated mix was judged not worth acting
                # on, so it becomes the chunk's new baseline -- a workload
                # that *stays* in this mix never re-triggers the solver; it
                # must drift past the threshold again.  The recorded window
                # is reset so the next evaluation (if any) prices a fresh
                # sample.
                self._baselines[chunk_index] = mix
                monitor.reset_chunk(chunk_index)
                return ReorgDecision(
                    chunk_index=chunk_index,
                    drift=drift,
                    observed_operations=total,
                    replanned=False,
                    reason="cost gate: modeled savings below rebuild charge",
                    current_cost_ns=current_cost,
                    planned_cost_ns=planned_cost,
                    rebuild_cost_ns=rebuild_cost,
                )
            # The gate already paid for the layout solve; apply that plan
            # instead of letting replan_chunk solve it a second time.  The
            # chunk has not changed since plan_chunk saw it, so the sorted
            # values the rebuild extracts are the ones the plan was built
            # for.
            table.rebuild_chunk(
                chunk_index,
                lambda v, r, c: replanner.build_chunk_from_plan(plan, v, r, c),
            )
            monitor.reset_chunk(chunk_index)
        else:
            monitor.replan_chunk(table, chunk_index, planner)
        self._baselines[chunk_index] = mix
        return ReorgDecision(
            chunk_index=chunk_index,
            drift=drift,
            observed_operations=total,
            replanned=True,
            reason="drift above threshold"
            + (", savings beat rebuild charge" if self.cost_gate else ""),
            current_cost_ns=current_cost,
            planned_cost_ns=planned_cost,
            rebuild_cost_ns=rebuild_cost,
        )

    @staticmethod
    def _current_offsets(chunk, size: int) -> np.ndarray:
        """Exclusive value end offsets of the chunk's current partitions."""
        if hasattr(chunk, "partition_counts"):
            offsets = np.cumsum(
                np.asarray(chunk.partition_counts(), dtype=np.int64)
            )
            offsets = offsets[offsets > 0]
            if offsets.size and int(offsets[-1]) == size:
                return offsets
        # Fallback: price the chunk as one partition (e.g. delta-store
        # chunks, whose main run is a single sorted area).
        return np.asarray([size], dtype=np.int64)
