"""Reorganization policy: automatic, cost-gated online replans.

The paper's Fig. 10 loop (sample -> plan -> execute -> monitor -> replan)
closes here: a :class:`ReorgPolicy` attached to a session watches the
per-chunk operation mixes the engine's
:class:`~repro.core.monitor.WorkloadMonitor` records, detects drift against
a baseline mix (seeded from the planner's offline training sample), and
re-lays-out a drifted chunk *only when the modeled savings beat the rebuild
charge*.

The lifecycle is split into two phases so reorganization can run off the
execute path (see :class:`~repro.api.reorganizer.Reorganizer`):

* **decision phase** -- :meth:`ReorgPolicy.scan` finds chunks whose
  total-variation drift against their baseline crossed the threshold
  (cheap: no layouts are solved); :meth:`ReorgPolicy.decide_chunk` then
  prices one candidate -- solving a layout for the chunk's recorded sample
  and comparing its modeled cost to the current layout and the rebuild
  charge -- and returns either an approved :class:`ReorgAction` (carrying
  the already-solved plan and the chunk's data generation) or a recorded
  rejection :class:`ReorgDecision`;
* **apply phase** -- :meth:`ReorgPolicy.apply_action` builds the
  replacement chunk *off to the side* (copy-on-write: readers keep serving
  from the current chunk throughout) and swaps it in with the table's
  single generation-checked :meth:`~repro.storage.table.Table.
  publish_chunk`; a generation mismatch -- at the pre-build snapshot or at
  the publish itself -- means a write raced the decision, and the action
  is reported stale (``None``) so the caller requeues it instead of
  applying a layout solved for data that no longer exists.

A policy may be driven from several sessions (threads) at once: the
baseline/bookkeeping state is mutex-guarded, decisions are solved without
any lock (the generation-checked publish makes a raced plan harmless), and
two racing applies of the same chunk resolve safely -- the first publish
bumps the generation, the second fails its check and requeues.

:meth:`maybe_reorganize` chains the two phases inline (decide + apply in
the same call) and remains the synchronous compatibility entry point.

Every evaluation that crosses the drift threshold is recorded as a
:class:`ReorgDecision`, whether or not it replanned, so sessions can report
exactly why the lifecycle did (or did not) act.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import discipline
from repro.discipline import guarded_class

from ..core.monitor import WorkloadMonitor, mix_distance
from ..storage.cost_accounting import blocks_spanned

if TYPE_CHECKING:
    from .database import Database


@dataclass
class ReorgDecision:
    """Outcome of evaluating one drifted chunk."""

    chunk_index: int
    drift: float
    observed_operations: int
    replanned: bool
    reason: str
    current_cost_ns: float | None = None
    planned_cost_ns: float | None = None
    rebuild_cost_ns: float | None = None

    @property
    def modeled_savings_ns(self) -> float | None:
        """Modeled cost reduction of the replan over the recorded sample."""
        if self.current_cost_ns is None or self.planned_cost_ns is None:
            return None
        return self.current_cost_ns - self.planned_cost_ns


@dataclass
class ReorgAction:
    """An approved replan awaiting application (decision-phase output).

    Carries everything the apply phase needs: the layout plan the cost gate
    already solved (``None`` when the gate is disabled and the rebuild will
    re-solve against the live sample), the planner bound to the recorded
    sample, the mix that triggered the decision (adopted as the chunk's new
    baseline on apply) and the chunk's data ``generation`` at decision
    time -- the staleness token :meth:`ReorgPolicy.apply_action` re-checks.
    """

    chunk_index: int
    drift: float
    observed_operations: int
    mix: dict[str, float]
    generation: int
    plan: object | None = None
    replanner: object | None = None
    current_cost_ns: float | None = None
    planned_cost_ns: float | None = None
    rebuild_cost_ns: float | None = None


@guarded_class
@dataclass
class ReorgPolicy:
    """When (and whether) a session replans drifted chunks.

    Parameters
    ----------
    drift_threshold:
        Total-variation distance between a chunk's observed operation mix
        and its baseline above which the chunk becomes a replan candidate.
    min_chunk_operations:
        Minimum operations attributed to a chunk (since its last replan)
        before drift is evaluated, so a handful of operations cannot trigger
        a rebuild.
    cost_gate:
        When true (the default), a candidate layout is solved for the
        chunk's recorded sample and the replan only proceeds if the modeled
        savings beat ``rebuild_margin`` times the rebuild charge.  A
        rejection adopts the evaluated mix as the chunk's new baseline and
        resets its recorded window, so a workload that persists in a
        judged-unprofitable mix never re-triggers the solver -- the mix has
        to drift past the threshold again.  When false, crossing the drift
        threshold replans unconditionally.
    rebuild_margin:
        Multiplier on the rebuild charge the modeled savings must exceed.
    check_interval:
        Evaluate drift only every N-th ``Session.execute`` call (1 = every
        call).

    A policy instance carries per-database state (baseline mixes, call
    counts), so it is bound to the first database it evaluates; create a
    fresh instance per database (sharing one across a database's sessions
    is fine -- baselines deliberately persist across them).
    """

    drift_threshold: float = 0.25
    min_chunk_operations: int = 256
    cost_gate: bool = True
    rebuild_margin: float = 1.0
    check_interval: int = 1
    decisions: list[ReorgDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drift_threshold <= 1.0:
            raise ValueError("drift_threshold must be in [0, 1]")
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self._baselines: dict[int, dict[str, float]] = {}
        self._baselines_seeded = False
        self._calls = 0
        self._database: "Database | None" = None
        # Guards the cheap bookkeeping (call count, seeding, baseline
        # adoption, decision log) against concurrent sessions.  The solver
        # deliberately runs outside this lock: pricing a candidate can take
        # milliseconds, and the generation-checked publish already makes a
        # stale plan harmless.
        self._state_lock = discipline.make_rlock("policy_state")

    @property
    def replans(self) -> int:
        """Number of replans performed so far."""
        return sum(1 for decision in self.decisions if decision.replanned)

    def bind(self, database: "Database") -> None:
        """Bind the policy to ``database`` (first caller wins)."""
        with self._state_lock:
            if self._database is None:
                self._database = database
            elif self._database is not database:
                raise ValueError(
                    "ReorgPolicy instances carry per-database state (baseline "
                    "mixes, call counts); create a fresh policy per database"
                )

    def _seed_baselines(self, database: "Database") -> None:
        """Seed baseline chunk mixes from the planner's training sample."""
        with self._state_lock:
            if self._baselines_seeded:
                return
            self._baselines_seeded = True
            planner = database.planner
            if planner is None or not len(planner.sample_workload):
                return
            probe = WorkloadMonitor(sample_limit=0)
            probe.observe_workload(database.table, planner.sample_workload)
            for chunk_index in probe.observed_chunks():
                self._baselines[chunk_index] = probe.chunk_mix(chunk_index)

    # ------------------------------------------------------------------ #
    # Decision phase
    # ------------------------------------------------------------------ #

    def scan(self, database: "Database", *, force: bool = False) -> list[int]:
        """Find chunks whose drift crossed the threshold (no solver work).

        Counts one lifecycle call against ``check_interval`` (``force``
        bypasses the interval, as the session's close-time check does) and
        returns the candidate chunk indices, ascending.  Chunks without a
        baseline adopt their observed mix instead of becoming candidates.
        A no-op unless the database carries both a monitor and a planner.
        """
        self.bind(database)
        with self._state_lock:
            self._calls += 1
            due = force or not self._calls % self.check_interval
        if not due:
            return []
        monitor = database.monitor
        if monitor is None or database.planner is None:
            return []
        self._seed_baselines(database)
        return [
            chunk_index
            for chunk_index in monitor.observed_chunks()
            if self._drift_state(monitor, chunk_index) is not None
        ]

    def _drift_state(
        self, monitor, chunk_index: int
    ) -> tuple[dict[str, float], float, int] | None:
        """The drift gate shared by :meth:`scan` and :meth:`decide_chunk`.

        Returns ``(mix, drift, total)`` when the chunk has accumulated
        ``min_chunk_operations`` and drifted past the threshold, ``None``
        otherwise.  A chunk without a baseline adopts its observed mix as
        the baseline (first sighting of an un-trained chunk should never
        replan against nothing) and is not a candidate.
        """
        counts = monitor.operation_counts(chunk_index)
        total = sum(counts.values())
        if total < self.min_chunk_operations:
            return None
        mix = monitor.chunk_mix(chunk_index)
        with self._state_lock:
            baseline = self._baselines.get(chunk_index)
            if baseline is None:
                self._baselines[chunk_index] = mix
                return None
        drift = mix_distance(mix, baseline)
        if drift < self.drift_threshold:
            return None
        return mix, drift, total

    def decide_chunk(
        self, database: "Database", chunk_index: int
    ) -> ReorgAction | ReorgDecision | None:
        """Price one candidate chunk: the full decision phase.

        Re-checks drift against the chunk's *current* window (the mix may
        have moved since :meth:`scan` queued it), then runs the cost gate.
        Returns ``None`` when the chunk is no longer a candidate, a
        :class:`ReorgDecision` (already recorded in :attr:`decisions`) when
        it was evaluated but rejected, or an approved :class:`ReorgAction`
        ready for :meth:`apply_action`.
        """
        monitor = database.monitor
        planner = database.planner
        table = database.table
        if monitor is None or planner is None:
            return None
        state = self._drift_state(monitor, chunk_index)
        if state is None:
            return None
        mix, drift, total = state
        chunk = table.chunks[chunk_index]
        if not hasattr(chunk, "rowids"):
            return self._record(
                ReorgDecision(
                    chunk_index=chunk_index,
                    drift=drift,
                    observed_operations=total,
                    replanned=False,
                    reason="chunk does not expose row ids; cannot rebuild",
                )
            )
        sample = monitor.recorded_workload(chunk_index)
        if not len(sample):
            return self._record(
                ReorgDecision(
                    chunk_index=chunk_index,
                    drift=drift,
                    observed_operations=total,
                    replanned=False,
                    reason="no recorded operation sample",
                )
            )
        generation = table.chunk_generation(chunk_index)
        if not self.cost_gate:
            return ReorgAction(
                chunk_index=chunk_index,
                drift=drift,
                observed_operations=total,
                mix=mix,
                generation=generation,
            )
        # Snapshot values and generation atomically (under the chunk's
        # shared latch): the solved plan and the staleness token the apply
        # phase re-checks belong to the same point in the chunk's history.
        snapshot = table.snapshot_chunk(chunk_index)
        values = snapshot.values
        generation = snapshot.generation
        if values.size == 0:
            return self._record(
                ReorgDecision(
                    chunk_index=chunk_index,
                    drift=drift,
                    observed_operations=total,
                    replanned=False,
                    reason="chunk is empty",
                )
            )
        replanner = planner.with_sample(sample)
        plan = replanner.plan_chunk(values)
        planned_cost = plan.estimated_cost
        # The snapshot captured the live partition layout under the same
        # latch as the values and generation, so the gate prices the
        # current layout against exactly the data the plan was solved for
        # (a chunk object fetched separately could have been swapped by a
        # racing publish in between).
        current_cost = replanner.evaluate_layout(
            plan.frequency_model, snapshot.partition_offsets
        )
        constants = planner.constants
        blocks = blocks_spanned(0, int(values.size), planner.block_values)
        rebuild_cost = blocks * (constants.seq_read + constants.seq_write)
        if current_cost - planned_cost < self.rebuild_margin * rebuild_cost:
            # Back off: the evaluated mix was judged not worth acting on, so
            # it becomes the chunk's new baseline -- a workload that *stays*
            # in this mix never re-triggers the solver; it must drift past
            # the threshold again.  The recorded window is reset so the next
            # evaluation (if any) prices a fresh sample.
            with self._state_lock:
                self._baselines[chunk_index] = mix
            monitor.reset_chunk(chunk_index)
            return self._record(
                ReorgDecision(
                    chunk_index=chunk_index,
                    drift=drift,
                    observed_operations=total,
                    replanned=False,
                    reason="cost gate: modeled savings below rebuild charge",
                    current_cost_ns=current_cost,
                    planned_cost_ns=planned_cost,
                    rebuild_cost_ns=rebuild_cost,
                )
            )
        return ReorgAction(
            chunk_index=chunk_index,
            drift=drift,
            observed_operations=total,
            mix=mix,
            generation=generation,
            plan=plan,
            replanner=replanner,
            current_cost_ns=current_cost,
            planned_cost_ns=planned_cost,
            rebuild_cost_ns=rebuild_cost,
        )

    # ------------------------------------------------------------------ #
    # Apply phase
    # ------------------------------------------------------------------ #

    def apply_action(
        self, database: "Database", action: ReorgAction
    ) -> ReorgDecision | None:
        """Rebuild the chunk an approved action targets, copy-on-write.

        The replacement chunk is built entirely off to the side from a
        latched :meth:`~repro.storage.table.Table.snapshot_chunk` -- readers
        keep serving from the current chunk throughout -- and swapped in by
        the table's generation-checked
        :meth:`~repro.storage.table.Table.publish_chunk`.  A generation
        mismatch (a write landed after the decision solved its plan, or
        slipped in between the build and the publish) means the plan prices
        data that no longer exists: the action is *not* applied and ``None``
        is returned, so the caller requeues the chunk and decides again on
        fresh state.  On success the replan decision is recorded and the
        action's mix becomes the chunk's new baseline.
        """
        table = database.table
        chunk_index = action.chunk_index
        snapshot = table.snapshot_chunk(chunk_index)
        if snapshot.generation != action.generation:
            return None
        monitor = database.monitor
        if action.plan is not None:
            # The gate already paid for the layout solve; apply that plan
            # instead of solving it a second time.  The snapshot check
            # above guarantees the chunk still holds the values the plan
            # was built for, and the publish re-checks under the latch.
            replanner = action.replanner
            plan = action.plan

            def builder(v, r, c):
                return replanner.build_chunk_from_plan(plan, v, r, c)
        else:
            planner = database.planner
            sample = monitor.recorded_workload(chunk_index)
            if len(sample) and hasattr(planner, "with_sample"):
                planner = planner.with_sample(sample)
            builder = planner.build_chunk
        if snapshot.values.size:
            rebuilt = table.build_chunk_replacement(snapshot, builder)
            if not table.publish_chunk(snapshot, rebuilt):
                return None
        monitor.reset_chunk(chunk_index)
        with self._state_lock:
            self._baselines[chunk_index] = action.mix
        return self._record(
            ReorgDecision(
                chunk_index=chunk_index,
                drift=action.drift,
                observed_operations=action.observed_operations,
                replanned=True,
                reason="drift above threshold"
                + (", savings beat rebuild charge" if self.cost_gate else ""),
                current_cost_ns=action.current_cost_ns,
                planned_cost_ns=action.planned_cost_ns,
                rebuild_cost_ns=action.rebuild_cost_ns,
            )
        )

    def _record(self, decision: ReorgDecision) -> ReorgDecision:
        with self._state_lock:
            self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------ #
    # Inline (synchronous) lifecycle
    # ------------------------------------------------------------------ #

    def maybe_reorganize(
        self, database: "Database", *, force: bool = False
    ) -> list[ReorgDecision]:
        """Evaluate every active chunk; replan where drift and gate agree.

        Chains :meth:`scan` -> :meth:`decide_chunk` -> :meth:`apply_action`
        inline, so the stall of solving and rebuilding lands inside the
        calling ``Session.execute``.  Returns the decisions made during
        this check (also appended to :attr:`decisions`).  A no-op unless
        the database carries both a monitor and a planner.  ``force``
        bypasses ``check_interval`` (the session's close-time check uses
        it, so drift accumulated by the last execute calls is always
        evaluated once).
        """
        made: list[ReorgDecision] = []
        for chunk_index in self.scan(database, force=force):
            outcome = self.decide_chunk(database, chunk_index)
            if isinstance(outcome, ReorgAction):
                # Decision and apply run back-to-back on the calling thread;
                # single-session callers never see a stale apply.  With
                # concurrent sessions a racing write can still move the
                # generation in between -- the publish then refuses the
                # plan and the inline chain simply skips it (the next scan
                # re-finds the chunk on fresh state).
                decision = self.apply_action(database, outcome)
                if decision is not None:
                    made.append(decision)
            elif outcome is not None:
                made.append(outcome)
        return made

