"""Public session API: the declarative façade over the Casper stack.

This package is the recommended entry point for applications::

    from repro.api import AdaptivePolicy, Database, ReorgPolicy

    db = Database.plan_for(training_workload, keys, payload)
    with db.session(execution=AdaptivePolicy(), reorg=ReorgPolicy()) as s:
        outcome = s.execute(workload)
    report = s.report()

:class:`Database` builds the planner/table/engine/monitor stack from a
declaration; :class:`Session` executes operations through a pluggable
:class:`ExecutionPolicy` (serial, fixed-size vectorized, or adaptive batch
sizing) and runs an automatic, cost-gated reorganization lifecycle
(:class:`ReorgPolicy`) that closes the paper's Fig. 10 online loop.  The
``StorageEngine`` entry points remain available through ``db.engine`` as a
compatibility layer.
"""

from .database import Database
from .policies import (
    AdaptivePolicy,
    ExecutionPolicy,
    SerialPolicy,
    VectorizedPolicy,
    longest_groupable_run,
)
from .reorg import ReorgAction, ReorgDecision, ReorgPolicy
from .reorganizer import Reorganizer
from .session import FollowerSession, Session, SessionReport, SessionResult

__all__ = [
    "AdaptivePolicy",
    "Database",
    "ExecutionPolicy",
    "FollowerSession",
    "ReorgAction",
    "ReorgDecision",
    "ReorgPolicy",
    "Reorganizer",
    "SerialPolicy",
    "Session",
    "SessionReport",
    "SessionResult",
    "VectorizedPolicy",
    "longest_groupable_run",
]
