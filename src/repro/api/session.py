"""Context-managed sessions: declarative execution with a reorg lifecycle.

A :class:`Session` is the unit of interaction with a :class:`Database`: it
owns an :class:`~repro.api.policies.ExecutionPolicy` (how operations are
dispatched) and optionally a reorganization lifecycle, and its
:meth:`execute` replaces direct ``StorageEngine.execute`` /
``execute_batch`` calls.  After every execute call the reorganization
lifecycle gets a chance to act, which makes the paper's Fig. 10 A->C
online loop automatic: drifted chunks are detected, cost-gated and rebuilt
between (or inside) rounds without the caller wiring monitor, planner and
table together by hand.

The lifecycle comes in two shapes: a bare
:class:`~repro.api.reorg.ReorgPolicy` replans *inline* (every drifted
chunk is solved and rebuilt inside the execute call that trips the check),
while a :class:`~repro.api.reorganizer.Reorganizer` wrapping the policy
drains the same replans *incrementally* -- budgeted slices between execute
calls, or a background worker thread -- so no single batch absorbs the
whole reorganization stall.

A database may hand out several live sessions at once (one per thread);
their executions interleave freely.  Isolation is chunk-granular -- the
table's latches share chunks between readers, serialize writers per chunk
and let background replans land copy-on-write with an O(1) publish -- so
concurrent reads proceed *during* background reorganization rather than
stalling behind a session-wide lock.  Note that the engine's access
counter is shared *and* lock-free: a session's ``accesses``/simulated
totals attribute everything charged on the engine while its calls ran --
including work concurrent sessions interleaved -- and racing increments
can drop a small fraction of charges, so per-session simulated costs are
exact only when the session has the database to itself (wall-clock
numbers and result correctness are always exact; see
:class:`~repro.storage.cost_accounting.AccessCounter`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..durability.errors import ReadOnlyError
from ..storage.cost_accounting import AccessCounter, SimulatedCost
from ..workload.operations import Operation, Workload, is_write
from .policies import ExecutionPolicy, SerialPolicy
from .reorg import ReorgDecision, ReorgPolicy
from .reorganizer import Reorganizer

if TYPE_CHECKING:
    from .database import Database


@dataclass
class SessionResult(SimulatedCost):
    """Outcome of one :meth:`Session.execute` call.

    ``accesses`` aggregates the whole call, *including* any reorganization
    work it triggered; ``reorg_ns`` isolates the simulated cost of that
    reorganization (0.0 when nothing was rebuilt).

    With durability attached, ``commit_lsn`` is the WAL watermark covering
    every write this call committed (``None`` on memory-only databases and
    pure-read calls that left the log untouched) and ``durable`` reports
    whether that watermark was fsync-covered when the call returned --
    always true under the ``"always"`` fsync policy; under ``"interval"``
    / ``"os"`` a false means the commit is logged but would not survive a
    power failure yet (:meth:`Session.sync` forces it).

    On a sharded database the single ``commit_lsn`` stays ``None``
    (per-shard WAL watermarks are incomparable) and ``shard_lsns``
    carries the per-shard vector instead: shard -> last commit LSN that
    shard acknowledged for this call (``None`` on single-process
    databases and calls that touched no durable shard).
    """

    results: list
    accesses: AccessCounter
    wall_ns: float
    operations: int
    errors: int
    batch_sizes: list[int] = field(default_factory=list)
    reorg_decisions: list[ReorgDecision] = field(default_factory=list)
    reorg_ns: float = 0.0
    commit_lsn: int | None = None
    durable: bool = True
    shard_lsns: dict[int, int] | None = None


@dataclass
class SessionReport(SimulatedCost):
    """Cumulative account of a session's lifetime."""

    operations: int
    errors: int
    accesses: AccessCounter
    wall_ns: float
    simulated_ns_total: float
    replans: int
    reorg_decisions: list[ReorgDecision] = field(default_factory=list)
    batch_sizes: list[int] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        """Total simulated time in seconds (including reorganization)."""
        return self.simulated_ns_total * 1e-9

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock time spent inside ``execute`` calls."""
        return self.wall_ns * 1e-9

    @property
    def throughput_ops(self) -> float:
        """Operations per second of simulated time."""
        if self.simulated_seconds <= 0:
            return float("inf")
        return self.operations / self.simulated_seconds


class Session:
    """A context-managed execution scope over a :class:`Database`.

    Parameters
    ----------
    database:
        The database façade the session executes against.
    execution:
        The dispatch policy; defaults to :class:`SerialPolicy`.  Pass a
        fresh instance per session -- policies carry adaptive state.
    reorg:
        Optional reorganization lifecycle: a :class:`ReorgPolicy` replans
        drifted chunks inline (inside the execute call that trips the
        check), a :class:`Reorganizer` drains the same replans in budgeted
        increments between execute calls or on a background worker.
        ``None`` disables online replans.

    Use as a context manager::

        with db.session(execution=AdaptivePolicy(), reorg=ReorgPolicy()) as s:
            outcome = s.execute(workload)
        report = s.report()
    """

    def __init__(
        self,
        database: "Database",
        *,
        execution: ExecutionPolicy | None = None,
        reorg: ReorgPolicy | Reorganizer | None = None,
    ) -> None:
        self.database = database
        self.execution: ExecutionPolicy = (
            execution if execution is not None else SerialPolicy()
        )
        self.reorg = reorg
        self._reorganizer = reorg if isinstance(reorg, Reorganizer) else None
        if self._reorganizer is not None:
            # Register against the reorganizer's lifetime: its background
            # worker and work queue survive until the last session of the
            # shared database closes.
            self._reorganizer.register_session(database)
        self._closed = False
        self._counter_start = database.engine.counter.snapshot()
        self._operations = 0
        self._errors = 0
        self._wall_ns = 0.0
        self._batch_sizes: list[int] = []
        self._reorg_decisions: list[ReorgDecision] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # On an exceptional exit, skip the close-time reorganization check:
        # it would solve layouts and rebuild chunks against state from a
        # partially-failed call, and a failure inside it would mask the
        # original exception.
        self.close(reorganize=exc_type is None)

    @property
    def closed(self) -> bool:
        """Whether the session has been closed."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def close(self, *, reorganize: bool = True) -> None:
        """Close the session (idempotent).

        A final reorganization check runs before closing (bypassing the
        policy's ``check_interval``), so drift accumulated by the last
        ``execute`` calls of a short session still gets a chance to trigger
        a replan for the *next* session.  With a :class:`Reorganizer` the
        close of the *last* registered session also drains the pending
        work queue to empty and stops the background worker (earlier
        closers leave both running for the sessions that remain).  Pass
        ``reorganize=False`` to skip the final check (the context manager
        does so on exceptional exits); the last session's close stops a
        reorganizer's worker and clears its queue either way.
        """
        if self._closed:
            return
        if self._reorganizer is not None:
            self._reorg_decisions.extend(
                self._reorganizer.finish(self.database, reorganize=reorganize)
            )
        elif reorganize and self.reorg is not None:
            self._reorg_decisions.extend(
                self.reorg.maybe_reorganize(self.database, force=True)
            )
        self._closed = True

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(
        self, operations: Workload | Sequence[Operation] | Operation
    ) -> SessionResult:
        """Execute operations through the session's policies.

        Accepts a :class:`Workload`, any operation sequence, or a single
        operation.  Results come back in submission order with ``None``
        marking not-found operations, exactly as serial dispatch reports
        them; after execution the reorganization policy (when configured)
        evaluates drift and may rebuild chunks in place.
        """
        self._require_open()
        if isinstance(operations, Operation):
            operations = [operations]
        oplist = list(operations)
        engine = self.database.engine
        sizes_seen = len(self.execution.chosen_batch_sizes)
        start = time.perf_counter_ns()
        # No session-wide lock: the table's chunk latches isolate this
        # call's reads and writes from concurrent sessions and from
        # background replans, whose copy-on-write publishes may land
        # between (or during) the batch slices a policy carves out of the
        # oplist -- pausing only readers of the one chunk being swapped,
        # and only for the O(1) publish.
        outcome = self.execution.execute(engine, oplist)
        batch_sizes = list(self.execution.chosen_batch_sizes[sizes_seen:])
        decisions: list[ReorgDecision] = []
        reorg_ns = 0.0
        accesses = outcome.accesses
        if self.reorg is not None:
            before = engine.counter.snapshot()
            if self._reorganizer is not None:
                decisions = self._reorganizer.after_execute(self.database)
            else:
                decisions = self.reorg.maybe_reorganize(self.database)
            reorg_diff = engine.counter.diff(before)
            reorg_ns = reorg_diff.cost(self.database.constants)
            accesses = accesses + reorg_diff
        wall_ns = float(time.perf_counter_ns() - start)
        self._operations += outcome.operations
        self._errors += outcome.errors
        self._wall_ns += wall_ns
        self._batch_sizes.extend(batch_sizes)
        self._reorg_decisions.extend(decisions)
        commit_lsn: int | None = None
        durable = True
        manager = self.database.durability
        if manager is not None and manager.last_lsn > 0:
            # The appended watermark covers this call's writes (it may also
            # cover a concurrent session's -- watermarks are global).
            commit_lsn = manager.last_lsn
            durable = manager.durable_lsn >= commit_lsn
        return SessionResult(
            results=outcome.results,
            accesses=accesses,
            wall_ns=wall_ns,
            operations=outcome.operations,
            errors=outcome.errors,
            batch_sizes=batch_sizes,
            reorg_decisions=decisions,
            reorg_ns=reorg_ns,
            commit_lsn=commit_lsn,
            durable=durable,
        )

    def sync(self) -> int:
        """Force the database's WAL to disk; returns the durable LSN.

        The commit-acknowledgement escape hatch for the relaxed fsync
        policies: after ``sync()`` every ``commit_lsn`` this session was
        handed is power-failure durable.
        """
        self._require_open()
        manager = self.database.durability
        if manager is None:
            raise RuntimeError("no durability manager attached")
        return manager.sync()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def reorg_decisions(self) -> list[ReorgDecision]:
        """All reorganization decisions made during this session."""
        return list(self._reorg_decisions)

    def report(self) -> SessionReport:
        """Cumulative session account (valid during and after the session).

        ``accesses`` and the simulated total are measured as the engine
        counter movement since the session opened, so they include
        reorganization charges and any compatibility-layer calls made on the
        same engine while the session was active.
        """
        accesses = self.database.engine.counter.diff(self._counter_start)
        replans = sum(
            1 for decision in self._reorg_decisions if decision.replanned
        )
        return SessionReport(
            operations=self._operations,
            errors=self._errors,
            accesses=accesses,
            wall_ns=self._wall_ns,
            simulated_ns_total=accesses.cost(self.database.constants),
            replans=replans,
            reorg_decisions=list(self._reorg_decisions),
            batch_sizes=list(self._batch_sizes),
        )


class FollowerSession(Session):
    """A read-only session pinned to a follower's replica table.

    Handed out by :meth:`Database.session` on a database built with
    :meth:`Database.follow`.  Executes exactly like a :class:`Session`
    except that write operations are refused up front
    (:class:`~repro.durability.errors.ReadOnlyError` -- the replica's only
    writer is the replication applier) and reorganization is disabled (a
    replan would race the applier's bulk writes for no benefit: the
    replica exists to serve reads, and its layout follows its snapshot).

    Bounded-lag introspection rides along: :attr:`lag_lsn` /
    :attr:`caught_up` report the replica's distance from the last
    exchanged durable watermark, and :meth:`refresh` synchronously
    applies whatever became durable since the last poll -- read-your-
    writes for callers that just committed on the primary and can ask
    the follower to catch up before querying.
    """

    def __init__(self, database: "Database", *, execution=None) -> None:
        super().__init__(database, execution=execution, reorg=None)

    def execute(
        self, operations: Workload | Sequence[Operation] | Operation
    ) -> SessionResult:
        if isinstance(operations, Operation):
            operations = [operations]
        oplist = list(operations)
        for operation in oplist:
            if is_write(operation):
                raise ReadOnlyError(
                    f"follower sessions are read-only: refusing "
                    f"{operation.kind.name} on the replica (writes go to "
                    "the primary; the replication applier is the replica's "
                    "only writer)"
                )
        return super().execute(oplist)

    @property
    def follower(self):
        """The :class:`~repro.replication.follower.Follower` backing
        this session's database."""
        return self.database.follower

    @property
    def applied_lsn(self) -> int:
        """LSN of the last commit visible to this session's reads."""
        return self.database.follower.applied_lsn

    @property
    def lag_lsn(self) -> int:
        """Commits the replica trails its known durable target by."""
        return self.database.follower.lag_lsn

    @property
    def caught_up(self) -> bool:
        """Whether the replica has applied everything it may apply."""
        return self.database.follower.caught_up

    def refresh(self) -> int:
        """Synchronously apply newly durable records; returns the number
        of batches applied.  Serializes with the background tailer on
        the ``replica_apply`` lock."""
        self._require_open()
        return self.database.follower.poll()
