"""Pluggable execution policies: how a session dispatches operations.

A :class:`Session` hands every ``execute(ops)`` call to an
:class:`ExecutionPolicy`, which decides *how* the operations reach the
storage engine -- one at a time, in fixed-size vectorized batches, or in
batches whose size is tuned online.  The policy contract is that dispatch
strategy never changes semantics:

* **results** are identical to per-operation serial dispatch (submission
  order, ``None`` marking not-found operations), and
* **simulated access counts** are identical for reads and key updates and
  never larger for insert/delete runs (whose coalesced ripple sweeps charge
  each touched block once per batch), per the
  :meth:`repro.storage.engine.StorageEngine.execute_batch` contract and its
  documented duplicate-delete caveat.

Policies are stateful (adaptive estimates, the record of chosen batch
sizes), so use a fresh instance per session / workload run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Protocol, Sequence, runtime_checkable

from ..storage.engine import BatchResult, StorageEngine, batch_group_keys
from ..storage.errors import ValueNotFoundError
from ..workload.operations import Operation


@runtime_checkable
class ExecutionPolicy(Protocol):
    """Protocol every execution policy implements."""

    #: Human-readable policy name (used in reports and benchmark output).
    name: str

    #: Batch sizes chosen so far, in dispatch order (empty for serial).
    chosen_batch_sizes: list[int]

    def execute(
        self, engine: StorageEngine, operations: Sequence[Operation]
    ) -> BatchResult:
        """Dispatch ``operations`` against ``engine`` and merge the outcome."""
        ...


def longest_groupable_run(operations: Sequence[Operation]) -> int:
    """Length of the longest run ``execute_batch`` would group as one batch.

    Run detection uses :func:`repro.storage.engine.batch_group_keys`, the
    same definition the batch executor groups by, so the adaptive policy's
    run-length heuristic cannot drift from the engine's actual grouping.
    """
    longest = 0
    current_key = object()
    current = 0
    for key in batch_group_keys(operations):
        if key is not None and key == current_key:
            current += 1
        else:
            current = 1 if key is not None else 0
            current_key = key
        longest = max(longest, current)
    return longest


def _merged_result(
    engine: StorageEngine,
    results: list,
    errors: int,
    operations: int,
    before,
    start_ns: int,
) -> BatchResult:
    return BatchResult(
        results=results,
        accesses=engine.counter.diff(before),
        wall_ns=float(time.perf_counter_ns() - start_ns),
        operations=operations,
        errors=errors,
    )


@dataclass
class SerialPolicy:
    """Dispatch every operation individually through ``engine.execute``.

    This is the reference policy: the vectorized policies are contractually
    equivalent to it.  Not-found operations yield ``None`` results and count
    as errors, exactly as on the batched paths.
    """

    name: str = "serial"
    chosen_batch_sizes: list[int] = field(default_factory=list)

    def execute(
        self, engine: StorageEngine, operations: Sequence[Operation]
    ) -> BatchResult:
        oplist = list(operations)
        before = engine.counter.snapshot()
        start = time.perf_counter_ns()
        results = []
        errors = 0
        for operation in oplist:
            try:
                results.append(engine.execute(operation).result)
            except ValueNotFoundError:
                results.append(None)
                errors += 1
        return _merged_result(
            engine, results, errors, len(oplist), before, start
        )


class _BatchedDispatch:
    """Shared ``execute`` for policies that dispatch via ``batches()``.

    Subclasses provide ``batches(engine, operations)`` yielding
    ``(batch_size, BatchResult)`` per slice; ``execute`` merges the slices
    into one :class:`BatchResult` with the same error/result semantics as
    serial dispatch.
    """

    def execute(
        self, engine: StorageEngine, operations: Sequence[Operation]
    ) -> BatchResult:
        oplist = list(operations)
        before = engine.counter.snapshot()
        start = time.perf_counter_ns()
        results = []
        errors = 0
        for _, outcome in self.batches(engine, oplist):
            results.extend(outcome.results)
            errors += outcome.errors
        return _merged_result(
            engine, results, errors, len(oplist), before, start
        )


@dataclass
class VectorizedPolicy(_BatchedDispatch):
    """Dispatch in fixed-size slices through ``engine.execute_batch``.

    ``batch_size`` bounds each slice; within a slice, maximal runs of
    compatible operations ride the vectorized fast paths (batched
    ``searchsorted`` probes, coalesced bulk writes).
    """

    batch_size: int = 256
    name: str = "vectorized"
    chosen_batch_sizes: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")

    def batches(
        self, engine: StorageEngine, operations: Sequence[Operation]
    ) -> Iterator[tuple[int, BatchResult]]:
        """Yield ``(batch_size, outcome)`` per dispatched slice."""
        oplist = list(operations)
        for start in range(0, len(oplist), self.batch_size):
            chunk = oplist[start : start + self.batch_size]
            outcome = engine.execute_batch(chunk)
            self.chosen_batch_sizes.append(len(chunk))
            yield len(chunk), outcome


@dataclass
class AdaptivePolicy(_BatchedDispatch):
    """Tune the batch size online from observed latency and run lengths.

    The policy walks a doubling/halving ladder of batch sizes between
    ``min_batch_size`` and ``max_batch_size``.  After every dispatched slice
    it records an exponential moving average of the per-operation wall-clock
    latency for the slice's size (simulated latency is recorded alongside,
    in :attr:`observations`), then picks the next size:

    * unexplored neighbour sizes are probed first, largest first -- and when
      the slice consisted of a single groupable run truncated by the batch
      boundary, growing is forced before shrinking, since a longer batch
      directly extends the vectorized run;
    * once the neighbourhood is explored, the policy moves to the neighbour
      whose latency estimate beats the current size by more than
      ``tolerance``, so wall-clock noise cannot make it flap.

    Dispatch still goes through ``engine.execute_batch`` slice by slice, so
    results and simulated access counts obey the same equivalence contract
    as :class:`VectorizedPolicy` regardless of the sizes chosen.
    """

    initial_batch_size: int = 128
    min_batch_size: int = 16
    max_batch_size: int = 4_096
    smoothing: float = 0.5
    tolerance: float = 0.05
    name: str = "adaptive"
    chosen_batch_sizes: list[int] = field(default_factory=list)
    #: ``(batch_size, operations, wall_ns, simulated_ns, longest_run)`` per
    #: dispatched slice, in dispatch order.
    observations: list[tuple[int, int, float, float, int]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        if not 0 < self.min_batch_size <= self.max_batch_size:
            raise ValueError("need 0 < min_batch_size <= max_batch_size")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self._current = min(
            max(self.initial_batch_size, self.min_batch_size),
            self.max_batch_size,
        )
        self._estimates: dict[int, float] = {}

    @property
    def current_batch_size(self) -> int:
        """The size the next dispatched slice will use."""
        return self._current

    def _neighbours(self, size: int) -> list[int]:
        candidates = {size}
        if size // 2 >= self.min_batch_size:
            candidates.add(size // 2)
        if size * 2 <= self.max_batch_size:
            candidates.add(size * 2)
        return sorted(candidates)

    def observe(
        self,
        batch_size: int,
        operations: int,
        wall_ns: float,
        simulated_ns: float,
        longest_run: int,
    ) -> None:
        """Feed one slice's measurements back and pick the next batch size."""
        self.observations.append(
            (batch_size, operations, wall_ns, simulated_ns, longest_run)
        )
        if operations <= 0:
            return
        if operations < batch_size:
            # A truncated tail slice measures fewer operations than the
            # chosen size; skip adaptation rather than learn from it.
            return
        ns_per_op = max(wall_ns, 1.0) / operations
        previous = self._estimates.get(batch_size)
        self._estimates[batch_size] = (
            ns_per_op
            if previous is None
            else previous + self.smoothing * (ns_per_op - previous)
        )
        neighbours = self._neighbours(batch_size)
        unexplored = [n for n in neighbours if n not in self._estimates]
        truncated_run = longest_run >= operations
        if unexplored:
            if truncated_run:
                grow = [n for n in unexplored if n > batch_size]
                self._current = max(grow) if grow else max(unexplored)
            else:
                self._current = max(unexplored)
            return
        best = min(neighbours, key=lambda n: self._estimates[n])
        if best != batch_size and self._estimates[best] < self._estimates[
            batch_size
        ] * (1.0 - self.tolerance):
            self._current = best
        else:
            self._current = batch_size

    def batches(
        self, engine: StorageEngine, operations: Sequence[Operation]
    ) -> Iterator[tuple[int, BatchResult]]:
        """Yield ``(batch_size, outcome)`` per dispatched slice, adapting."""
        oplist = list(operations)
        cursor = 0
        while cursor < len(oplist):
            size = self._current
            chunk = oplist[cursor : cursor + size]
            cursor += len(chunk)
            outcome = engine.execute_batch(chunk)
            self.chosen_batch_sizes.append(len(chunk))
            self.observe(
                size,
                len(chunk),
                outcome.wall_ns,
                outcome.simulated_ns(engine.constants),
                longest_groupable_run(chunk),
            )
            yield len(chunk), outcome
