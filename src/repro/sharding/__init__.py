"""Router-level sharding: fan chunk spans out across worker processes.

The chunk-level :class:`~repro.storage.partition_index.PartitionIndex`
fence idea lifted one level up: a :class:`ShardMap` routes keys to
worker processes, a :class:`ShardCluster` owns the processes and their
shared-memory channels, and :class:`ShardedDatabase` /
:class:`ShardedSession` rebuild the ``Database`` / ``Session`` façade on
top with contractual serial-oracle equality of results and errors.
Entry point: ``Database.sharded(keys, ..., n_shards=4)``.
"""

from .cluster import DEFAULT_ARENA_BYTES, ExecuteReply, ShardChannel, ShardCluster
from .database import ShardedDatabase, ShardedSession
from .errors import ShardError, WorkerDiedError
from .shard_map import ShardMap

__all__ = [
    "DEFAULT_ARENA_BYTES",
    "ExecuteReply",
    "ShardChannel",
    "ShardCluster",
    "ShardError",
    "ShardMap",
    "ShardedDatabase",
    "ShardedSession",
    "WorkerDiedError",
]
