"""Shard worker process: one shard's database behind a command channel.

``worker_main`` is the spawn target of :class:`~repro.sharding.cluster
.ShardCluster`.  It connects back to the dispatcher's listener,
identifies itself with a ``hello`` frame, then serves the dispatch verbs
over the same length-prefixed JSON framing the replication transport
speaks (:mod:`repro.ipc.framing`):

``attach``
    Build (or recover) this shard's :class:`~repro.api.database.Database`
    -- slice arrays arrive through the channel's shared-memory arena, or
    the worker runs ``Database.open`` on its per-shard durability root --
    and open the long-lived session the execute verb runs through.  The
    session carries the configured execution policy and, when requested,
    its own :class:`~repro.api.reorganizer.Reorganizer`, so each shard
    reorganizes independently off the other shards' paths.
``execute``
    Decode a per-shard operation list, run it through the session, and
    reply with the encoded results plus the batch's error count, access
    tally and durability watermarks.  Writes commit through this shard's
    *own* :class:`~repro.durability.manager.DurabilityManager` -- the
    per-shard WALs are what unserializes durable write batches that a
    single-process database would funnel through one ``wal_commit`` lock.
``take`` / ``put`` / ``forget``
    The two-phase cross-shard move protocol.  ``take`` removes one row of
    a key (the deterministic oldest copy, exactly the serial table's
    delete victim) and logs ``[move_intent, delete]`` as one WAL record
    before replying with the payload; ``put`` inserts the carried row on
    the target shard under ``[move_commit, insert]``; ``forget`` logs the
    source's resolution marker once the dispatcher has the target's ack.
    A crash anywhere in the window leaves markers the dispatcher's
    re-open scan resolves (see ``ShardedDatabase.open``).  The move
    fault hooks (:data:`repro.durability.faults.MOVE_POINTS`) kill the
    worker at each window edge to test exactly that.
``checkpoint`` / ``sync`` / ``stats`` / ``shutdown``
    Durability lifecycle, introspection (rows, per-kind statistics,
    replans, recorded discipline violations -- the CI shard job asserts
    zero), and orderly exit.

The worker is single-threaded on purpose: per-shard FIFO execution is
half of the serial-equivalence argument (the other half is the shard
map's disjoint key spaces).  Inside one batch the engine still uses the
table's chunk latches, so a worker-side reorganizer thread interleaves
safely.
"""

from __future__ import annotations

import os
import socket

from ..ipc import framing
from ..ipc.shm import ShmArena
from . import codec

#: Fallback frame bound; attach can lower/raise it via config later.
MAX_FRAME = framing.DEFAULT_MAX_FRAME


def _build_database(request: dict, reader: codec.ArenaReader):
    """Construct this shard's database per the attach request."""
    from ..api.database import Database
    from ..durability.manager import DurabilityConfig
    from ..storage.layouts import LayoutKind
    from ..workload.operations import Workload

    config = request.get("config", {})
    durability_root = request.get("durability")
    durability = None
    if durability_root is not None:
        durability = DurabilityConfig(
            root=durability_root, fsync=config.get("fsync", "always")
        )
    if request["mode"] == "open":
        return Database.open(durability)
    keys = reader.get(request["keys"])
    payload = None
    if "payload" in request:
        # Width travels explicitly: an empty shard slice cannot infer it.
        payload = reader.get(request["payload"]).reshape(
            -1, int(request["width"])
        )
    common = dict(
        chunk_size=int(config.get("chunk_size", 1 << 20)),
        block_values=int(config.get("block_values", 4096)),
        payload_names=config.get("payload_names"),
        durability=durability,
    )
    plan = request.get("plan")
    if plan is not None:
        sample = Workload(
            operations=codec.decode_ops(plan, reader), name="shard-sample"
        )
        return Database.plan_for(sample, keys, payload, **common)
    return Database.from_rows(
        keys,
        payload,
        layout=LayoutKind(config.get("layout", "equi")),
        partitions=int(config.get("partitions", 16)),
        **common,
    )


def _open_session(database, config: dict):
    from ..api.policies import AdaptivePolicy, SerialPolicy, VectorizedPolicy
    from ..api.reorg import ReorgPolicy
    from ..api.reorganizer import Reorganizer

    policy_name = config.get("execution", "serial")
    execution = {
        "serial": SerialPolicy,
        "vectorized": VectorizedPolicy,
        "adaptive": AdaptivePolicy,
    }[policy_name]()
    reorg = None
    if config.get("reorg"):
        # Each worker drains its own replans between batches; background
        # threads stay inside the worker process.
        reorg = Reorganizer(ReorgPolicy())
    return database.session(execution=execution, reorg=reorg)


def worker_main(host: str, port: int, shard: int, token: str) -> None:
    """Entry point of one shard worker process (spawn target)."""
    from repro import discipline

    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    framing.send_frame(
        sock, {"verb": "hello", "shard": shard, "token": token},
        max_frame=MAX_FRAME,
    )

    database = None
    session = None
    arena: ShmArena | None = None
    batches = 0
    takes = puts = forgets = 0
    faults: dict = {}

    def close_database() -> None:
        nonlocal database, session
        if session is not None and not session.closed:
            session.close()
        if database is not None:
            database.close()
        database = session = None

    try:
        while True:
            try:
                request = framing.recv_frame(sock, max_frame=MAX_FRAME)
            except framing.FrameError:
                break
            if request is None:
                break  # dispatcher went away; per-shard WAL has the state
            verb = request.get("verb")
            reply: dict = {"ok": True}
            try:
                if verb == "attach":
                    close_database()
                    if arena is not None:
                        arena.close()
                        arena = None
                    if request.get("arena"):
                        arena = ShmArena.attach(request["arena"])
                    reader = codec.ArenaReader(arena)
                    database = _build_database(request, reader)
                    session = _open_session(database, request.get("config", {}))
                    faults = request.get("faults") or {}
                    batches = takes = puts = forgets = 0
                    reply["rows"] = int(database.num_rows)
                    reply["payload_names"] = list(database.table.payload_names)
                elif verb == "execute":
                    batches += 1
                    if faults.get("exit_before_apply") == batches:
                        os._exit(1)
                    reader = codec.ArenaReader(arena)
                    oplist = codec.decode_ops(request["ops"], reader)
                    outcome = session.execute(oplist)
                    if faults.get("exit_before_ack") == batches:
                        # Simulates a crash after the WAL append + fsync
                        # but before the dispatcher hears back: recovery
                        # must replay this batch from the shard's log.
                        os._exit(1)
                    writer = codec.ArenaWriter(arena)
                    reply["results"] = codec.encode_results(
                        oplist,
                        outcome.results,
                        writer,
                        database.table.payload_names,
                    )
                    reply["errors"] = int(outcome.errors)
                    reply["accesses"] = _counter_meta(outcome.accesses)
                    reply["wall_ns"] = float(outcome.wall_ns)
                    reply["commit_lsn"] = outcome.commit_lsn
                    reply["durable"] = bool(outcome.durable)
                elif verb == "take":
                    takes += 1
                    if faults.get("move.take.before_apply") == takes:
                        os._exit(1)
                    reply.update(
                        _take(
                            database,
                            int(request["key"]),
                            int(request["new_key"]),
                            int(request["move"]),
                        )
                    )
                    if reply.get("found") and (
                        faults.get("move.take.before_ack") == takes
                    ):
                        # The intent + delete are on the source WAL but the
                        # dispatcher never hears the payload: recovery must
                        # resolve the orphaned intent from the log alone.
                        os._exit(1)
                elif verb == "put":
                    puts += 1
                    if faults.get("move.put.before_apply") == puts:
                        os._exit(1)
                    reply.update(
                        _put(
                            database,
                            int(request["key"]),
                            request.get("payload"),
                            int(request["move"]),
                        )
                    )
                    if faults.get("move.put.before_ack") == puts:
                        # The commit + insert are on the target WAL but the
                        # source never gets its forget: the re-open scan
                        # must see the commit and only discard the intent.
                        os._exit(1)
                elif verb == "forget":
                    forgets += 1
                    if faults.get("move.forget.before_apply") == forgets:
                        os._exit(1)
                    database.engine.log_move_forget(int(request["move"]))
                    reply.update(_watermark(database))
                elif verb == "checkpoint":
                    if database.durability is not None:
                        info = database.checkpoint()
                        reply["snapshot_lsn"] = int(info.lsn)
                elif verb == "sync":
                    if database.durability is not None:
                        reply["durable_lsn"] = int(database.sync())
                elif verb == "stats":
                    reply.update(_stats(database, session, discipline))
                elif verb == "shutdown":
                    framing.send_frame(sock, reply, max_frame=MAX_FRAME)
                    break
                else:
                    reply = {"ok": False, "error": f"unknown verb {verb!r}"}
            except Exception as exc:  # surface worker failures to the peer
                reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            try:
                framing.send_frame(sock, reply, max_frame=MAX_FRAME)
            except framing.FrameError:
                break
    finally:
        close_database()
        if arena is not None:
            arena.close()
        try:
            sock.close()
        except OSError:
            pass


def _take(database, key: int, new_key: int, move_id: int) -> dict:
    """Take one row of ``key`` for a move; reply with its payload (or miss).

    ``Table.take_row`` removes the deterministic oldest copy -- the same
    victim a plain delete would choose -- and hands back exactly the
    payload that left the table, keeping the (key, payload) multiset
    faithful when duplicates carry distinct payloads.  With durability
    attached the engine logs ``[move_intent, delete]`` atomically before
    this reply is sent.
    """
    from ..storage.errors import ValueNotFoundError

    before = database.engine.counter.snapshot()
    try:
        outcome = database.engine.take_for_move(key, new_key, move_id)
    except ValueNotFoundError:
        diff = database.engine.counter.diff(before)
        return {"found": False, "accesses": _counter_meta(diff)}
    _, payload_row = outcome.result
    reply = {
        "found": True,
        "payload": [int(value) for value in payload_row],
        "accesses": _counter_meta(outcome.accesses),
    }
    reply.update(_watermark(database))
    return reply


def _put(database, key: int, payload, move_id: int) -> dict:
    """Insert the carried row of a move under ``[move_commit, insert]``."""
    outcome = database.engine.apply_move_put(key, payload, move_id)
    reply = {"accesses": _counter_meta(outcome.accesses)}
    reply.update(_watermark(database))
    return reply


def _watermark(database) -> dict:
    """This shard's durability watermark, as execute replies report it."""
    manager = database.durability
    if manager is None:
        return {"commit_lsn": None, "durable": True}
    lsn = int(manager.last_lsn)
    return {"commit_lsn": lsn, "durable": bool(manager.durable_lsn >= lsn)}


def _stats(database, session, discipline) -> dict:
    replans = 0
    if session is not None and session.reorg is not None:
        reorg = session.reorg
        replans = int(getattr(reorg, "replans", 0))
    durable_lsn = None
    if database is not None and database.durability is not None:
        durable_lsn = int(database.durability.durable_lsn)
    return {
        "rows": int(database.num_rows) if database is not None else 0,
        "chunks": int(database.num_chunks) if database is not None else 0,
        "operations": dict(database.statistics.operations)
        if database is not None
        else {},
        "replans": replans,
        "violations": len(discipline.violations()),
        "durable_lsn": durable_lsn,
    }


def _counter_meta(counter) -> dict:
    return {
        "rr": int(counter.random_reads),
        "rw": int(counter.random_writes),
        "sr": int(counter.seq_reads),
        "sw": int(counter.seq_writes),
        "ip": int(counter.index_probes),
    }
