"""Worker-process pool and per-shard command channels.

:class:`ShardCluster` owns the process side of sharding: it binds one
loopback listener, spawns ``n_shards`` worker processes
(:func:`~repro.sharding.worker.worker_main`, ``spawn`` context so no
parent state leaks through ``fork``), and pairs each accepted connection
with its shard by the worker's authenticated ``hello`` frame.  Each pair
becomes a :class:`ShardChannel`: one socket, one shared-memory arena for
bulk arrays, and a frame lock so request/reply pairs never interleave.

The cluster is deliberately separable from the data: ``attach`` can be
sent repeatedly (property tests re-load fresh data into a long-lived
pool instead of paying process spawn per example), and
:meth:`ShardCluster.execute_round` is the only dispatch primitive -- send
every shard its sub-batch, then collect every reply, so workers compute
concurrently while the dispatcher blocks on the slowest one.

Locking (registered in :data:`repro.discipline.LOCK_ORDER`): the cluster
lock ``shard_state`` serializes rounds and lifecycle against each other;
each channel's ``shard_channel`` lock serializes frames on that one
socket.  ``shard_state`` ranks outside ``shard_channel``; neither is ever
taken from a worker process.
"""

from __future__ import annotations

import multiprocessing
import secrets
import socket
from dataclasses import dataclass

from repro import discipline
from repro.discipline import guarded_class

from ..ipc import framing
from ..ipc.shm import ShmArena
from ..storage.cost_accounting import AccessCounter
from . import codec
from .errors import ShardError, WorkerDiedError

#: Default arena capacity per channel; arrays beyond it fall back to
#: inline JSON in the frame (slower, never wrong).
DEFAULT_ARENA_BYTES = 1 << 23

#: Accept/connect deadline for worker bootstrap.
_SPAWN_TIMEOUT_S = 60.0

#: Per-request socket deadline: long enough for a worker-side checkpoint
#: or a huge batch, short enough that a hung worker fails the test run
#: instead of wedging it.
_REQUEST_TIMEOUT_S = 120.0


@dataclass
class ExecuteReply:
    """One shard's decoded reply to an ``execute`` frame."""

    results: list
    errors: int
    accesses: AccessCounter
    wall_ns: float
    commit_lsn: int | None
    durable: bool


def _decode_counter(meta: dict | None) -> AccessCounter:
    if not meta:
        return AccessCounter()
    return AccessCounter(
        random_reads=meta.get("rr", 0),
        random_writes=meta.get("rw", 0),
        seq_reads=meta.get("sr", 0),
        seq_writes=meta.get("sw", 0),
        index_probes=meta.get("ip", 0),
    )


@guarded_class
class ShardChannel:
    """One worker's command channel: socket + arena + frame lock."""

    def __init__(
        self, shard: int, sock: socket.socket, arena: ShmArena
    ) -> None:
        self.shard = shard
        self.arena = arena
        self._lock = discipline.make_lock("shard_channel")
        with self._lock:
            self._sock = sock

    # -- frame plumbing (socket passed in: ``_sock`` reads stay under
    #    ``shard_channel`` in the public methods) ----------------------- #

    def _send(self, sock, frame: dict) -> None:
        if sock is None:
            raise WorkerDiedError(self.shard, "channel is closed")
        try:
            framing.send_frame(sock, frame)
        except framing.FrameError as exc:
            raise WorkerDiedError(self.shard, str(exc)) from exc

    def _recv(self, sock) -> dict:
        if sock is None:
            raise WorkerDiedError(self.shard, "channel is closed")
        try:
            reply = framing.recv_frame(sock)
        except framing.FrameError as exc:
            raise WorkerDiedError(self.shard, str(exc)) from exc
        if reply is None:
            raise WorkerDiedError(self.shard, "worker closed the connection")
        if not reply.get("ok"):
            raise ShardError(
                f"shard {self.shard} rejected request: {reply.get('error')}"
            )
        return reply

    # -- public request surface ---------------------------------------- #

    def request(self, frame: dict) -> dict:
        """One synchronous request/reply exchange."""
        with self._lock:
            sock = self._sock
            self._send(sock, frame)
            return self._recv(sock)

    def send_execute(self, oplist) -> None:
        """Encode and send an ``execute`` frame (reply read separately)."""
        with self._lock:
            sock = self._sock
            writer = codec.ArenaWriter(self.arena)
            self._send(
                sock,
                {"verb": "execute", "ops": codec.encode_ops(oplist, writer)},
            )

    def recv_execute(self) -> ExecuteReply:
        """Receive and decode the reply to :meth:`send_execute`."""
        with self._lock:
            reply = self._recv(self._sock)
        reader = codec.ArenaReader(self.arena)
        return ExecuteReply(
            results=codec.decode_results(reply["results"], reader),
            errors=int(reply.get("errors", 0)),
            accesses=_decode_counter(reply.get("accesses")),
            wall_ns=float(reply.get("wall_ns", 0.0)),
            commit_lsn=reply.get("commit_lsn"),
            durable=bool(reply.get("durable", True)),
        )

    def close(self) -> None:
        """Drop the socket and release the arena (idempotent)."""
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        self.arena.close()


@guarded_class
class ShardCluster:
    """A pool of shard worker processes plus their channels."""

    def __init__(
        self, n_shards: int, *, arena_bytes: int = DEFAULT_ARENA_BYTES
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.n_shards = int(n_shards)
        self.arena_bytes = int(arena_bytes)
        self._lock = discipline.make_lock("shard_state")
        with self._lock:
            self._channels: dict[int, ShardChannel] = {}
            self._processes: dict[int, multiprocessing.process.BaseProcess] = {}
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "ShardCluster":
        """Spawn the workers and pair their channels (idempotent)."""
        if self._started:
            return self
        from .worker import worker_main

        token = secrets.token_hex(16)
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(_SPAWN_TIMEOUT_S)
        host, port = listener.getsockname()[:2]
        context = multiprocessing.get_context("spawn")
        processes: dict[int, multiprocessing.process.BaseProcess] = {}
        channels: dict[int, ShardChannel] = {}
        try:
            for shard in range(self.n_shards):
                process = context.Process(
                    target=worker_main,
                    args=(host, port, shard, token),
                    name=f"shard-worker-{shard}",
                    daemon=True,
                )
                process.start()
                processes[shard] = process
            for _ in range(self.n_shards):
                conn, _ = listener.accept()
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                conn.settimeout(_REQUEST_TIMEOUT_S)
                hello = framing.recv_frame(conn)
                if (
                    hello is None
                    or hello.get("verb") != "hello"
                    or hello.get("token") != token
                    or hello.get("shard") not in processes
                ):
                    conn.close()
                    raise ShardError(f"bad worker hello: {hello!r}")
                shard = int(hello["shard"])
                channels[shard] = ShardChannel(
                    shard, conn, ShmArena.create(self.arena_bytes)
                )
        except Exception:
            for channel in channels.values():
                channel.close()
            for process in processes.values():
                process.terminate()
            raise
        finally:
            listener.close()
        with self._lock:
            self._channels = channels
            self._processes = processes
        self._started = True
        return self

    def stop(self) -> None:
        """Shut workers down politely, then make sure they are gone."""
        with self._lock:
            channels = dict(self._channels)
            processes = dict(self._processes)
            self._channels = {}
            self._processes = {}
        self._started = False
        for channel in channels.values():
            try:
                channel.request({"verb": "shutdown"})
            except (ShardError, OSError):
                pass
            channel.close()
        for process in processes.values():
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()

    def kill(self, shard: int) -> None:
        """SIGKILL one worker (crash-recovery tests)."""
        with self._lock:
            process = self._processes.get(shard)
        if process is not None:
            process.kill()
            process.join(timeout=5.0)

    def alive(self, shard: int) -> bool:
        """Whether the shard's worker process is still running."""
        with self._lock:
            process = self._processes.get(shard)
        return process is not None and process.is_alive()

    def __enter__(self) -> "ShardCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def channel(self, shard: int) -> ShardChannel:
        """The command channel of one shard."""
        with self._lock:
            try:
                return self._channels[shard]
            except KeyError:
                raise ShardError(f"no channel for shard {shard}") from None

    def request_all(self, frame: dict) -> dict[int, dict]:
        """Send one verb frame to every shard; collect replies by shard."""
        with self._lock:
            channels = dict(self._channels)
        return {
            shard: channel.request(dict(frame))
            for shard, channel in sorted(channels.items())
        }

    def execute_round(
        self, shard_ops: dict[int, list]
    ) -> dict[int, ExecuteReply]:
        """Fan one round of per-shard sub-batches out and collect replies.

        All sends complete before the first receive blocks, so every
        involved worker executes concurrently; the round returns when the
        slowest one replies.  Rounds are serialized on ``shard_state`` --
        one in-flight round at a time keeps each arena single-writer.
        """
        with self._lock:
            channels = {
                shard: self._channels[shard]
                for shard in shard_ops
                if shard in self._channels
            }
        missing = set(shard_ops) - set(channels)
        if missing:
            raise ShardError(f"no channel for shards {sorted(missing)}")
        for shard, oplist in shard_ops.items():
            channels[shard].send_execute(oplist)
        return {
            shard: channels[shard].recv_execute() for shard in shard_ops
        }
