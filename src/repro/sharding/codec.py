"""Wire codec for shard dispatch: operations out, results back.

Frames (:mod:`repro.ipc.framing`) carry only small JSON descriptors; every
``int64`` array -- point-query key batches, range bounds, insert payload
rows, result row ids and payload gathers -- is appended to the channel's
shared-memory arena (:class:`repro.ipc.shm.ShmArena`) and referenced by
``{"o": byte_offset, "n": element_count}``.  Arrays that do not fit the
arena (or when no arena is attached) fall back to inline JSON lists:
capacity bounds performance, never correctness.

The result encoding mirrors exactly what
:meth:`repro.api.session.Session.execute` puts in ``results``:

========================  =============================================
serial result entry        wire form
========================  =============================================
``None`` (miss)            ``{"t": "z"}``
``int`` (count / rowid)    ``{"t": "i", "v": ...}``
``int64`` array            ``{"t": "a", "v": <array>}``
``list[Row]`` (Q1)         ``{"t": "r", "c": .., "r": .., "p": ..}``
``list[list[Row]]``        ``{"t": "rr", "c": .., "r": .., "p": ..}``
========================  =============================================

Row blocks ship ``(counts, rowids, payload_values)`` -- the dispatcher
rebuilds :class:`~repro.storage.table.Row` objects with the keys it
already knows from the submitted operation, after offsetting local row
ids by the shard's base (load-order global ids).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ipc.shm import ShmArena
from ..storage.table import Row
from ..workload import operations as ops
from .errors import ShardError

_I64 = np.dtype(np.int64)


class ArenaWriter:
    """Appends int64 arrays to an arena from offset 0; overflow inlines."""

    def __init__(self, arena: ShmArena | None) -> None:
        self._buf = arena.buf if arena is not None else None
        self._capacity = arena.size if arena is not None else 0
        self._offset = 0

    def put(self, values: np.ndarray) -> dict:
        arr = np.ascontiguousarray(values, dtype=_I64)
        nbytes = arr.nbytes
        if self._buf is None or self._offset + nbytes > self._capacity:
            return {"v": arr.tolist()}
        end = self._offset + nbytes
        self._buf[self._offset:end] = arr.tobytes()
        descriptor = {"o": self._offset, "n": int(arr.size)}
        self._offset = end
        return descriptor


class ArenaReader:
    """Resolves :class:`ArenaWriter` descriptors back to owned arrays."""

    def __init__(self, arena: ShmArena | None) -> None:
        self._buf = arena.buf if arena is not None else None

    def get(self, descriptor: dict) -> np.ndarray:
        if "v" in descriptor:
            return np.asarray(descriptor["v"], dtype=_I64)
        if self._buf is None:
            raise ShardError("arena descriptor received without an arena")
        # Copy out: the arena is reused for the reply in the other
        # direction, so no decoded array may alias it.
        return np.frombuffer(
            self._buf,
            dtype=_I64,
            count=int(descriptor["n"]),
            offset=int(descriptor["o"]),
        ).copy()


# --------------------------------------------------------------------- #
# Operations
# --------------------------------------------------------------------- #


def encode_ops(oplist, writer: ArenaWriter) -> list[dict]:
    """Encode a per-shard operation list into frame descriptors."""
    encoded: list[dict] = []
    for op in oplist:
        if isinstance(op, ops.PointQuery):
            encoded.append({"k": "pq", "key": int(op.key), "c": _cols(op)})
        elif isinstance(op, ops.RangeQuery):
            encoded.append(
                {
                    "k": "rq",
                    "lo": int(op.low),
                    "hi": int(op.high),
                    "agg": op.aggregate.value,
                    "c": _cols(op),
                }
            )
        elif isinstance(op, ops.Insert):
            payload = list(op.payload) if op.payload is not None else None
            encoded.append({"k": "in", "key": int(op.key), "p": payload})
        elif isinstance(op, ops.Delete):
            encoded.append({"k": "de", "key": int(op.key)})
        elif isinstance(op, ops.Update):
            encoded.append(
                {"k": "up", "old": int(op.old_key), "new": int(op.new_key)}
            )
        elif isinstance(op, ops.MultiPointQuery):
            encoded.append(
                {"k": "mpq", "keys": writer.put(op.keys), "c": _cols(op)}
            )
        elif isinstance(op, ops.MultiRangeCount):
            bounds = np.asarray(op.bounds, dtype=_I64).reshape(-1)
            encoded.append({"k": "mrc", "b": writer.put(bounds)})
        elif isinstance(op, ops.MultiInsert):
            entry = {"k": "mi", "keys": writer.put(op.keys)}
            if op.payloads is not None:
                rows = np.asarray(op.payloads, dtype=_I64).reshape(-1)
                entry["p"] = writer.put(rows)
            encoded.append(entry)
        elif isinstance(op, ops.MultiDelete):
            encoded.append({"k": "md", "keys": writer.put(op.keys)})
        elif isinstance(op, ops.MultiUpdate):
            pairs = np.asarray(op.pairs, dtype=_I64).reshape(-1)
            encoded.append({"k": "mu", "pairs": writer.put(pairs)})
        else:
            raise ShardError(f"cannot encode operation {type(op)!r}")
    return encoded


def decode_ops(encoded: list[dict], reader: ArenaReader) -> list:
    """Rebuild operation objects from :func:`encode_ops` descriptors."""
    oplist = []
    for entry in encoded:
        kind = entry["k"]
        if kind == "pq":
            oplist.append(
                ops.PointQuery(key=entry["key"], columns=_cols_in(entry))
            )
        elif kind == "rq":
            oplist.append(
                ops.RangeQuery(
                    low=entry["lo"],
                    high=entry["hi"],
                    aggregate=ops.Aggregate(entry["agg"]),
                    columns=_cols_in(entry),
                )
            )
        elif kind == "in":
            payload = entry["p"]
            oplist.append(
                ops.Insert(
                    key=entry["key"],
                    payload=tuple(payload) if payload is not None else None,
                )
            )
        elif kind == "de":
            oplist.append(ops.Delete(key=entry["key"]))
        elif kind == "up":
            oplist.append(ops.Update(old_key=entry["old"], new_key=entry["new"]))
        elif kind == "mpq":
            keys = reader.get(entry["keys"])
            oplist.append(
                ops.MultiPointQuery(
                    keys=tuple(int(k) for k in keys), columns=_cols_in(entry)
                )
            )
        elif kind == "mrc":
            bounds = reader.get(entry["b"]).reshape(-1, 2)
            oplist.append(
                ops.MultiRangeCount(
                    bounds=tuple((int(lo), int(hi)) for lo, hi in bounds)
                )
            )
        elif kind == "mi":
            keys = reader.get(entry["keys"])
            payloads = None
            if "p" in entry:
                rows = reader.get(entry["p"]).reshape(int(keys.size), -1)
                payloads = tuple(tuple(int(v) for v in row) for row in rows)
            oplist.append(
                ops.MultiInsert(
                    keys=tuple(int(k) for k in keys), payloads=payloads
                )
            )
        elif kind == "md":
            keys = reader.get(entry["keys"])
            oplist.append(ops.MultiDelete(keys=tuple(int(k) for k in keys)))
        elif kind == "mu":
            pairs = reader.get(entry["pairs"]).reshape(-1, 2)
            oplist.append(
                ops.MultiUpdate(
                    pairs=tuple((int(a), int(b)) for a, b in pairs)
                )
            )
        else:
            raise ShardError(f"cannot decode operation kind {kind!r}")
    return oplist


def _cols(op) -> list[str] | None:
    return list(op.columns) if op.columns is not None else None


def _cols_in(entry) -> tuple[str, ...] | None:
    columns = entry.get("c")
    return tuple(columns) if columns is not None else None


# --------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------- #


@dataclass
class RowBlock:
    """Decoded row-result block: per-key hit counts plus flat arrays."""

    counts: np.ndarray
    rowids: np.ndarray
    payload: np.ndarray  # flat, len(rowids) * len(columns)
    nested: bool  # list[list[Row]] (Multi*) vs list[Row] (scalar)


def _encode_rows(row_lists, columns, writer: ArenaWriter, *, nested: bool) -> dict:
    counts = np.fromiter(
        (len(rows) for rows in row_lists), dtype=_I64, count=len(row_lists)
    )
    rowids = np.fromiter(
        (row.rowid for rows in row_lists for row in rows),
        dtype=_I64,
        count=int(counts.sum()),
    )
    payload = np.fromiter(
        (
            row.payload[name]
            for rows in row_lists
            for row in rows
            for name in columns
        ),
        dtype=_I64,
        count=int(counts.sum()) * len(columns),
    )
    return {
        "t": "rr" if nested else "r",
        "c": writer.put(counts),
        "r": writer.put(rowids),
        "p": writer.put(payload),
    }


def encode_results(
    oplist, results, writer: ArenaWriter, payload_names
) -> list[dict]:
    """Encode a session's per-operation results for the wire.

    ``oplist`` provides the context the row blocks need (requested
    columns); entries must align one-to-one with ``results``.
    """
    encoded: list[dict] = []
    for op, result in zip(oplist, results, strict=True):
        if result is None:
            encoded.append({"t": "z"})
        elif isinstance(result, (int, np.integer)):
            encoded.append({"t": "i", "v": int(result)})
        elif isinstance(result, np.ndarray):
            encoded.append({"t": "a", "v": writer.put(result)})
        elif isinstance(result, list):
            columns = (
                list(op.columns)
                if op.columns is not None
                else list(payload_names)
            )
            if op.kind is ops.OperationKind.MULTI_POINT_QUERY:
                encoded.append(
                    _encode_rows(result, columns, writer, nested=True)
                )
            else:
                encoded.append(
                    _encode_rows([result], columns, writer, nested=False)
                )
        else:
            raise ShardError(f"cannot encode result {type(result)!r}")
    return encoded


def decode_results(encoded: list[dict], reader: ArenaReader) -> list:
    """Decode :func:`encode_results` output to merge-ready entries.

    Row blocks come back as :class:`RowBlock` (the dispatcher rebuilds
    :class:`Row` objects with keys and shard-base offsets it knows);
    everything else is its final value.
    """
    decoded = []
    for entry in encoded:
        tag = entry["t"]
        if tag == "z":
            decoded.append(None)
        elif tag == "i":
            decoded.append(int(entry["v"]))
        elif tag == "a":
            decoded.append(reader.get(entry["v"]))
        elif tag in ("r", "rr"):
            counts = reader.get(entry["c"])
            decoded.append(
                RowBlock(
                    counts=counts,
                    rowids=reader.get(entry["r"]),
                    payload=reader.get(entry["p"]),
                    nested=tag == "rr",
                )
            )
        else:
            raise ShardError(f"cannot decode result tag {tag!r}")
    return decoded


def materialize_rows(
    block: RowBlock, keys, columns, base: int
) -> list[list[Row]]:
    """Rebuild per-key ``list[Row]`` results from a decoded block.

    ``keys`` aligns with ``block.counts``; local row ids are offset by
    the shard's ``base`` so load-order ids match the serial table's.
    """
    width = len(columns)
    out: list[list[Row]] = []
    cursor = 0
    payload = block.payload
    rowids = block.rowids
    for key, count in zip(keys, block.counts, strict=True):
        key = int(key)
        rows = []
        for i in range(cursor, cursor + int(count)):
            values = payload[i * width:(i + 1) * width]
            rows.append(
                Row(
                    key=key,
                    rowid=int(rowids[i]) + base,
                    payload={
                        name: int(value)
                        for name, value in zip(columns, values, strict=True)
                    },
                )
            )
        out.append(rows)
        cursor += int(count)
    return out
