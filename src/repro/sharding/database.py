"""The sharded façade: route, fan out, merge back, stay serial-equal.

:class:`ShardedDatabase` splits one logical table across worker
processes by key range (:class:`~repro.sharding.shard_map.ShardMap`, the
:class:`~repro.storage.partition_index.PartitionIndex` fence idea lifted
one level up) and :class:`ShardedSession` re-implements the
:class:`~repro.api.session.Session` execution surface on top of
:meth:`~repro.sharding.cluster.ShardCluster.execute_round`.

The contract is **serial-oracle equality**: for any operation sequence,
``results`` and ``errors`` match what a single-process database loaded
from the same rows would return, because

* the shard map is a pure function of the key with every copy of a key
  in one shard, so operations routed to different shards touch disjoint
  key multisets and commute;
* within a shard, operations run FIFO through one single-threaded
  worker, preserving submission order where it matters;
* cross-shard range aggregates decompose exactly -- the shards partition
  the key space, so per-shard counts/sums add up to the serial answer;
* cross-shard key updates are the one ordering hazard, so they drain the
  pending round (a barrier), then move the row with a **two-phase
  protocol**: the source logs ``[move_intent, delete]`` as one atomic WAL
  record and replies with the payload, the target logs ``[move_commit,
  insert]``, and the source logs ``[move_forget]`` once the dispatcher
  has the target's ack.  A crash anywhere in that window leaves an
  unresolved intent that :meth:`ShardedDatabase.open` resolves by
  consulting the target shard's logged commits -- re-driving the insert
  or discarding the intent -- so the move lands fully applied or fully
  absent, never as a lost row.  The resolution scan trusts that rounds
  serialize with checkpoints (both run through the dispatcher), so a
  target's ``move_commit`` record always outlives any unresolved source
  intent -- checkpoint GC cannot drop it mid-move.

Documented divergences (also in the README): row ids created *after*
load (inserts, cross-shard moves) need not match the serial oracle's --
load-order ids do, because shard slice offsets reproduce the key-sorted
global numbering; and per-shard WAL watermarks are incomparable, so
``SessionResult.commit_lsn`` is ``None`` -- the per-shard vector is
reported instead (``SessionResult.shard_lsns``, with
:meth:`ShardedDatabase.sync` for the durable counterpart).
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from ..api.session import SessionResult
from ..storage.cost_accounting import AccessCounter
from ..workload import operations as ops
from ..workload.operations import Operation, Workload
from . import codec
from .cluster import (
    DEFAULT_ARENA_BYTES,
    ShardCluster,
    _decode_counter,
)
from .codec import ArenaWriter
from .errors import ShardError
from .shard_map import ShardMap

_MANIFEST = "manifest.json"

#: Attach-time config keys forwarded to every worker verbatim.
_CONFIG_KEYS = (
    "layout",
    "partitions",
    "chunk_size",
    "block_values",
    "payload_names",
    "fsync",
    "execution",
    "reorg",
)


def _shard_dir(root: "str | os.PathLike", shard: int) -> str:
    return os.path.join(os.fspath(root), f"shard-{shard}")


def _scan_move_markers(
    shard_root: str,
) -> tuple[dict[int, tuple[int, int, list[int]]], set[int], set[int]]:
    """Collect one shard's move-protocol markers from its WAL tail.

    Returns ``(intents, commits, forgets)``: intents map move id to the
    logged ``(old_key, new_key, payload)``; commits/forgets are the move
    ids this shard logged the respective resolution marker for.  Reads
    the surviving segments only -- markers whose segments checkpoint GC
    already reclaimed were resolved before the snapshot (rounds serialize
    with checkpoints), so a surviving unresolved intent always has its
    verdict in the target's surviving tail.
    """
    from ..durability.wal import (
        decode_delta_log,
        scan_segment,
        segment_first_lsn,
    )

    intents: dict[int, tuple[int, int, list[int]]] = {}
    commits: set[int] = set()
    forgets: set[int] = set()
    wal_dir = Path(shard_root) / "wal"
    if not wal_dir.is_dir():
        return intents, commits, forgets
    for segment in sorted(wal_dir.glob("wal-*.log"), key=segment_first_lsn):
        for _lsn, body in scan_segment(segment).records:
            for record in decode_delta_log(body).records:
                if record.kind == "move_intent":
                    move_id, old_key, new_key = (
                        int(value) for value in record.keys
                    )
                    payload = [int(value) for value in record.payloads[0]]
                    intents[move_id] = (old_key, new_key, payload)
                elif record.kind == "move_commit":
                    commits.add(int(record.keys[0]))
                elif record.kind == "move_forget":
                    forgets.add(int(record.keys[0]))
    return intents, commits, forgets


class ShardedDatabase:
    """One logical database fanned out across shard worker processes."""

    def __init__(
        self,
        *,
        shard_map: ShardMap,
        cluster: ShardCluster,
        owns_cluster: bool,
        bases: Sequence[int],
        payload_names: Sequence[str],
        durability_root: "str | os.PathLike | None" = None,
        move_id_start: int = 1,
    ) -> None:
        self.shard_map = shard_map
        self.cluster = cluster
        self._owns_cluster = owns_cluster
        #: Per-shard global row-id offset: shard ``s``'s local row ``j``
        #: is global row ``bases[s] + j`` in key-sorted load order.
        self.bases = [int(b) for b in bases]
        self.payload_names = tuple(payload_names)
        self.durability_root = (
            os.fspath(durability_root) if durability_root is not None else None
        )
        #: Monotonic move-id source for the two-phase cross-shard move
        #: protocol; :meth:`open` seeds it past every id seen in the WALs
        #: so resolved and in-flight moves never collide after recovery.
        self._move_ids = itertools.count(int(move_id_start))
        self._closed = False

    def _next_move_id(self) -> int:
        return next(self._move_ids)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(
        cls,
        keys: np.ndarray | Sequence[int],
        payload: np.ndarray | None = None,
        *,
        n_shards: int = 2,
        cluster: ShardCluster | None = None,
        layout: str = "equi",
        partitions: int = 16,
        chunk_size: int = 1 << 20,
        block_values: int = 4096,
        payload_names: Sequence[str] | None = None,
        durability: "str | os.PathLike | None" = None,
        fsync: str = "always",
        execution: str = "serial",
        reorg: bool = False,
        plan: Workload | None = None,
        arena_bytes: int | None = None,
        faults: dict[int, dict] | None = None,
    ) -> "ShardedDatabase":
        """Load rows across ``n_shards`` worker processes.

        The keys are sorted once (stable, matching ``Table``'s load
        order), fenced into even slices with duplicate runs kept whole
        (:meth:`ShardMap.from_sorted_keys`), and each slice is shipped to
        its worker through the channel's shared-memory arena.  ``plan``
        optionally carries a workload sample: each worker then builds its
        shard with ``Database.plan_for`` and replans independently when
        ``reorg`` is on.  ``durability`` roots per-shard WAL directories
        under ``<root>/shard-<s>/`` plus a cluster manifest for
        :meth:`open`.  ``cluster`` reuses a running pool (its shard count
        must match) instead of spawning one -- property tests re-attach
        fresh data per example this way.  ``faults`` maps shard -> worker
        fault hooks (crash injection for recovery tests).
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        if payload is not None:
            payload = np.asarray(payload, dtype=np.int64)
            if payload.ndim == 1:
                payload = payload.reshape(-1, 1)
            if payload.shape[0] != keys.size:
                raise ValueError("payload rows must align with keys")
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_payload = payload[order] if payload is not None else None
        shard_map = ShardMap.from_sorted_keys(sorted_keys, n_shards)
        positions = shard_map.split_positions(sorted_keys)

        width = 0 if sorted_payload is None else int(sorted_payload.shape[1])
        if arena_bytes is None:
            # Room for the largest load slice (keys + payload) or a large
            # dispatch batch, whichever is bigger; overflow degrades to
            # inline JSON, so this only has to be usually-big-enough.
            largest = int(np.diff(positions).max(initial=0))
            arena_bytes = max(
                DEFAULT_ARENA_BYTES, (largest * (1 + width) * 8) + (1 << 16)
            )

        config = {
            "layout": layout,
            "partitions": int(partitions),
            "chunk_size": int(chunk_size),
            "block_values": int(block_values),
            "payload_names": list(payload_names) if payload_names else None,
            "fsync": fsync,
            "execution": execution,
            "reorg": bool(reorg),
        }
        if durability is not None:
            root = os.fspath(durability)
            os.makedirs(root, exist_ok=True)
            manifest = {
                "n_shards": int(n_shards),
                "shard_map": shard_map.to_meta(),
                "config": config,
            }
            with open(os.path.join(root, _MANIFEST), "w") as fh:
                json.dump(manifest, fh)

        owns_cluster = cluster is None
        if cluster is None:
            cluster = ShardCluster(n_shards, arena_bytes=arena_bytes).start()
        elif cluster.n_shards != n_shards:
            raise ShardError(
                f"cluster has {cluster.n_shards} shards, need {n_shards}"
            )
        try:
            names = None
            for shard in range(n_shards):
                start, stop = int(positions[shard]), int(positions[shard + 1])
                channel = cluster.channel(shard)
                writer = ArenaWriter(channel.arena)
                request = {
                    "verb": "attach",
                    "mode": "load",
                    "arena": channel.arena.name,
                    "keys": writer.put(sorted_keys[start:stop]),
                    "config": config,
                }
                if sorted_payload is not None:
                    request["payload"] = writer.put(
                        sorted_payload[start:stop].reshape(-1)
                    )
                    # Explicit width: an empty slice cannot infer it.
                    request["width"] = width
                if plan is not None:
                    request["plan"] = codec.encode_ops(
                        list(plan.operations), writer
                    )
                if durability is not None:
                    request["durability"] = _shard_dir(durability, shard)
                if faults and shard in faults:
                    request["faults"] = faults[shard]
                reply = channel.request(request)
                if reply.get("rows") != stop - start:
                    raise ShardError(
                        f"shard {shard} loaded {reply.get('rows')} rows, "
                        f"expected {stop - start}"
                    )
                names = reply.get("payload_names", names)
        except Exception:
            if owns_cluster:
                cluster.stop()
            raise
        return cls(
            shard_map=shard_map,
            cluster=cluster,
            owns_cluster=owns_cluster,
            bases=positions[:-1],
            payload_names=names or (),
            durability_root=durability,
        )

    @classmethod
    def open(
        cls,
        root: "str | os.PathLike",
        *,
        cluster: ShardCluster | None = None,
        fsync: str | None = None,
        arena_bytes: int = DEFAULT_ARENA_BYTES,
        faults: dict[int, dict] | None = None,
    ) -> "ShardedDatabase":
        """Recover a sharded database from its durability root.

        Reads the cluster manifest, then has every worker run
        ``Database.open`` on its own ``shard-<s>/`` directory -- latest
        snapshot plus per-shard WAL replay, exactly the single-process
        recovery path, run ``n_shards`` times independently.  Recovery
        renumbers local row ids, so post-open global ids are prefix sums
        of recovered shard sizes (the logical row multiset is what is
        preserved).

        After the workers recover, the dispatcher scans every shard's WAL
        tail for move-protocol markers and resolves each intent that has
        no matching ``move_forget``: if the target shard never logged the
        ``move_commit``, the insert half is re-driven with the intent's
        carried payload; either way the source then logs its forget.  A
        worker killed anywhere in the move window therefore re-opens to a
        state where the move happened fully or not at all.
        """
        root = os.fspath(root)
        with open(os.path.join(root, _MANIFEST)) as fh:
            manifest = json.load(fh)
        n_shards = int(manifest["n_shards"])
        shard_map = ShardMap.from_meta(manifest["shard_map"])
        config = dict(manifest["config"])
        if fsync is not None:
            config["fsync"] = fsync

        owns_cluster = cluster is None
        if cluster is None:
            cluster = ShardCluster(n_shards, arena_bytes=arena_bytes).start()
        elif cluster.n_shards != n_shards:
            raise ShardError(
                f"cluster has {cluster.n_shards} shards, need {n_shards}"
            )
        names = None
        try:
            for shard in range(n_shards):
                channel = cluster.channel(shard)
                request = {
                    "verb": "attach",
                    "mode": "open",
                    "arena": channel.arena.name,
                    "durability": _shard_dir(root, shard),
                    "config": config,
                }
                if faults and shard in faults:
                    request["faults"] = faults[shard]
                reply = channel.request(request)
                names = reply.get("payload_names", names)
            next_move = cls._resolve_moves(cluster, shard_map, root, n_shards)
            # Row counts are read *after* resolution: a re-driven insert
            # changes a shard's size, and bases must reflect final state.
            bases = []
            base = 0
            for shard in range(n_shards):
                reply = cluster.channel(shard).request({"verb": "stats"})
                bases.append(base)
                base += int(reply.get("rows", 0))
        except Exception:
            if owns_cluster:
                cluster.stop()
            raise
        return cls(
            shard_map=shard_map,
            cluster=cluster,
            owns_cluster=owns_cluster,
            bases=bases,
            payload_names=names or (),
            durability_root=root,
            move_id_start=next_move,
        )

    @staticmethod
    def _resolve_moves(
        cluster: ShardCluster,
        shard_map: ShardMap,
        root: str,
        n_shards: int,
    ) -> int:
        """Resolve unresolved cross-shard move intents after recovery.

        Scans every shard's surviving WAL segments for move markers.  For
        each ``move_intent`` with no ``move_forget`` on the same shard,
        the target shard's log decides: a logged ``move_commit`` means
        the insert half landed (durably -- it rode the same atomic WAL
        record), so the intent is only forgotten; otherwise the insert is
        re-driven from the intent's carried payload first.  Returns the
        next safe move id (one past the largest id seen anywhere).
        """
        markers = [
            _scan_move_markers(_shard_dir(root, shard))
            for shard in range(n_shards)
        ]
        next_move = 1 + max(
            (
                move_id
                for intents, commits, forgets in markers
                for move_id in (*intents, *commits, *forgets)
            ),
            default=0,
        )
        for shard, (intents, _commits, forgets) in enumerate(markers):
            for move_id in sorted(set(intents) - forgets):
                old_key, new_key, payload = intents[move_id]
                target = shard_map.shard_of(new_key)
                if move_id not in markers[target][1]:
                    cluster.channel(target).request(
                        {
                            "verb": "put",
                            "key": new_key,
                            "payload": payload or None,
                            "move": move_id,
                        }
                    )
                cluster.channel(shard).request(
                    {"verb": "forget", "move": move_id}
                )
        return next_move

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #

    @property
    def n_shards(self) -> int:
        """Number of shards in the map."""
        return self.shard_map.n_shards

    def session(self) -> "ShardedSession":
        """Open the execution surface (same shape as ``Database.session``).

        Execution/reorg policies are per-worker attach-time configuration
        (each worker owns a long-lived session around its shard), so this
        takes no policy arguments.
        """
        self._check_open()
        return ShardedSession(self)

    def checkpoint(self) -> dict[int, int]:
        """Snapshot every shard; returns shard -> snapshot LSN."""
        self._check_open()
        replies = self.cluster.request_all({"verb": "checkpoint"})
        return {
            shard: int(reply["snapshot_lsn"])
            for shard, reply in replies.items()
            if "snapshot_lsn" in reply
        }

    def sync(self) -> dict[int, int]:
        """Group-commit fsync on every shard; returns shard -> durable LSN."""
        self._check_open()
        replies = self.cluster.request_all({"verb": "sync"})
        return {
            shard: int(reply["durable_lsn"])
            for shard, reply in replies.items()
            if reply.get("durable_lsn") is not None
        }

    def stats(self) -> dict[int, dict]:
        """Per-shard stats: rows, chunks, op counts, replans, violations."""
        self._check_open()
        return {
            shard: {k: v for k, v in reply.items() if k != "ok"}
            for shard, reply in self.cluster.request_all(
                {"verb": "stats"}
            ).items()
        }

    @property
    def num_rows(self) -> int:
        """Total live rows across shards (one stats round trip)."""
        return sum(stat["rows"] for stat in self.stats().values())

    def kill(self, shard: int) -> None:
        """SIGKILL one shard's worker (crash-recovery tests)."""
        self.cluster.kill(shard)

    def close(self) -> None:
        """Release the cluster if this database spawned it (idempotent).

        A shared cluster (passed into :meth:`from_rows` / :meth:`open`)
        is left running for the next attach; only its workers' databases
        stay attached until then.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_cluster:
            self.cluster.stop()

    def _check_open(self) -> None:
        if self._closed:
            raise ShardError("sharded database is closed")

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedSession:
    """Session façade over the cluster: split, dispatch, merge.

    Operations accumulate into per-shard sub-batches and are flushed as
    one :meth:`~repro.sharding.cluster.ShardCluster.execute_round` at the
    end of each :meth:`execute` call (or earlier, when a cross-shard key
    update forces a barrier), so one submitted batch costs one round of
    concurrent worker execution, not one round trip per operation.
    """

    def __init__(self, database: ShardedDatabase) -> None:
        self.database = database
        self._closed = False
        #: Per-shard breakdown of the *last* :meth:`execute` call: access
        #: tallies and worker-measured wall time.  The scaling benchmark
        #: models parallel round latency as the max over shards.
        self.last_shard_accesses: dict[int, AccessCounter] = {}
        self.last_shard_wall_ns: dict[int, float] = {}

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Close the dispatcher side (workers keep their shards)."""
        self._closed = True

    def sync(self) -> dict[int, int]:
        """Fsync every shard's WAL; returns shard -> durable LSN."""
        return self.database.sync()

    def execute(
        self, operations: Workload | Sequence[Operation] | Operation
    ) -> SessionResult:
        """Execute operations with serial-oracle results and errors.

        ``commit_lsn`` is always ``None`` -- per-shard WAL watermarks are
        incomparable -- but ``shard_lsns`` reports the per-shard vector:
        the last commit LSN each involved shard acknowledged this call.
        ``durable`` is the conjunction of every involved shard's report.
        ``accesses`` is the sum of worker-side tallies (cross-shard moves
        charge their take+put decomposition, not the serial update's
        counts).
        """
        if self._closed:
            raise ShardError("session is closed")
        if isinstance(operations, Workload):
            oplist = list(operations.operations)
        elif isinstance(operations, Sequence):
            oplist = list(operations)
        else:
            oplist = [operations]
        start = time.perf_counter_ns()
        batch = _Batch(self.database)
        for index, op in enumerate(oplist):
            batch.route(index, op)
        batch.flush()
        self.last_shard_accesses = batch.shard_accesses
        self.last_shard_wall_ns = batch.shard_wall_ns
        return SessionResult(
            results=batch.out,
            accesses=batch.accesses,
            wall_ns=float(time.perf_counter_ns() - start),
            operations=len(oplist),
            errors=batch.errors,
            commit_lsn=None,
            durable=batch.durable,
            shard_lsns=dict(batch.shard_lsns) or None,
        )


class _Batch:
    """One execute call's routing state: pending sub-batches + mergers."""

    def __init__(self, database: ShardedDatabase) -> None:
        self.database = database
        self.out: list = []
        self.errors = 0
        self.accesses = AccessCounter()
        self.durable = True
        self.shard_lsns: dict[int, int] = {}
        self.shard_accesses: dict[int, AccessCounter] = {}
        self.shard_wall_ns: dict[int, float] = {}
        self._pending: dict[int, list] = {}
        self._appliers: list = []

    # -- plumbing ------------------------------------------------------- #

    def _push(self, shard: int, op) -> int:
        """Queue ``op`` on ``shard``; returns its sub-batch position."""
        sub = self._pending.setdefault(shard, [])
        sub.append(op)
        return len(sub) - 1

    def flush(self) -> None:
        """Dispatch pending sub-batches as one round and merge replies."""
        if self._pending:
            replies = self.database.cluster.execute_round(self._pending)
            for shard, reply in replies.items():
                self.errors += reply.errors
                self.accesses.merge(reply.accesses)
                self.durable = self.durable and reply.durable
                if reply.commit_lsn is not None:
                    self.shard_lsns[shard] = int(reply.commit_lsn)
                self.shard_accesses.setdefault(
                    shard, AccessCounter()
                ).merge(reply.accesses)
                self.shard_wall_ns[shard] = (
                    self.shard_wall_ns.get(shard, 0.0) + reply.wall_ns
                )
            results = {
                shard: reply.results for shard, reply in replies.items()
            }
        else:
            results = {}
        for applier in self._appliers:
            applier(results)
        self._pending = {}
        self._appliers = []

    def _slot(self, index: int) -> None:
        while len(self.out) <= index:
            self.out.append(None)

    def _columns(self, op) -> list[str]:
        if op.columns is not None:
            return list(op.columns)
        return list(self.database.payload_names)

    # -- routing -------------------------------------------------------- #

    def route(self, index: int, op) -> None:
        """Split one operation across shards and record its merge."""
        self._slot(index)
        shard_map = self.database.shard_map
        bases = self.database.bases

        if isinstance(op, ops.PointQuery):
            shard = shard_map.shard_of(op.key)
            pos = self._push(shard, op)
            columns = self._columns(op)

            def merge(results, shard=shard, pos=pos, key=int(op.key)):
                block = results[shard][pos]
                self.out[index] = codec.materialize_rows(
                    block, [key], columns, bases[shard]
                )[0]

            self._appliers.append(merge)

        elif isinstance(op, ops.RangeQuery):
            pieces = shard_map.split_range(op.low, op.high)
            refs = []
            for shard, low, high in pieces:
                sub = (
                    op
                    if len(pieces) == 1
                    else ops.RangeQuery(
                        low=low,
                        high=high,
                        aggregate=op.aggregate,
                        columns=op.columns,
                    )
                )
                refs.append((shard, self._push(shard, sub)))

            def merge(results, refs=refs):
                # Shards partition the key space: per-shard counts/sums
                # add to the serial aggregate exactly.
                self.out[index] = sum(
                    results[shard][pos] for shard, pos in refs
                )

            self._appliers.append(merge)

        elif isinstance(op, ops.Insert):
            shard = shard_map.shard_of(op.key)
            pos = self._push(shard, op)

            def merge(results, shard=shard, pos=pos):
                value = results[shard][pos]
                self.out[index] = (
                    value + bases[shard] if isinstance(value, int) else value
                )

            self._appliers.append(merge)

        elif isinstance(op, ops.Delete):
            shard = shard_map.shard_of(op.key)
            pos = self._push(shard, op)

            def merge(results, shard=shard, pos=pos):
                self.out[index] = results[shard][pos]

            self._appliers.append(merge)

        elif isinstance(op, ops.Update):
            source = shard_map.shard_of(op.old_key)
            target = shard_map.shard_of(op.new_key)
            if source == target:
                pos = self._push(source, op)

                def merge(results, shard=source, pos=pos):
                    self.out[index] = results[shard][pos]

                self._appliers.append(merge)
            else:
                # Barrier: the move must observe every queued effect and
                # be observed by everything after it.
                self.flush()
                moved = self._move(
                    int(op.old_key), int(op.new_key), source, target
                )
                if not moved:
                    # Serial scalar updates count a miss as one error.
                    self.errors += 1
                self.out[index] = None

        elif isinstance(op, ops.MultiPointQuery):
            self._route_multi_point(index, op)
        elif isinstance(op, ops.MultiRangeCount):
            self._route_multi_range(index, op)
        elif isinstance(op, ops.MultiInsert):
            self._route_multi_insert(index, op)
        elif isinstance(op, ops.MultiDelete):
            self._route_multi_delete(index, op)
        elif isinstance(op, ops.MultiUpdate):
            self._route_multi_update(index, op)
        else:
            raise ShardError(f"cannot route operation {type(op)!r}")

    def _route_multi_point(self, index: int, op) -> None:
        keys = np.asarray(op.keys, dtype=np.int64)
        shards = self.database.shard_map.shard_of_batch(keys)
        columns = self._columns(op)
        bases = self.database.bases
        refs = []
        for shard in np.unique(shards):
            positions = np.nonzero(shards == shard)[0]
            sub = ops.MultiPointQuery(
                keys=tuple(int(k) for k in keys[positions]),
                columns=op.columns,
            )
            refs.append((int(shard), self._push(int(shard), sub), positions))

        def merge(results, refs=refs, keys=keys):
            merged: list = [None] * int(keys.size)
            for shard, pos, positions in refs:
                lists = codec.materialize_rows(
                    results[shard][pos], keys[positions], columns, bases[shard]
                )
                for where, rows in zip(positions, lists):
                    merged[int(where)] = rows
            self.out[index] = merged

        self._appliers.append(merge)

    def _route_multi_range(self, index: int, op) -> None:
        bounds = np.asarray(op.bounds, dtype=np.int64).reshape(-1, 2)
        m = int(bounds.shape[0])
        shard_map = self.database.shard_map
        refs = []
        for shard in range(shard_map.n_shards):
            low, high = shard_map.shard_interval(shard)
            if low > high:  # fences collapsed: shard owns no keys
                continue
            overlap = (bounds[:, 0] <= high) & (bounds[:, 1] >= low)
            if not overlap.any():
                continue
            positions = np.nonzero(overlap)[0]
            clipped = tuple(
                (int(max(lo, low)), int(min(hi, high)))
                for lo, hi in bounds[positions]
            )
            sub = ops.MultiRangeCount(bounds=clipped)
            refs.append((shard, self._push(shard, sub), positions))

        def merge(results, refs=refs, m=m):
            counts = np.zeros(m, dtype=np.int64)
            for shard, pos, positions in refs:
                counts[positions] += np.asarray(
                    results[shard][pos], dtype=np.int64
                )
            self.out[index] = counts

        self._appliers.append(merge)

    def _route_multi_insert(self, index: int, op) -> None:
        keys = np.asarray(op.keys, dtype=np.int64)
        shards = self.database.shard_map.shard_of_batch(keys)
        bases = self.database.bases
        refs = []
        for shard in np.unique(shards):
            positions = np.nonzero(shards == shard)[0]
            payloads = None
            if op.payloads is not None:
                payloads = tuple(op.payloads[int(p)] for p in positions)
            sub = ops.MultiInsert(
                keys=tuple(int(k) for k in keys[positions]), payloads=payloads
            )
            refs.append((int(shard), self._push(int(shard), sub), positions))

        def merge(results, refs=refs, m=int(keys.size)):
            rowids = np.zeros(m, dtype=np.int64)
            for shard, pos, positions in refs:
                rowids[positions] = (
                    np.asarray(results[shard][pos], dtype=np.int64)
                    + bases[shard]
                )
            self.out[index] = rowids

        self._appliers.append(merge)

    def _route_multi_delete(self, index: int, op) -> None:
        keys = np.asarray(op.keys, dtype=np.int64)
        shards = self.database.shard_map.shard_of_batch(keys)
        refs = []
        for shard in np.unique(shards):
            positions = np.nonzero(shards == shard)[0]
            sub = ops.MultiDelete(keys=tuple(int(k) for k in keys[positions]))
            refs.append((int(shard), self._push(int(shard), sub), positions))

        def merge(results, refs=refs, m=int(keys.size)):
            deleted = np.zeros(m, dtype=np.int64)
            for shard, pos, positions in refs:
                deleted[positions] = np.asarray(
                    results[shard][pos], dtype=np.int64
                )
            self.out[index] = deleted

        self._appliers.append(merge)

    def _route_multi_update(self, index: int, op) -> None:
        """Pairs apply in submission order; cross-shard pairs barrier.

        Same-shard pairs between two barriers commute across shards (they
        touch disjoint key multisets) and stay ordered within a shard, so
        they group into per-shard ``MultiUpdate`` sub-batches.  The
        result array fills progressively: sub-batch hits at their
        positions on merge, cross-shard moves immediately.
        """
        pairs = np.asarray(op.pairs, dtype=np.int64).reshape(-1, 2)
        m = int(pairs.shape[0])
        shard_map = self.database.shard_map
        result = np.zeros(m, dtype=np.int64)
        self.out[index] = result
        group: dict[int, tuple[list, list]] = {}

        def emit_group() -> None:
            for shard, (sub_pairs, positions) in group.items():
                pos = self._push(
                    shard, ops.MultiUpdate(pairs=tuple(sub_pairs))
                )
                where = np.asarray(positions, dtype=np.int64)

                def merge(results, shard=shard, pos=pos, where=where):
                    result[where] = np.asarray(
                        results[shard][pos], dtype=np.int64
                    )

                self._appliers.append(merge)
            group.clear()

        for row in range(m):
            old_key, new_key = int(pairs[row, 0]), int(pairs[row, 1])
            source = shard_map.shard_of(old_key)
            target = shard_map.shard_of(new_key)
            if source == target:
                sub_pairs, positions = group.setdefault(source, ([], []))
                sub_pairs.append((old_key, new_key))
                positions.append(row)
            else:
                emit_group()
                self.flush()
                # Bulk updates report misses as 0, never as errors.
                result[row] = 1 if self._move(
                    old_key, new_key, source, target
                ) else 0
        emit_group()

    def _move(
        self, old_key: int, new_key: int, source: int, target: int
    ) -> bool:
        """Cross-shard key update, two-phase: take / put / forget.

        Caller has flushed -- both shards are quiescent.  Returns whether
        a row moved (``False`` = ``old_key`` absent).  The source's
        ``take`` logs ``[move_intent, delete]`` atomically before its
        reply, the target's ``put`` logs ``[move_commit, insert]``, and
        the source's ``forget`` retires the intent only after the put's
        ack -- so a crash at any point leaves WAL markers the re-open
        scan resolves to a fully-applied or fully-absent move.  The moved
        row gets a fresh target-shard row id (documented divergence).
        """
        move_id = self.database._next_move_id()
        reply = self.database.cluster.channel(source).request(
            {
                "verb": "take",
                "key": old_key,
                "new_key": new_key,
                "move": move_id,
            }
        )
        self.accesses.merge(_decode_counter(reply.get("accesses")))
        self._merge_watermark(source, reply)
        if not reply.get("found"):
            return False
        payload = (
            [int(v) for v in reply["payload"]]
            if self.database.payload_names
            else None
        )
        put = self.database.cluster.channel(target).request(
            {
                "verb": "put",
                "key": new_key,
                "payload": payload,
                "move": move_id,
            }
        )
        self.accesses.merge(_decode_counter(put.get("accesses")))
        self._merge_watermark(target, put)
        forget = self.database.cluster.channel(source).request(
            {"verb": "forget", "move": move_id}
        )
        self._merge_watermark(source, forget)
        return True

    def _merge_watermark(self, shard: int, reply: dict) -> None:
        self.durable = self.durable and bool(reply.get("durable", True))
        if reply.get("commit_lsn") is not None:
            self.shard_lsns[shard] = int(reply["commit_lsn"])
