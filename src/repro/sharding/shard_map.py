"""The shard map: key-space fences that route operations to workers.

Exactly as the chunk-level :class:`~repro.storage.partition_index
.PartitionIndex` routes keys to column chunks by upper fences, the shard
map routes keys to worker processes: ``bounds[s]`` is the largest key
shard ``s`` owns (the last bound is ``int64 max``, so new maxima route to
the last shard without fence maintenance) and routing one key -- or a
whole ``Multi*`` batch -- is a single ``searchsorted`` with
``side="left"``.

One invariant does real work here: **all copies of a key live in one
shard**.  :meth:`ShardMap.from_sorted_keys` snaps every tentative cut to
the left edge of the duplicate run it lands in, so a duplicate run that
would straddle a shard fence is moved wholly into the right-hand shard.
Point reads, deletes and key updates therefore never fan one key out
across workers, which is what makes per-shard FIFO dispatch
serial-equivalent: operations routed to different shards touch disjoint
key multisets and commute.

The map is *fixed for the lifetime of the cluster* -- routing is a pure
function of the key, never of live occupancy -- so the dispatcher and
every worker agree on ownership without coordination.  Inserts of unseen
keys route by the same fences; shard rebalancing is future work
(ROADMAP).
"""

from __future__ import annotations

import numpy as np

_INT64_MAX = np.iinfo(np.int64).max
_INT64_MIN = np.iinfo(np.int64).min


class ShardMap:
    """Immutable fence table mapping keys to shard indices."""

    def __init__(self, bounds: np.ndarray | list[int]) -> None:
        bounds = np.asarray(bounds, dtype=np.int64)
        if bounds.ndim != 1 or bounds.size == 0:
            raise ValueError("bounds must be a non-empty 1-D array")
        # Compare, never subtract: a span like [-1, int64 max] overflows
        # ``np.diff`` and would be falsely rejected.
        if np.any(bounds[1:] < bounds[:-1]):
            raise ValueError("bounds must be non-decreasing")
        if int(bounds[-1]) != _INT64_MAX:
            raise ValueError("the last bound must be int64 max")
        self._bounds = bounds
        self._bounds.setflags(write=False)

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return int(self._bounds.size)

    @property
    def bounds(self) -> np.ndarray:
        """Upper fence (maximum owned key) of each shard (read-only)."""
        return self._bounds

    @classmethod
    def from_sorted_keys(cls, sorted_keys: np.ndarray, n_shards: int) -> "ShardMap":
        """Build fences splitting ``sorted_keys`` into ``n_shards`` even
        slices, with every cut snapped to a duplicate-run left edge.

        ``sorted_keys`` must be ascending (the caller sorts once; the
        split positions double as the per-shard slice boundaries, see
        :meth:`split_positions`).
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        keys = np.asarray(sorted_keys, dtype=np.int64)
        bounds = np.empty(n_shards, dtype=np.int64)
        n = int(keys.size)
        for s in range(n_shards - 1):
            cut = (n * (s + 1)) // n_shards
            if 0 < cut < n:
                # Snap left: every copy of keys[cut] moves to shard s+1.
                cut = int(np.searchsorted(keys, keys[cut], side="left"))
            if cut <= 0:
                bounds[s] = keys[0] - 1 if n else _INT64_MAX
            elif cut >= n:
                bounds[s] = _INT64_MAX
            else:
                bounds[s] = keys[cut] - 1
        bounds[-1] = _INT64_MAX
        # Empty input degenerates to "everything routes to shard 0".
        if n == 0:
            bounds[:] = _INT64_MAX
        return cls(np.maximum.accumulate(bounds))

    def split_positions(self, sorted_keys: np.ndarray) -> np.ndarray:
        """Slice boundaries of ``sorted_keys`` per shard: ``n_shards + 1``
        positions with shard ``s`` owning ``sorted_keys[p[s]:p[s + 1]]``."""
        keys = np.asarray(sorted_keys, dtype=np.int64)
        positions = np.empty(self.n_shards + 1, dtype=np.int64)
        positions[0] = 0
        positions[-1] = keys.size
        # Shard s owns keys <= bounds[s]: the slice ends where the next
        # shard's key space starts.
        positions[1:-1] = np.searchsorted(
            keys, self._bounds[:-1], side="right"
        )
        return positions

    def shard_of(self, key: int) -> int:
        """Shard owning ``key`` (pure function of the fences)."""
        return int(np.searchsorted(self._bounds, int(key), side="left"))

    def shard_of_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`shard_of`: one ``searchsorted`` per batch."""
        keys = np.asarray(keys, dtype=np.int64)
        return np.searchsorted(self._bounds, keys, side="left")

    def shard_interval(self, shard: int) -> tuple[int, int]:
        """Inclusive key interval ``[low, high]`` shard ``shard`` owns."""
        high = int(self._bounds[shard])
        low = _INT64_MIN if shard == 0 else int(self._bounds[shard - 1]) + 1
        return low, high

    def split_range(self, low: int, high: int) -> list[tuple[int, int, int]]:
        """Decompose ``[low, high]`` into per-shard sub-ranges.

        Returns ``(shard, sub_low, sub_high)`` triples covering the range
        exactly; shards whose fences collapsed to an empty key space are
        skipped.  Because shards partition the key space, per-shard
        aggregates (counts, sums) over the sub-ranges add up to the
        serial aggregate exactly.
        """
        low, high = int(low), int(high)
        first = int(np.searchsorted(self._bounds, low, side="left"))
        last = int(np.searchsorted(self._bounds, high, side="left"))
        pieces: list[tuple[int, int, int]] = []
        for shard in range(first, last + 1):
            shard_low, shard_high = self.shard_interval(shard)
            sub_low = max(low, shard_low)
            sub_high = min(high, shard_high)
            if sub_low <= sub_high:
                pieces.append((shard, sub_low, sub_high))
        return pieces

    def to_meta(self) -> dict:
        """JSON-serializable form (manifest / attach frames)."""
        return {"bounds": [int(b) for b in self._bounds]}

    @classmethod
    def from_meta(cls, meta: dict) -> "ShardMap":
        """Rebuild from :meth:`to_meta` output."""
        return cls(np.asarray(meta["bounds"], dtype=np.int64))
