"""Errors raised by the sharding layer."""

from __future__ import annotations


class ShardError(RuntimeError):
    """A shard worker or the dispatch protocol failed."""


class WorkerDiedError(ShardError):
    """A shard worker's channel broke mid-conversation.

    Carries the shard id so recovery paths
    (:meth:`repro.sharding.database.ShardedDatabase.open` over the same
    durability root) know which per-shard WAL to replay.
    """

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard
