"""The four checker families of ``repro-lint``.

Each checker consumes a :class:`~repro.analysis.walker.FunctionAnalysis`
(the held-set annotation of one function) and yields
:class:`~repro.analysis.report.Violation` records.  See the package
docstring for the check-ID table.
"""

from __future__ import annotations

import ast

from repro.discipline import (
    CHUNK_LATCH_RANK,
    GUARDED_BY,
    MUTATING_METHODS,
    SOLVER_CALL_NAMES,
    lock_rank,
)

from .report import Violation
from .walker import FunctionAnalysis, Held, is_chunks_subscript

#: Functions whose bodies run before the object is shared.
CONSTRUCTOR_NAMES = frozenset({"__init__", "__post_init__", "__new__"})


def _parent_map(func: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(func):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _held(analysis: FunctionAnalysis, node: ast.AST) -> Held:
    return analysis.held_at.get(id(node), analysis.premise)


def _violation(
    check: str,
    path: str,
    node: ast.AST,
    message: str,
    analysis: FunctionAnalysis,
) -> Violation:
    name = getattr(analysis.func, "name", "")
    if analysis.class_name:
        name = f"{analysis.class_name}.{name}"
    return Violation(
        check=check,
        path=path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
        function=name,
    )


# --------------------------------------------------------------------- #
# Latch bracketing (LB01 / LB02 / LB03)
# --------------------------------------------------------------------- #


def _call_receiver_is_chunk(
    call: ast.Call, analysis: FunctionAnalysis, class_methods: set[str]
) -> bool:
    """Whether a method call's receiver is a chunk object (a
    ``_chunks[...]`` subscript, a chunk alias variable, or ``self`` inside
    the class that declares the decorated method)."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    receiver = func.value
    if is_chunks_subscript(receiver):
        return True
    if (
        isinstance(receiver, ast.Name)
        and receiver.id in analysis.chunk_aliases
    ):
        return True
    return (
        isinstance(receiver, ast.Name)
        and receiver.id == "self"
        and func.attr in class_methods
    )


def check_latch_bracketing(
    path: str,
    analysis: FunctionAnalysis,
    registry: dict[str, str],
    class_registry: dict[str, dict[str, str]],
):
    """LB01/LB02/LB03 over one function."""
    func_name = getattr(analysis.func, "name", "")
    if func_name in CONSTRUCTOR_NAMES:
        return
    class_methods = set(class_registry.get(analysis.class_name or "", ()))

    flagged_receivers: set[int] = set()
    for node in ast.walk(analysis.func):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        mode = registry.get(func.attr)
        if mode is None:
            continue
        if not _call_receiver_is_chunk(node, analysis, class_methods):
            continue
        held = _held(analysis, node)
        if not held.has_chunk(mode):
            flagged_receivers.add(id(func.value))
            yield _violation(
                "LB01",
                path,
                node,
                f"call to chunk method {func.attr}() requires a {mode} "
                f"chunk latch; held here: {_describe(held)}",
                analysis,
            )

    for node in ast.walk(analysis.func):
        if not is_chunks_subscript(node):
            continue
        if id(node) in flagged_receivers:
            continue  # the LB01 finding above already covers this access
        mode = "exclusive" if isinstance(node.ctx, ast.Store) else "shared"
        held = _held(analysis, node)
        if not held.has_chunk(mode):
            yield _violation(
                "LB02",
                path,
                node,
                f"raw _chunks[...] {'store' if mode == 'exclusive' else 'access'}"
                f" outside a latch bracket (requires a {mode} latch); "
                f"held here: {_describe(held)}",
                analysis,
            )

    for node, leaked in analysis.leaks:
        holds = ", ".join(f"{h.mode}({h.index})" for h in leaked)
        yield _violation(
            "LB03",
            path,
            node,
            f"latch acquired but not released on this path: {holds} "
            "(bracket with try/finally or a with-scope)",
            analysis,
        )


def _describe(held: Held) -> str:
    if held.empty():
        return "nothing"
    parts = [f"chunk:{h.mode}({h.index})" for h in sorted(
        held.chunks, key=lambda h: (h.mode, h.index)
    )]
    parts.extend(f"lock:{name}" for name in sorted(held.locks))
    return ", ".join(parts)


# --------------------------------------------------------------------- #
# Lock ordering (LO01 / LO02)
# --------------------------------------------------------------------- #


def check_lock_order(path: str, analysis: FunctionAnalysis):
    """LO01/LO02 over one function's acquisition events."""
    for event in analysis.acquires:
        held = event.held_before
        if event.kind == "chunk":
            if held.locks:
                yield _violation(
                    "LO01",
                    path,
                    event.node,
                    "chunk latch acquired while holding "
                    f"{_describe(Held(frozenset(), held.locks))}; chunk "
                    f"latches rank first (rank {CHUNK_LATCH_RANK}) in "
                    "repro.discipline.LOCK_ORDER",
                    analysis,
                )
            nested = held.non_premise_chunks()
            if nested and not event.many:
                indices = ", ".join(h.index for h in nested)
                yield _violation(
                    "LO02",
                    path,
                    event.node,
                    f"nested chunk-latch acquisition (chunk {event.index} "
                    f"while holding chunk {indices}); multi-chunk latching "
                    "must go through acquire_write_many (ascending order)",
                    analysis,
                )
        else:
            rank = event.rank
            for name in held.locks:
                # Unknown locks ("?<attr>") miss LOCK_ORDER and rank last.
                held_rank = lock_rank(name)
                if held_rank > rank or (
                    held_rank == rank and name != event.lock_name
                ):
                    yield _violation(
                        "LO01",
                        path,
                        event.node,
                        f"lock {event.lock_name!r} (rank {rank}) acquired "
                        f"while holding {name!r} (rank {held_rank}); the "
                        "declared order is repro.discipline.LOCK_ORDER",
                        analysis,
                    )


# --------------------------------------------------------------------- #
# Guarded state (GS01 / GS02)
# --------------------------------------------------------------------- #


def _guard_satisfied(held: Held, guard: str) -> bool:
    if guard.startswith("chunk_latch"):
        _, _, mode = guard.partition(":")
        return held.has_chunk(mode or "shared")
    return guard in held.locks


def check_guarded_state(path: str, analysis: FunctionAnalysis):
    """GS01/GS02 over one function (``self.<attr>`` accesses only)."""
    spec = GUARDED_BY.get(analysis.class_name or "")
    if not spec:
        return
    func_name = getattr(analysis.func, "name", "")
    if func_name in CONSTRUCTOR_NAMES:
        return
    parents = _parent_map(analysis.func)

    def is_self_attr(node: ast.AST) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in spec
        ):
            return node.attr
        return None

    for node in ast.walk(analysis.func):
        attr = is_self_attr(node)
        if attr is None:
            continue
        guard, mode = spec[attr]
        held = _held(analysis, node)
        parent = parents.get(id(node))

        write = isinstance(node.ctx, (ast.Store, ast.Del))
        # ``self._failures[i] = x`` / ``self._calls += 1``
        if (
            isinstance(parent, ast.Subscript)
            and parent.value is node
            and isinstance(parent.ctx, (ast.Store, ast.Del))
        ):
            write = True
        # ``self._pending.append(x)`` -- container mutation
        grand = parents.get(id(parent)) if parent is not None else None
        if (
            isinstance(parent, ast.Attribute)
            and parent.value is node
            and parent.attr in MUTATING_METHODS
            and isinstance(grand, ast.Call)
            and grand.func is parent
        ):
            write = True

        if write:
            if not _guard_satisfied(held, guard):
                yield _violation(
                    "GS01",
                    path,
                    node,
                    f"write to guarded attribute self.{attr} without "
                    f"holding {guard!r} (GUARDED_BY mode {mode!r}); "
                    f"held here: {_describe(held)}",
                    analysis,
                )
        elif mode == "rw" and not _guard_satisfied(held, guard):
            yield _violation(
                "GS02",
                path,
                node,
                f"read of rw-guarded attribute self.{attr} without "
                f"holding {guard!r}; held here: {_describe(held)}",
                analysis,
            )


# --------------------------------------------------------------------- #
# Solver-under-lock and generation checks (SL01 / GC01)
# --------------------------------------------------------------------- #


def check_solver_rules(path: str, analysis: FunctionAnalysis):
    """SL01/GC01 over one function."""
    parents = _parent_map(analysis.func)
    saw_generation_compare_line: int | None = None
    for node in ast.walk(analysis.func):
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if any(
                isinstance(op, ast.Attribute) and op.attr == "generation"
                for op in operands
            ):
                line = getattr(node, "lineno", 0)
                if (
                    saw_generation_compare_line is None
                    or line < saw_generation_compare_line
                ):
                    saw_generation_compare_line = line

    for node in ast.walk(analysis.func):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name is None:
            continue

        if name in SOLVER_CALL_NAMES:
            held = _held(analysis, node)
            if not held.empty():
                yield _violation(
                    "SL01",
                    path,
                    node,
                    f"solver/rebuild call {name}() under "
                    f"{_describe(held)}; the expensive replan phases must "
                    "run off-latch against a pinned snapshot",
                    analysis,
                )

        if name == "publish_chunk":
            parent = parents.get(id(node))
            consumed = not (
                isinstance(parent, ast.Expr)
            )
            dominated = (
                saw_generation_compare_line is not None
                and saw_generation_compare_line <= getattr(node, "lineno", 0)
            )
            if not consumed and not dominated:
                yield _violation(
                    "GC01",
                    path,
                    node,
                    "publish_chunk() result discarded and no dominating "
                    "generation comparison: a blind publish defeats the "
                    "copy-on-write staleness check",
                    analysis,
                )
