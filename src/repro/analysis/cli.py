"""``repro-lint`` entry point: discovery, caching, driving the checkers.

``python -m repro.analysis [paths] [--format text|json] [--no-cache]``

Two passes over the file set:

1. collect the ``@requires_latch`` registry contributed by every file's
   decorators (merged with the seed table
   ``repro.discipline.CHUNK_METHOD_MODES``);
2. analyze each file against the merged registry.

Both passes are cached per file (keyed on path, mtime, size, analyzer
version and a digest of the declaration tables + merged registry), so a
warm run re-parses only changed files -- the CI job stays well under its
30s budget.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import os
import pickle
import re
import sys
from pathlib import Path

from repro.discipline import (
    CHUNK_METHOD_MODES,
    GUARDED_BY,
    LOCK_ATTRIBUTES,
    LOCK_ORDER,
    SOLVER_CALL_NAMES,
)

from . import checks
from .report import Violation, format_json, format_text
from .walker import analyze_function, decorator_requirements, iter_functions

#: Bump to invalidate every cache entry on analyzer changes.
ANALYSIS_VERSION = 1

#: Implementation modules exempt from analysis: they *are* the latch /
#: discipline machinery the rules describe.
EXEMPT_SUFFIXES = (
    os.path.join("repro", "discipline.py"),
    os.path.join("repro", "storage", "latches.py"),
)
EXEMPT_DIR_PARTS = (os.path.join("repro", "analysis"),)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([^\]]*)\]")


def _is_exempt(path: str) -> bool:
    norm = os.path.normpath(path)
    if norm.endswith(EXEMPT_SUFFIXES):
        return True
    return any(part in norm for part in EXEMPT_DIR_PARTS)


def discover(paths: list[str]) -> list[str]:
    """Python files under the given paths (files pass through)."""
    found: list[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            found.append(str(path))
        elif path.is_dir():
            found.extend(
                str(p) for p in sorted(path.rglob("*.py"))
            )
    return found


# --------------------------------------------------------------------- #
# Registry collection (pass 1)
# --------------------------------------------------------------------- #


def collect_registry(tree: ast.Module) -> dict[str, dict[str, str]]:
    """``{class name: {method: latch mode}}`` from ``@requires_latch``
    decorators in one module (module-level functions key ``""``)."""
    contrib: dict[str, dict[str, str]] = {}
    for class_name, func in iter_functions(tree):
        latch, _ = decorator_requirements(func)
        if latch is not None:
            contrib.setdefault(class_name or "", {})[func.name] = latch
    return contrib


def merge_registry(
    contribs: list[dict[str, dict[str, str]]],
) -> tuple[dict[str, str], dict[str, dict[str, str]]]:
    """Merge per-file contributions into (name registry, class registry).

    The name registry (method name -> strongest declared mode) drives
    LB01 on chunk-receiver calls; the class registry drives self-call
    resolution.  The seed table ``CHUNK_METHOD_MODES`` always applies.
    """
    names: dict[str, str] = dict(CHUNK_METHOD_MODES)
    classes: dict[str, dict[str, str]] = {}
    for contrib in contribs:
        for class_name, methods in contrib.items():
            bucket = classes.setdefault(class_name, {})
            for method, mode in methods.items():
                bucket[method] = mode
                prior = names.get(method)
                if prior is None or (
                    prior == "shared" and mode == "exclusive"
                ):
                    names[method] = mode
    return names, classes


# --------------------------------------------------------------------- #
# Per-file analysis (pass 2)
# --------------------------------------------------------------------- #


def _suppressed(source_lines: list[str], violation: Violation) -> bool:
    if not 1 <= violation.line <= len(source_lines):
        return False
    match = _SUPPRESS_RE.search(source_lines[violation.line - 1])
    if match is None:
        return False
    codes = {code.strip() for code in match.group(1).split(",")}
    return "*" in codes or violation.check in codes


def analyze_source(
    path: str,
    source: str,
    tree: ast.Module,
    registry: dict[str, str],
    class_registry: dict[str, dict[str, str]],
) -> list[Violation]:
    """Run every checker family over one parsed module."""
    violations: list[Violation] = []
    for class_name, func in iter_functions(tree):
        analysis = analyze_function(func, class_name)
        violations.extend(
            checks.check_latch_bracketing(
                path, analysis, registry, class_registry
            )
        )
        violations.extend(checks.check_lock_order(path, analysis))
        violations.extend(checks.check_guarded_state(path, analysis))
        violations.extend(checks.check_solver_rules(path, analysis))
    source_lines = source.splitlines()
    return [v for v in violations if not _suppressed(source_lines, v)]


# --------------------------------------------------------------------- #
# Cache
# --------------------------------------------------------------------- #


def _default_cache_path() -> str:
    return os.path.join(".repro-lint-cache", "cache.pickle")


def _file_sig(path: str) -> tuple[int, int]:
    stat = os.stat(path)
    return (stat.st_mtime_ns, stat.st_size)


def _tables_digest(registry: dict[str, str]) -> str:
    blob = repr(
        (
            ANALYSIS_VERSION,
            sorted(registry.items()),
            sorted(LOCK_ORDER.items()),
            sorted(LOCK_ATTRIBUTES.items(), key=repr),
            sorted((k, sorted(v.items())) for k, v in GUARDED_BY.items()),
            sorted(SOLVER_CALL_NAMES),
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class AnalysisCache:
    """Pickle-backed per-file cache of registry contributions and
    violations (invalidated by mtime/size, analyzer version and the
    declaration-table digest)."""

    def __init__(self, path: "str | None") -> None:
        self.path = path
        self.entries: dict[str, dict] = {}
        self.dirty = False
        if path is not None and os.path.exists(path):
            try:
                with open(path, "rb") as fh:
                    data = pickle.load(fh)
                if data.get("version") == ANALYSIS_VERSION:
                    self.entries = data.get("entries", {})
            except Exception:
                self.entries = {}

    def entry(self, path: str) -> "dict | None":
        entry = self.entries.get(os.path.abspath(path))
        if entry is None:
            return None
        try:
            if entry["sig"] != _file_sig(path):
                return None
        except OSError:
            return None
        return entry

    def store(self, path: str, **fields) -> None:
        key = os.path.abspath(path)
        entry = self.entries.setdefault(key, {"sig": _file_sig(path)})
        entry["sig"] = _file_sig(path)
        entry.update(fields)
        self.dirty = True

    def save(self) -> None:
        if self.path is None or not self.dirty:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "wb") as fh:
            pickle.dump(
                {"version": ANALYSIS_VERSION, "entries": self.entries}, fh
            )


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def analyze_paths(
    paths: list[str], *, cache_path: "str | None" = None
) -> list[Violation]:
    """Analyze every Python file under ``paths``; return all violations."""
    files = [f for f in discover(paths) if not _is_exempt(f)]
    cache = AnalysisCache(cache_path)

    parsed: dict[str, tuple[str, ast.Module]] = {}

    def parse(path: str) -> tuple[str, ast.Module]:
        if path not in parsed:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            parsed[path] = (source, ast.parse(source, filename=path))
        return parsed[path]

    # Pass 1: registry contributions.
    contribs: list[dict[str, dict[str, str]]] = []
    for path in files:
        entry = cache.entry(path)
        if entry is not None and "registry" in entry:
            contribs.append(entry["registry"])
            continue
        _, tree = parse(path)
        contrib = collect_registry(tree)
        cache.store(path, registry=contrib)
        contribs.append(contrib)
    registry, class_registry = merge_registry(contribs)
    digest = _tables_digest(registry)

    # Pass 2: per-file checks.
    violations: list[Violation] = []
    for path in files:
        entry = cache.entry(path)
        if (
            entry is not None
            and entry.get("digest") == digest
            and "violations" in entry
        ):
            violations.extend(entry["violations"])
            continue
        source, tree = parse(path)
        found = analyze_source(path, source, tree, registry, class_registry)
        cache.store(path, digest=digest, violations=found)
        violations.extend(found)

    cache.save()
    return violations


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static concurrency-discipline analyzer for the repro engine "
            "(latch bracketing, lock order, guarded state, solver/"
            "generation rules)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file analysis cache",
    )
    parser.add_argument(
        "--cache-path",
        default=_default_cache_path(),
        help="cache file location (default: .repro-lint-cache/cache.pickle)",
    )
    args = parser.parse_args(argv)

    cache_path = None if args.no_cache else args.cache_path
    violations = analyze_paths(args.paths or ["src"], cache_path=cache_path)
    formatter = format_json if args.format == "json" else format_text
    print(formatter(violations))
    return 1 if violations else 0
