"""``python -m repro.analysis`` -- run repro-lint."""

import sys

from .cli import main

sys.exit(main())
