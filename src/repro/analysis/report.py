"""Violation records and report formatting for ``repro-lint``."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class Violation:
    """One static concurrency-discipline finding."""

    check: str
    path: str
    line: int
    col: int
    message: str
    function: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.check)


def format_text(violations: list[Violation]) -> str:
    """GCC-style one-line-per-finding report."""
    lines = [
        f"{v.path}:{v.line}:{v.col + 1}: {v.check} "
        f"[{v.function or '<module>'}] {v.message}"
        for v in sorted(violations, key=Violation.sort_key)
    ]
    lines.append(
        f"repro-lint: {len(violations)} violation"
        f"{'' if len(violations) == 1 else 's'}"
    )
    return "\n".join(lines)


def format_json(violations: list[Violation]) -> str:
    """Machine-readable report (a JSON object per finding plus a count)."""
    payload = {
        "violations": [
            asdict(v) for v in sorted(violations, key=Violation.sort_key)
        ],
        "count": len(violations),
    }
    return json.dumps(payload, indent=2)
