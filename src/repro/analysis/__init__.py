"""Static concurrency-discipline analyzer (``repro-lint``).

``python -m repro.analysis src/`` parses the tree with :mod:`ast` and
checks it against the concurrency model declared in
:mod:`repro.discipline`.  Four checker families:

===========  ==========================================================
Check        Rule
===========  ==========================================================
``LB01``     A chunk-touching method registered via ``@requires_latch``
             may only be called while holding a chunk latch of at least
             the declared mode.
``LB02``     Raw ``self._chunks[...]`` access outside a latch bracket
             (loads need a shared latch, stores an exclusive one).
``LB03``     A latch acquired in a function must be released on every
             path out of it (``try``/``finally`` or a ``with`` scope).
``LO01``     Cross-object acquisitions follow the declared partial
             order ``repro.discipline.LOCK_ORDER`` (chunk latch before
             structure locks before monitor before reorganizer state).
``LO02``     Nested chunk-latch acquisitions are forbidden outside
             ``acquire_write_many`` (which sorts ascending).
``GS01``     Writing an attribute declared in ``GUARDED_BY`` requires
             its lock (rebinding, subscript stores, container
             mutations).
``GS02``     Reading a ``"rw"``-mode guarded attribute requires its
             lock.
``SL01``     Solver / heavy-rebuild calls (``plan_chunk``,
             ``build_chunk_replacement``, ...) must not run under any
             latch or declared lock.
``GC01``     Every ``publish_chunk`` call site must consume the result
             (or be dominated by a generation comparison) -- a blind
             publish defeats the copy-on-write staleness check.
===========  ==========================================================

The runtime complements (``REPRO_DEBUG_LATCHES=1``) are the held-latch
assertions, the lock-order graph with cycle detection (LO03) and the
Eraser-lite lockset pass (GS-R) in :mod:`repro.discipline`.

Suppress a finding with a trailing ``# repro-lint: ignore[CHECK]``
comment on the flagged line (``ignore[*]`` silences every check there).
"""

from .cli import analyze_paths, main
from .report import Violation

__all__ = ["Violation", "analyze_paths", "main"]
