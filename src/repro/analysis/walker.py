"""Held-lock abstract interpretation over function bodies.

The walker flows a *held set* -- which chunk latches (and modes) and which
declared locks the executing thread holds -- through every statement of a
function, handling the repo's two bracketing idioms:

* ``acquire_* ; try: ... finally: release_*`` (explicit bracketing), and
* ``with self._lock:`` / ``with self._latches.shared(i):`` scopes.

Branches merge by intersection (a lock is held after an ``if`` only when
both arms hold it); paths that terminate (``return``/``raise``/...) drop
out of the merge.  Loop bodies are flowed once with the loop-entry state --
sound for the repo's balanced acquire/release-per-iteration loops.

Entry preconditions come from the discipline decorators: a method under
``@requires_latch("exclusive")`` starts with an exclusive chunk latch in
its held set, ``@requires_lock("monitor")`` with the monitor lock -- the
decorator is the contract, so self-calls between annotated methods
check out without interprocedural analysis.

The result (:class:`FunctionAnalysis`) annotates every AST node with the
held set in force before it, plus the acquire events, return-site
holdings and chunk-alias variables the checkers consume.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.discipline import LOCK_ATTRIBUTES, lock_rank, mode_level

#: Chunk-latch acquire/release method names (explicit bracketing idiom).
_ACQUIRES = {
    "acquire_read": ("shared", False),
    "acquire_write": ("exclusive", False),
    "acquire_write_many": ("exclusive", True),
}
_RELEASES = {
    "release_read": ("shared", False),
    "release_write": ("exclusive", False),
    "release_write_many": ("exclusive", True),
}
_SCOPES = {"shared": "shared", "exclusive": "exclusive"}

#: Sentinel index for the sanctioned ascending multi-acquire.
MANY = "<many>"
#: Sentinel index for a latch held as a decorator precondition.
PREMISE = "<premise>"


@dataclass(frozen=True)
class ChunkHold:
    """One held chunk latch: mode plus the source text of its index."""

    mode: str
    index: str

    @property
    def level(self) -> int:
        return mode_level(self.mode)


@dataclass(frozen=True)
class Held:
    """An immutable held set: chunk latches plus named locks."""

    chunks: frozenset[ChunkHold] = frozenset()
    locks: frozenset[str] = frozenset()

    def with_chunk(self, hold: ChunkHold) -> "Held":
        return Held(self.chunks | {hold}, self.locks)

    def without_chunk(self, mode: str, index: str) -> "Held":
        for hold in self.chunks:
            if hold.index == index and hold.mode == mode:
                return Held(self.chunks - {hold}, self.locks)
        # Fall back to releasing by mode only (index spelled differently).
        for hold in self.chunks:
            if hold.mode == mode and hold.index != PREMISE:
                return Held(self.chunks - {hold}, self.locks)
        return self

    def with_lock(self, name: str) -> "Held":
        return Held(self.chunks, self.locks | {name})

    def without_lock(self, name: str) -> "Held":
        return Held(self.chunks, self.locks - {name})

    def has_chunk(self, mode: str) -> bool:
        needed = mode_level(mode)
        return any(hold.level >= needed for hold in self.chunks)

    def non_premise_chunks(self) -> list[ChunkHold]:
        return [h for h in self.chunks if h.index != PREMISE]

    def empty(self) -> bool:
        return not self.chunks and not self.locks

    def intersect(self, other: "Held") -> "Held":
        return Held(self.chunks & other.chunks, self.locks & other.locks)


#: Flow result for a statement list every path of which terminates.
TERMINATED = None


@dataclass
class AcquireEvent:
    """One latch/lock acquisition site with the held set just before it."""

    node: ast.AST
    held_before: Held
    kind: str  # "chunk" or "lock"
    mode: str = ""  # chunk mode, for kind == "chunk"
    index: str = ""  # chunk index source text
    lock_name: str = ""  # for kind == "lock"
    many: bool = False  # the sanctioned ascending multi-acquire
    scoped: bool = False  # with-statement scope (self-releasing)

    @property
    def rank(self) -> int:
        if self.kind == "chunk":
            return 0
        return lock_rank(self.lock_name)


@dataclass
class FunctionAnalysis:
    """Per-function walker output consumed by the checkers."""

    func: ast.AST
    class_name: str | None
    held_at: dict[int, Held] = field(default_factory=dict)
    acquires: list[AcquireEvent] = field(default_factory=list)
    #: (return/fall-off node, leaked chunk holds) after subtracting
    #: pending ``finally`` releases -- LB03 material.
    leaks: list[tuple[ast.AST, list[ChunkHold]]] = field(default_factory=list)
    chunk_aliases: set[str] = field(default_factory=set)
    premise: Held = field(default_factory=Held)


def _attr_chain(node: ast.AST) -> list[str]:
    """``self._latches.acquire_read`` -> ``["self", "_latches",
    "acquire_read"]`` (empty when the expression is not a name chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def is_latches_expr(node: ast.AST) -> bool:
    """Whether an expression names a latch set (``self._latches``,
    ``table.latches``, a bare ``latches`` variable...)."""
    chain = _attr_chain(node)
    return bool(chain) and "latches" in chain[-1]


def is_chunks_subscript(node: ast.AST) -> bool:
    """Whether ``node`` is a ``<...>._chunks[...]`` subscript."""
    if not isinstance(node, ast.Subscript):
        return False
    value = node.value
    return (
        isinstance(value, ast.Attribute) and value.attr == "_chunks"
    ) or (isinstance(value, ast.Name) and value.id == "_chunks")


def _decorator_call(dec: ast.AST) -> tuple[str, str] | None:
    """``(decorator name, first string argument)`` for discipline
    decorators, else ``None``."""
    if not (isinstance(dec, ast.Call) and dec.args):
        return None
    name = None
    if isinstance(dec.func, ast.Name):
        name = dec.func.id
    elif isinstance(dec.func, ast.Attribute):
        name = dec.func.attr
    arg = dec.args[0]
    if name in ("requires_latch", "requires_lock") and isinstance(
        arg, ast.Constant
    ) and isinstance(arg.value, str):
        return name, arg.value
    return None


def decorator_requirements(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[str | None, str | None]:
    """(latch mode, lock name) declared on a function, if any."""
    latch = lock = None
    for dec in func.decorator_list:
        found = _decorator_call(dec)
        if found is None:
            continue
        kind, value = found
        if kind == "requires_latch":
            latch = value
        else:
            lock = value
    return latch, lock


class FunctionWalker:
    """Flows the held set through one function body."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        self.analysis = FunctionAnalysis(func=func, class_name=class_name)
        latch, lock = decorator_requirements(func)
        premise = Held()
        if latch is not None:
            premise = premise.with_chunk(ChunkHold(latch, PREMISE))
        if lock is not None:
            premise = premise.with_lock(lock)
        self.analysis.premise = premise
        # Stack of ChunkHold lists releasable by an enclosing ``finally``.
        self._pending_finally: list[list[ChunkHold]] = []

    # ------------------------------------------------------------------ #
    # Entry
    # ------------------------------------------------------------------ #

    def run(self) -> FunctionAnalysis:
        out = self._flow(self.analysis.func.body, self.analysis.premise)
        if out is not TERMINATED:
            leaked = out.non_premise_chunks()
            if leaked:
                self.analysis.leaks.append((self.analysis.func, leaked))
        return self.analysis

    # ------------------------------------------------------------------ #
    # Expression effects
    # ------------------------------------------------------------------ #

    def _index_text(self, call: ast.Call) -> str:
        if call.args:
            return ast.unparse(call.args[0])
        return "?"

    def _lock_name_for(self, node: ast.AST) -> str | None:
        """Resolve ``self._state_lock``-style expressions to an order
        name via ``LOCK_ATTRIBUTES`` (class-qualified first)."""
        attr = None
        if isinstance(node, ast.Attribute):
            attr = node.attr
        elif isinstance(node, ast.Name):
            attr = node.id
        if attr is None:
            return None
        cls = self.analysis.class_name
        if (cls, attr) in LOCK_ATTRIBUTES:
            return LOCK_ATTRIBUTES[(cls, attr)]
        if (None, attr) in LOCK_ATTRIBUTES:
            return LOCK_ATTRIBUTES[(None, attr)]
        if attr.endswith("_lock") or attr.endswith("_mutex"):
            return f"?{attr}"  # unknown lock: ranks after every declared one
        return None

    def _apply_call(self, call: ast.Call, held: Held) -> Held:
        """Apply one call's acquire/release effect to the held set."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return held
        name = func.attr
        if name in _ACQUIRES and is_latches_expr(func.value):
            mode, many = _ACQUIRES[name]
            index = MANY if many else self._index_text(call)
            self.analysis.acquires.append(
                AcquireEvent(
                    node=call,
                    held_before=held,
                    kind="chunk",
                    mode=mode,
                    index=index,
                    many=many,
                )
            )
            return held.with_chunk(ChunkHold(mode, index))
        if name in _RELEASES and is_latches_expr(func.value):
            mode, many = _RELEASES[name]
            index = MANY if many else self._index_text(call)
            return held.without_chunk(mode, index)
        if name == "acquire":
            lock_name = self._lock_name_for(func.value)
            if lock_name is not None:
                self.analysis.acquires.append(
                    AcquireEvent(
                        node=call,
                        held_before=held,
                        kind="lock",
                        lock_name=lock_name,
                    )
                )
                return held.with_lock(lock_name)
        if name == "release":
            lock_name = self._lock_name_for(func.value)
            if lock_name is not None:
                return held.without_lock(lock_name)
        return held

    def _apply_effects(self, stmt: ast.stmt, held: Held) -> Held:
        """Apply every acquire/release call inside a simple statement."""
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                held = self._apply_call(node, held)
        return held

    def _note_aliases(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and is_chunks_subscript(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.analysis.chunk_aliases.add(target.id)

    # ------------------------------------------------------------------ #
    # Annotation helpers
    # ------------------------------------------------------------------ #

    def _annotate_tree(self, node: ast.AST, held: Held) -> None:
        for sub in ast.walk(node):
            self.analysis.held_at.setdefault(id(sub), held)

    def _annotate_exprs(self, nodes, held: Held) -> None:
        for node in nodes:
            if node is not None:
                self._annotate_tree(node, held)

    # ------------------------------------------------------------------ #
    # Statement flow
    # ------------------------------------------------------------------ #

    def _flow(self, stmts, held: Held):
        for stmt in stmts:
            held = self._flow_stmt(stmt, held)
            if held is TERMINATED:
                return TERMINATED
        return held

    def _finally_releases(self, finalbody) -> list[ChunkHold]:
        """Chunk holds an enclosing ``finally`` block will release."""
        releases: list[ChunkHold] = []
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RELEASES
                    and is_latches_expr(node.func.value)
                ):
                    mode, many = _RELEASES[node.func.attr]
                    index = MANY if many else self._index_text(node)
                    releases.append(ChunkHold(mode, index))
        return releases

    def _check_leak(self, node: ast.AST, held: Held) -> None:
        """LB03 material: chunk holds leaking out of a return/fall-off
        after crediting every pending ``finally`` release."""
        leaked = held.non_premise_chunks()
        for pending in self._pending_finally:
            for hold in pending:
                matched = next(
                    (
                        leak
                        for leak in leaked
                        if leak.mode == hold.mode
                        and (leak.index == hold.index or hold.index == MANY
                             or leak.index == MANY)
                    ),
                    None,
                )
                if matched is None:
                    matched = next(
                        (leak for leak in leaked if leak.mode == hold.mode),
                        None,
                    )
                if matched is not None:
                    leaked.remove(matched)
        if leaked:
            self.analysis.leaks.append((node, leaked))

    def _flow_stmt(self, stmt: ast.stmt, held: Held):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: analyzed separately with its own premise.
            self._annotate_exprs(stmt.decorator_list, held)
            return held
        if isinstance(stmt, ast.ClassDef):
            self._annotate_tree(stmt, held)
            return held
        if isinstance(stmt, ast.With):
            return self._flow_with(stmt, held)
        if isinstance(stmt, ast.Try):
            return self._flow_try(stmt, held)
        if isinstance(stmt, ast.If):
            self._annotate_tree(stmt.test, held)
            after_test = self._apply_effects_expr(stmt.test, held)
            then_out = self._flow(stmt.body, after_test)
            else_out = self._flow(stmt.orelse, after_test)
            if then_out is TERMINATED and else_out is TERMINATED:
                return TERMINATED
            if then_out is TERMINATED:
                return else_out
            if else_out is TERMINATED:
                return then_out
            return then_out.intersect(else_out)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            if isinstance(stmt, ast.While):
                self._annotate_tree(stmt.test, held)
            else:
                self._annotate_tree(stmt.iter, held)
                self._annotate_tree(stmt.target, held)
            self._flow(stmt.body, held)
            self._flow(stmt.orelse, held)
            # Balanced-per-iteration assumption: the loop neither leaks
            # nor consumes holds across iterations (the per-iteration
            # body flow above still checks its own bracketing).
            return held
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._annotate_tree(stmt, held)
            if isinstance(stmt, ast.Return):
                self._check_leak(stmt, held)
            return TERMINATED
        if isinstance(stmt, (ast.Break, ast.Continue)):
            self._annotate_tree(stmt, held)
            return TERMINATED
        # Simple statement: annotate with the entry state, then apply
        # acquire/release effects for what follows.
        self._annotate_tree(stmt, held)
        self._note_aliases(stmt)
        return self._apply_effects(stmt, held)

    def _apply_effects_expr(self, expr: ast.AST, held: Held) -> Held:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                held = self._apply_call(node, held)
        return held

    def _flow_with(self, stmt: ast.With, held: Held):
        entered = held
        scoped: list[tuple[str, object]] = []
        for item in stmt.items:
            self._annotate_tree(item.context_expr, entered)
            ctx = item.context_expr
            handled = False
            if isinstance(ctx, ast.Call) and isinstance(
                ctx.func, ast.Attribute
            ):
                scope_mode = _SCOPES.get(ctx.func.attr)
                if scope_mode is not None and is_latches_expr(ctx.func.value):
                    index = self._index_text(ctx)
                    self.analysis.acquires.append(
                        AcquireEvent(
                            node=ctx,
                            held_before=entered,
                            kind="chunk",
                            mode=scope_mode,
                            index=index,
                            scoped=True,
                        )
                    )
                    entered = entered.with_chunk(ChunkHold(scope_mode, index))
                    scoped.append(("chunk", (scope_mode, index)))
                    handled = True
            if not handled:
                lock_name = self._lock_name_for(ctx)
                if lock_name is not None:
                    self.analysis.acquires.append(
                        AcquireEvent(
                            node=ctx,
                            held_before=entered,
                            kind="lock",
                            lock_name=lock_name,
                            scoped=True,
                        )
                    )
                    entered = entered.with_lock(lock_name)
                    scoped.append(("lock", lock_name))
        # A with-scope self-releases on every exit path, exactly like a
        # pending ``finally`` -- credit it against return-site leaks.
        scope_releases = [
            ChunkHold(info[0], info[1])
            for kind, info in scoped
            if kind == "chunk"
        ]
        if scope_releases:
            self._pending_finally.append(scope_releases)
        try:
            out = self._flow(stmt.body, entered)
        finally:
            if scope_releases:
                self._pending_finally.pop()
        if out is TERMINATED:
            return TERMINATED
        for kind, info in scoped:
            if kind == "chunk":
                mode, index = info
                out = out.without_chunk(mode, index)
            else:
                out = out.without_lock(info)
        return out

    def _flow_try(self, stmt: ast.Try, held: Held):
        releases = self._finally_releases(stmt.finalbody)
        if releases:
            self._pending_finally.append(releases)
        try:
            body_out = self._flow(stmt.body, held)
            for handler in stmt.handlers:
                # Handlers run with (approximately) the try-entry state.
                self._flow(handler.body, held)
            self._flow(stmt.orelse, body_out if body_out else held)
        finally:
            if releases:
                self._pending_finally.pop()
        base = body_out if body_out is not TERMINATED else held
        if stmt.finalbody:
            final_out = self._flow(stmt.finalbody, base)
            if final_out is TERMINATED:
                return TERMINATED
            if body_out is TERMINATED:
                return TERMINATED
            return final_out
        return body_out


def iter_functions(tree: ast.Module):
    """Yield ``(class name or None, function node)`` for every function.

    Methods of nested classes report the innermost class; nested
    functions are yielded with their enclosing class (their held premise
    is still their own decorator set).
    """

    def visit(node, class_name):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield class_name, child
                yield from visit(child, class_name)
            else:
                yield from visit(child, class_name)

    yield from visit(tree, None)


def analyze_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef, class_name: str | None
) -> FunctionAnalysis:
    """Run the held-set walker over one function."""
    return FunctionWalker(func, class_name).run()
