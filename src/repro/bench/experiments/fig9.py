"""Figure 9: cost-model verification.

(a) Inserts: a chunk with equal-size partitions; the insert cost should grow
    linearly with the number of trailing partitions (Eq. 9).
(b) Point queries: a chunk with exponentially increasing partition sizes; the
    point-query cost should grow linearly with partition size (Eq. 7).

For both, the "measured" cost is the storage engine's block-access accounting
and the "model" cost is the analytical cost model's prediction; the figure
reports both plus their ratio (the paper's grey points, always close to 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.cost_model import CostModel, boundaries_to_vector
from ...core.frequency_model import BlockMapper, FrequencyModel
from ...storage.column import PartitionedColumn, snap_boundaries_to_duplicates
from ...storage.cost_accounting import blocks_spanned, constants_for_block_values
from ..reporting import banner, format_table


@dataclass(frozen=True)
class Figure9Config:
    """Scale knobs for the cost-model verification."""

    chunk_values: int = 262_144
    block_values: int = 512
    insert_partitions: int = 64
    pq_partitions: int = 12
    repetitions: int = 5
    seed: int = 9


def _build_column(values, boundaries, block_values):
    boundaries = snap_boundaries_to_duplicates(values, boundaries)
    return PartitionedColumn(values, boundaries, block_values=block_values, dense=True)


def insert_verification(config: Figure9Config) -> list[tuple[int, float, float, float]]:
    """(partition id, measured ns, model ns, ratio) for inserts."""
    rng = np.random.default_rng(config.seed)
    constants = constants_for_block_values(config.block_values)
    values = np.sort(rng.integers(0, 2**31, config.chunk_values)) * 2
    num_blocks = blocks_spanned(0, config.chunk_values, config.block_values)
    boundaries = np.unique(
        np.round(
            np.linspace(0, config.chunk_values, config.insert_partitions + 1)[1:]
        ).astype(np.int64)
    )
    mapper = BlockMapper(values, config.block_values)
    block_boundaries = np.unique(
        np.minimum(np.ceil(boundaries / config.block_values), num_blocks)
    ).astype(int)
    vector = boundaries_to_vector(num_blocks, block_boundaries)
    model = CostModel(FrequencyModel(num_blocks), constants)

    rows = []
    for partition in range(len(boundaries)):
        start = 0 if partition == 0 else boundaries[partition - 1]
        end = boundaries[partition]
        target_position = int((start + end) // 2)
        target_value = int(values[min(target_position, config.chunk_values - 1)]) | 1
        measured = []
        for _ in range(config.repetitions):
            column = _build_column(values, boundaries, config.block_values)
            before = column.counter.snapshot()
            column.insert(target_value)
            measured.append(column.counter.diff(before).cost(constants))
        measured_ns = float(np.mean(measured))
        model_ns = model.insert_cost(mapper.block_of(target_value), vector)
        rows.append(
            (partition, measured_ns, model_ns, measured_ns / model_ns if model_ns else 1.0)
        )
    return rows


def point_query_verification(
    config: Figure9Config,
) -> list[tuple[int, float, float, float]]:
    """(partition id, measured ns, model ns, ratio) for point queries."""
    rng = np.random.default_rng(config.seed + 1)
    constants = constants_for_block_values(config.block_values)
    values = np.sort(rng.integers(0, 2**31, config.chunk_values)) * 2

    # Exponentially increasing partition sizes, scaled to fill the chunk.
    weights = 2.0 ** np.arange(config.pq_partitions)
    sizes = np.maximum(
        (weights / weights.sum() * config.chunk_values).astype(np.int64), 1
    )
    sizes[-1] += config.chunk_values - sizes.sum()
    boundaries = np.cumsum(sizes)
    num_blocks = blocks_spanned(0, config.chunk_values, config.block_values)
    mapper = BlockMapper(values, config.block_values)
    block_boundaries = np.unique(
        np.minimum(np.ceil(boundaries / config.block_values), num_blocks)
    ).astype(int)
    vector = boundaries_to_vector(num_blocks, block_boundaries)
    model = CostModel(FrequencyModel(num_blocks), constants)
    column = _build_column(values, boundaries, config.block_values)

    rows = []
    for partition in range(len(boundaries)):
        start = 0 if partition == 0 else boundaries[partition - 1]
        end = boundaries[partition]
        probes = values[
            rng.integers(int(start), int(end), size=config.repetitions)
        ]
        measured = []
        model_costs = []
        for probe in probes:
            before = column.counter.snapshot()
            column.point_query(int(probe))
            measured.append(column.counter.diff(before).cost(constants))
            model_costs.append(model.point_query_cost(mapper.block_of(int(probe)), vector))
        measured_ns = float(np.mean(measured))
        model_ns = float(np.mean(model_costs))
        rows.append(
            (partition, measured_ns, model_ns, measured_ns / model_ns if model_ns else 1.0)
        )
    return rows


def run(config: Figure9Config | None = None) -> dict[str, list[tuple]]:
    """Run both verification panels."""
    if config is None:
        config = Figure9Config()
    return {
        "inserts": insert_verification(config),
        "point_queries": point_query_verification(config),
    }


def report(results: dict[str, list[tuple]]) -> str:
    """Format both panels of Figure 9."""
    headers = ("partition id", "measured (ns)", "model (ns)", "ratio")
    return (
        banner("Figure 9a: insert cost verification")
        + "\n"
        + format_table(headers, results["inserts"])
        + "\n\n"
        + banner("Figure 9b: point-query cost verification")
        + "\n"
        + format_table(headers, results["point_queries"])
    )


def main() -> None:
    """Run and print the experiment."""
    print(report(run()))


if __name__ == "__main__":
    main()
