"""Figure 16: robustness to workload uncertainty.

The training workload is half point queries (skewed toward the latter part of
the domain) and half inserts (skewed toward the first part).  The actual
workload drifts in two ways: *mass shift* (point-query mass becomes insert
mass or vice versa, -25% .. +25%) and *rotational shift* (the targeted part of
the domain rotates by 0 .. 50%).  The figure reports the latency of the
layout trained on the original workload, normalized to the unperturbed case;
the paper observes robustness up to roughly 10-15% shift followed by a cliff
of up to ~60% penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.cost_model import CostModel
from ...core.dp_solver import solve_dp
from ...core.frequency_model import FrequencyModel
from ...core.robustness import mass_shift, rotational_shift
from ...storage.cost_accounting import constants_for_block_values
from ...workload.distributions import EarlySkewSampler, RecentSkewSampler, histogram_of
from ..reporting import banner, format_table


@dataclass(frozen=True)
class Figure16Config:
    """Scale knobs for the robustness experiment."""

    num_blocks: int = 256
    block_values: int = 1_024
    operations: int = 10_000
    mass_shifts: tuple[float, ...] = (-0.25, -0.15, 0.0, 0.15, 0.25)
    rotational_shifts: tuple[float, ...] = (
        0.0,
        0.05,
        0.10,
        0.15,
        0.20,
        0.25,
        0.30,
        0.35,
        0.40,
        0.45,
        0.50,
    )


def training_model(config: Figure16Config) -> FrequencyModel:
    """The Fig. 16a workload: PQs target late domain, inserts early domain."""
    point_hist = histogram_of(
        RecentSkewSampler(exponent=4.0), bins=config.num_blocks, samples=config.operations
    )
    insert_hist = histogram_of(
        EarlySkewSampler(exponent=4.0), bins=config.num_blocks, samples=config.operations
    )
    half = config.operations / 2
    model = FrequencyModel(config.num_blocks)
    model.pq[:] = point_hist / point_hist.sum() * half
    model.ins[:] = insert_hist / insert_hist.sum() * half
    return model


def run(config: Figure16Config | None = None) -> dict[str, object]:
    """Normalized latency for every (mass shift, rotational shift) pair."""
    if config is None:
        config = Figure16Config()
    constants = constants_for_block_values(config.block_values)
    base_model = training_model(config)
    trained = solve_dp(CostModel(base_model, constants))
    baseline_cost = CostModel(base_model, constants).total_cost(trained.vector)

    matrix: dict[float, list[float]] = {}
    for mass in config.mass_shifts:
        series = []
        shifted_mass = mass_shift(base_model, mass)
        for rotation in config.rotational_shifts:
            actual = rotational_shift(shifted_mass, rotation)
            cost = CostModel(actual, constants).total_cost(trained.vector)
            series.append(cost / baseline_cost)
        matrix[mass] = series
    return {
        "matrix": matrix,
        "rotational_shifts": config.rotational_shifts,
        "trained_partitions": trained.num_partitions,
        "baseline_cost": baseline_cost,
    }


def report(results: dict[str, object]) -> str:
    """Format the Fig. 16b robustness matrix."""
    rotations = results["rotational_shifts"]
    headers = ["mass shift \\ rotation"] + [f"{r:.0%}" for r in rotations]
    rows = []
    for mass, series in results["matrix"].items():
        rows.append([f"{mass:+.0%}"] + [float(value) for value in series])
    text = banner("Figure 16: robustness to workload uncertainty (norm. latency)")
    text += "\n" + format_table(headers, rows)
    text += (
        f"\n\ntrained layout: {results['trained_partitions']} partitions; "
        "values are latency normalized to the unperturbed workload"
    )
    return text


def main() -> None:
    """Run and print the experiment."""
    print(report(run()))


if __name__ == "__main__":
    main()
