"""Figure 14: leveraging ghost values.

Insert latency as a function of the ghost-value budget (0.01% to 10% of the
data size) for two update-intensive workloads (skewed and uniform; UDI1 and
UDI2 in the paper) and one hybrid skewed workload (YCSB-A2-like).  The paper
shows insert latency dropping as the budget grows, with ~2x lower insert
latency already at 1% ghost values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...storage.layouts import LayoutKind
from ...workload.hap import HAPConfig, make_workload
from ..harness import build_hap_engine, run_workload
from ..reporting import banner, format_table

WORKLOADS = (
    ("UDI1 (update-only, skewed)", "update_only_skewed"),
    ("UDI2 (update-only, uniform)", "update_only_uniform"),
    ("YCSB-A2 (hybrid, skewed)", "hybrid_skewed"),
)


@dataclass(frozen=True)
class Figure14Config:
    """Scale knobs for the ghost-value sweep."""

    num_rows: int = 131_072
    block_values: int = 1_024
    num_operations: int = 2_000
    ghost_fractions: tuple[float, ...] = (0.0001, 0.001, 0.01, 0.1)


def run(config: Figure14Config | None = None) -> dict[str, list[tuple]]:
    """Insert latency per workload and ghost fraction."""
    if config is None:
        config = Figure14Config()
    hap = HAPConfig(
        num_rows=config.num_rows,
        chunk_size=config.num_rows,
        block_values=config.block_values,
    )
    output: dict[str, list[tuple]] = {}
    for label, profile in WORKLOADS:
        rows = []
        training = make_workload(profile, hap, num_operations=config.num_operations, seed=7)
        for fraction in config.ghost_fractions:
            engine = build_hap_engine(
                LayoutKind.CASPER,
                hap,
                training_workload=training,
                ghost_fraction=fraction,
            )
            evaluation = make_workload(
                profile, hap, num_operations=config.num_operations, seed=42
            )
            result = run_workload(engine, evaluation, layout_name="casper")
            rows.append(
                (
                    fraction,
                    result.mean_latency_ns.get("insert", 0.0) / 1000.0,
                    result.mean_latency_ns.get("update", 0.0) / 1000.0,
                    result.throughput_ops / 1000.0,
                )
            )
        output[label] = rows
    return output


def report(results: dict[str, list[tuple]]) -> str:
    """Format the Fig. 14 ghost-value sweep."""
    sections = [banner("Figure 14: insert latency vs ghost-value budget")]
    headers = ("ghost fraction", "insert latency (us)", "update latency (us)", "throughput (Kops)")
    for label, rows in results.items():
        sections.append(f"\n# {label}\n" + format_table(headers, rows))
    return "\n".join(sections)


def main() -> None:
    """Run and print the experiment."""
    print(report(run()))


if __name__ == "__main__":
    main()
