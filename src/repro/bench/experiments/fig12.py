"""Figure 12: normalized throughput across workloads and layouts.

Six workload profiles (hybrid skewed, hybrid range skewed, read-only skewed,
read-only uniform, update-only skewed, update-only uniform) are executed
against the six layout modes; throughput is normalized to the
state-of-the-art delta-store design.  The paper reports Casper at 1.75-2.32x
on the hybrid and update-intensive workloads and roughly on par with the
state of the art for read-only workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...storage.layouts import LayoutKind
from ...workload.hap import HAPConfig
from ..harness import LAYOUT_ORDER, compare_layouts, normalized_throughput
from ..reporting import banner, format_table

PROFILES = (
    "hybrid_skewed",
    "hybrid_range_skewed",
    "read_only_skewed",
    "read_only_uniform",
    "update_only_skewed",
    "update_only_uniform",
)


@dataclass(frozen=True)
class Figure12Config:
    """Scale knobs for the throughput comparison."""

    num_rows: int = 131_072
    block_values: int = 1_024
    num_operations: int = 2_000
    partitions: int = 64
    ghost_fraction: float = 0.01


def run(config: Figure12Config | None = None) -> dict[str, dict]:
    """Return per-profile normalized throughput and raw results."""
    if config is None:
        config = Figure12Config()
    hap = HAPConfig(
        num_rows=config.num_rows,
        chunk_size=config.num_rows,
        block_values=config.block_values,
    )
    output: dict[str, dict] = {}
    for profile in PROFILES:
        results = compare_layouts(
            hap,
            profile,
            num_operations=config.num_operations,
            partitions=config.partitions,
            ghost_fraction=config.ghost_fraction,
        )
        output[profile] = {
            "results": results,
            "normalized": normalized_throughput(results),
        }
    return output


def report(results: dict[str, dict]) -> str:
    """Format the Fig. 12 normalized-throughput matrix."""
    headers = ["workload"] + [kind.value for kind in LAYOUT_ORDER]
    rows = []
    for profile, payload in results.items():
        normalized = payload["normalized"]
        rows.append(
            [profile] + [normalized.get(kind, float("nan")) for kind in LAYOUT_ORDER]
        )
    text = banner(
        "Figure 12: throughput normalized to the state-of-the-art delta store"
    )
    text += "\n" + format_table(headers, rows)
    casper_vs_soa = [
        payload["normalized"][LayoutKind.CASPER] for payload in results.values()
    ]
    text += (
        f"\n\nCasper vs state-of-art across workloads: "
        f"min {min(casper_vs_soa):.2f}x, max {max(casper_vs_soa):.2f}x"
    )
    return text


def main() -> None:
    """Run and print the experiment."""
    print(report(run()))


if __name__ == "__main__":
    main()
