"""Compression experiment (Section 6.2).

The paper reports that Casper compresses its micro-benchmark data by ~2.5x
and TPC-H data by ~4.5x with dictionary / frame-of-reference encoding, and
that fine partitioning *helps* frame-of-reference compression because small
partitions cover small value ranges.  This experiment measures those ratios
on the synthetic datasets of this repository and sweeps the partition count
for partitioned frame-of-reference encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...storage.column import equal_width_boundaries
from ...storage.compression import (
    DictionaryCodec,
    FrameOfReferenceCodec,
    RunLengthCodec,
)
from ...workload.tpch import TPCHConfig, generate_lineitem
from ..reporting import banner, format_table


@dataclass(frozen=True)
class CompressionConfig:
    """Scale knobs for the compression experiment."""

    num_values: int = 262_144
    distinct_values: int = 4_096
    partition_counts: tuple[int, ...] = (1, 16, 64, 256, 1_024)
    seed: int = 21


def run(config: CompressionConfig | None = None) -> dict[str, object]:
    """Measure compression ratios on micro-benchmark and TPC-H-like data."""
    if config is None:
        config = CompressionConfig()
    rng = np.random.default_rng(config.seed)
    micro = np.sort(rng.integers(0, config.distinct_values, config.num_values)) * 7
    _tpch_keys, payload = generate_lineitem(TPCHConfig(num_rows=config.num_values))
    quantity = payload[:, 0]
    discount = payload[:, 1]

    dictionary = DictionaryCodec()
    frame = FrameOfReferenceCodec()
    rle = RunLengthCodec()

    datasets = {
        "micro-benchmark (sorted, 4K distinct)": micro,
        "TPC-H l_quantity": quantity,
        "TPC-H l_discount": discount,
    }
    ratio_rows = []
    for name, data in datasets.items():
        ratio_rows.append(
            (
                name,
                dictionary.stats(data).ratio,
                frame.stats(data).ratio,
                rle.stats(data).ratio,
            )
        )

    partition_rows = []
    for partitions in config.partition_counts:
        boundaries = equal_width_boundaries(micro.shape[0], partitions)
        stats = frame.partitioned_stats(micro, boundaries)
        partition_rows.append((partitions, stats.ratio))

    return {"ratios": ratio_rows, "partitioned_for": partition_rows}


def report(results: dict[str, object]) -> str:
    """Format the compression ratios."""
    text = banner("Compression (Section 6.2)")
    text += "\n" + format_table(
        ("dataset", "dictionary ratio", "frame-of-reference ratio", "RLE ratio"),
        results["ratios"],
    )
    text += "\n\n" + format_table(
        ("partitions", "partitioned frame-of-reference ratio"),
        results["partitioned_for"],
    )
    return text


def main() -> None:
    """Run and print the experiment."""
    print(report(run()))


if __name__ == "__main__":
    main()
