"""Experiment drivers: one module per figure of the paper's evaluation.

=============  =========================================================
Module         Paper figure
=============  =========================================================
``fig1``       Fig. 1  -- motivation: vanilla vs delta store vs Casper
``fig2``       Fig. 2  -- impact of structure and of ghost values
``fig9``       Fig. 9  -- cost-model verification (inserts, point queries)
``fig11``      Fig. 11 -- partitioning-decision latency vs data size
``fig12``      Fig. 12 -- normalized throughput across workloads/layouts
``fig13``      Fig. 13 -- per-operation latency drill-down
``fig14``      Fig. 14 -- leveraging ghost values
``fig15``      Fig. 15 -- meeting insert SLAs
``fig16``      Fig. 16 -- robustness to workload uncertainty
``compression``  Section 6.2 -- compression ratios
=============  =========================================================

Each module exposes ``run()`` (returns structured results) and ``main()``
(prints the same rows/series the paper's figure plots) and can be executed
with ``python -m repro.bench.experiments.figN``.
"""

from . import compression, fig1, fig2, fig9, fig11, fig12, fig13, fig14, fig15, fig16

__all__ = [
    "compression",
    "fig1",
    "fig2",
    "fig9",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
]
