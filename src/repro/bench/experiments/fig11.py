"""Figure 11: scalability of the partitioning decision with data size.

The paper shows the partitioning-decision latency for data sizes from 10^4
to 10^9 values, solved as a single problem versus divided into 100 to 100,000
chunks (solved in parallel on 64 cores).  Chunking reduces the latency by
many orders of magnitude; the 10^9-value single-job point is an estimate
(10^15 seconds) rather than a measurement -- we follow the same approach:
small problems are actually solved (and timed), large ones are extrapolated
from the calibrated complexity model of :mod:`repro.core.chunking`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.chunking import ScalabilityModel, measure_solve_seconds
from ...storage.cost_accounting import DEFAULT_BLOCK_VALUES
from ..reporting import banner, format_table


@dataclass(frozen=True)
class Figure11Config:
    """Scale knobs for the scalability experiment."""

    data_sizes: tuple[int, ...] = (
        10_000,
        100_000,
        1_000_000,
        10_000_000,
        100_000_000,
        1_000_000_000,
    )
    chunk_counts: tuple[int, ...] = (1, 100, 1_000, 10_000, 100_000)
    block_values: int = DEFAULT_BLOCK_VALUES
    cpus: int = 64
    calibration_blocks: int = 512
    measured_max_blocks: int = 4_096
    exponent: float = 3.0


def run(config: Figure11Config | None = None) -> dict[str, object]:
    """Produce the decision-latency matrix (milliseconds)."""
    if config is None:
        config = Figure11Config()
    model = ScalabilityModel.calibrate(
        calibration_blocks=config.calibration_blocks, exponent=config.exponent
    )
    measured: list[tuple[int, float]] = []
    rows: list[tuple] = []
    for data_size in config.data_sizes:
        row: list[object] = [data_size]
        for chunks in config.chunk_counts:
            if chunks > max(1, data_size // config.block_values):
                row.append(float("nan"))
                continue
            per_chunk_blocks = max(
                1, (data_size // chunks + config.block_values - 1) // config.block_values
            )
            if chunks == 1 and per_chunk_blocks <= config.measured_max_blocks:
                seconds = measure_solve_seconds(per_chunk_blocks)
                measured.append((data_size, seconds))
            else:
                seconds = model.decision_latency_seconds(
                    data_size,
                    block_values=config.block_values,
                    chunks=chunks,
                    cpus=config.cpus if chunks > 1 else 1,
                )
            row.append(seconds * 1e3)
        rows.append(tuple(row))
    return {"rows": rows, "measured": measured, "model": model}


def report(results: dict[str, object]) -> str:
    """Format the Fig. 11 latency matrix."""
    config = Figure11Config()
    headers = ["data size (#values)"] + [
        "single job (ms)" if c == 1 else f"chunked-{c} (ms)" for c in config.chunk_counts
    ]
    text = banner("Figure 11: partitioning decision latency vs data size")
    text += "\n" + format_table(headers, results["rows"])
    measured = results["measured"]
    if measured:
        text += "\n\nmeasured single-chunk DP solves (seconds): " + ", ".join(
            f"{size:.0e}->{seconds * 1e3:.2f}ms" for size, seconds in measured
        )
    return text


def main() -> None:
    """Run and print the experiment."""
    print(report(run()))


if __name__ == "__main__":
    main()
