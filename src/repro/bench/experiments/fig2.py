"""Figure 2: the impact of structure and of ghost values (conceptual curves).

(a) Adding structure (more non-overlapping partitions) reduces read cost
    roughly logarithmically while increasing write cost linearly.
(b) Adding ghost values (memory amplification) reduces write cost roughly
    linearly at a sub-linear read penalty.

Both curves are produced from this repository's cost model and storage
engine rather than drawn conceptually: (a) sweeps equi-width partition counts
through the analytical cost model; (b) sweeps the ghost budget through the
actual engine and measures insert/read latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.cost_model import CostModel, boundaries_to_vector
from ...core.frequency_model import FrequencyModel
from ...storage.column import PartitionedColumn, equal_width_boundaries
from ...storage.cost_accounting import constants_for_block_values
from ...storage.ghost_values import spread_evenly
from ..reporting import banner, format_table


@dataclass(frozen=True)
class Figure2Config:
    """Scale knobs for the Figure 2 sweeps."""

    num_blocks: int = 256
    block_values: int = 1_024
    partition_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    ghost_fractions: tuple[float, ...] = (0.0, 0.0001, 0.0003, 0.001, 0.003, 0.01)
    operations: int = 800
    seed: int = 5


def structure_sweep(config: Figure2Config) -> list[tuple[int, float, float]]:
    """(partitions, normalized read cost, normalized write cost) triples."""
    constants = constants_for_block_values(config.block_values)
    model = FrequencyModel(config.num_blocks)
    model.pq[:] = 1.0
    model.ins[:] = 1.0
    cost_model = CostModel(model, constants)
    rows = []
    for k in config.partition_counts:
        k = max(1, min(int(k), config.num_blocks))
        ends = np.unique(
            np.round(np.linspace(0, config.num_blocks, k + 1)[1:]).astype(int)
        )
        ends = ends[ends > 0]
        vector = boundaries_to_vector(config.num_blocks, ends)
        per_op = cost_model.per_operation_totals(vector)
        rows.append(
            (
                int(k),
                per_op["point_query"] / config.num_blocks,
                per_op["insert"] / config.num_blocks,
            )
        )
    max_read = max(row[1] for row in rows)
    max_write = max(row[2] for row in rows)
    return [
        (k, read / max_read, write / max_write) for k, read, write in rows
    ]


def ghost_value_sweep(config: Figure2Config) -> list[tuple[float, float, float, float]]:
    """(ghost fraction, memory amplification, write cost, read cost) rows."""
    constants = constants_for_block_values(config.block_values)
    rng = np.random.default_rng(config.seed)
    size = config.num_blocks * config.block_values
    values = np.sort(rng.integers(0, 2**31, size)) * 2
    partitions = 64
    rows = []
    for fraction in config.ghost_fractions:
        boundaries = equal_width_boundaries(size, partitions)
        budget = int(size * fraction)
        ghosts = spread_evenly(budget, boundaries.shape[0]) if budget else None
        column = PartitionedColumn(
            values,
            boundaries,
            block_values=config.block_values,
            ghost_allocation=ghosts,
            dense=ghosts is None,
        )
        insert_keys = rng.integers(0, int(values[-1]), config.operations) | 1
        read_keys = rng.choice(values, config.operations)
        before = column.counter.snapshot()
        for key in insert_keys:
            column.insert(int(key))
        insert_cost = column.counter.diff(before).cost(constants) / config.operations
        before = column.counter.snapshot()
        for key in read_keys:
            column.point_query(int(key))
        read_cost = column.counter.diff(before).cost(constants) / config.operations
        rows.append(
            (float(fraction), column.memory_amplification, insert_cost, read_cost)
        )
    return rows


def run(config: Figure2Config | None = None) -> dict[str, list[tuple]]:
    """Run both sweeps."""
    if config is None:
        config = Figure2Config()
    return {
        "structure": structure_sweep(config),
        "ghost_values": ghost_value_sweep(config),
    }


def report(results: dict[str, list[tuple]]) -> str:
    """Format both panels of Figure 2."""
    part_a = format_table(
        ("partitions", "norm. read cost", "norm. write cost"), results["structure"]
    )
    part_b = format_table(
        ("ghost fraction", "memory amplification", "insert cost (ns)", "read cost (ns)"),
        results["ghost_values"],
    )
    return (
        banner("Figure 2a: impact of structure (partitions)")
        + "\n"
        + part_a
        + "\n\n"
        + banner("Figure 2b: impact of ghost values")
        + "\n"
        + part_b
    )


def main() -> None:
    """Run and print the experiment."""
    print(report(run()))


if __name__ == "__main__":
    main()
