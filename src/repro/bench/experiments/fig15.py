"""Figure 15: meeting performance constraints (insert SLAs).

A hybrid workload (Q1 89%, Q4 10%, Q6 1%) is executed under layouts optimized
with progressively tighter insert SLAs.  The insert latency should track the
SLA (fewer partitions -> cheaper worst-case ripple) while the overall
throughput degrades only marginally (< 3% in the paper) and the update cost
rises slightly (locating the value to update becomes more expensive with
coarser partitions).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.constraints import SLAConstraints
from ...storage.layouts import LayoutKind
from ...workload.hap import HAPConfig, make_workload
from ..harness import build_hap_engine, run_workload
from ..reporting import banner, format_table


@dataclass(frozen=True)
class Figure15Config:
    """Scale knobs for the SLA experiment."""

    num_rows: int = 131_072
    block_values: int = 1_024
    num_operations: int = 2_000
    ghost_fraction: float = 0.001
    insert_slas_us: tuple[float | None, ...] = (
        None,
        12.5,
        10.0,
        7.5,
        6.25,
        3.75,
        2.5,
        2.0,
        1.5,
    )


def run(config: Figure15Config | None = None) -> list[tuple]:
    """Rows of (SLA, Q1 latency, Q4 latency, Q4 p99.9, Q6 latency, throughput)."""
    if config is None:
        config = Figure15Config()
    hap = HAPConfig(
        num_rows=config.num_rows,
        chunk_size=config.num_rows,
        block_values=config.block_values,
    )
    training = make_workload(
        "sla_hybrid", hap, num_operations=config.num_operations, seed=7
    )
    rows = []
    for sla_us in config.insert_slas_us:
        sla = (
            SLAConstraints(update_sla_ns=sla_us * 1000.0)
            if sla_us is not None
            else None
        )
        engine = build_hap_engine(
            LayoutKind.CASPER,
            hap,
            training_workload=training,
            ghost_fraction=config.ghost_fraction,
            sla=sla,
        )
        evaluation = make_workload(
            "sla_hybrid", hap, num_operations=config.num_operations, seed=42
        )
        result = run_workload(engine, evaluation, layout_name="casper")
        rows.append(
            (
                "none" if sla_us is None else sla_us,
                result.mean_latency_ns.get("point_query", 0.0) / 1000.0,
                result.mean_latency_ns.get("insert", 0.0) / 1000.0,
                result.p999_latency_ns.get("insert", 0.0) / 1000.0,
                result.mean_latency_ns.get("update", 0.0) / 1000.0,
                result.throughput_ops / 1000.0,
            )
        )
    return rows


def report(rows: list[tuple]) -> str:
    """Format the Fig. 15 SLA sweep."""
    headers = (
        "insert SLA (us)",
        "Q1 latency (us)",
        "Q4 latency (us)",
        "Q4 p99.9 (us)",
        "Q6 latency (us)",
        "throughput (Kops)",
    )
    return (
        banner("Figure 15: meeting insert SLAs (Q1 89%, Q4 10%, Q6 1%)")
        + "\n"
        + format_table(headers, rows)
    )


def main() -> None:
    """Run and print the experiment."""
    print(report(run()))


if __name__ == "__main__":
    main()
