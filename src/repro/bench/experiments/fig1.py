"""Figure 1: motivating experiment.

A hybrid workload with transactional access patterns (point queries, TPC-H
style inserts) and the analytical TPC-H Q6 range query is executed on three
storage designs: a vanilla column-store (no write optimization), the
state-of-the-art sorted column with a delta store, and Casper's
workload-tailored layout.  The paper reports ~2x for the delta store over the
vanilla column-store and a further ~4x for Casper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.planner import CasperPlanner
from ...storage.cost_accounting import constants_for_block_values
from ...storage.engine import StorageEngine
from ...storage.layouts import LayoutKind, LayoutSpec
from ...storage.table import layout_chunk_builder
from ...workload.tpch import TPCHConfig, build_lineitem_table, figure1_workload
from ..harness import WorkloadRunResult, run_workload
from ..reporting import banner, format_table


@dataclass(frozen=True)
class Figure1Config:
    """Scale knobs for the Figure 1 experiment."""

    num_rows: int = 131_072
    block_values: int = 1_024
    num_operations: int = 2_000
    ghost_fraction: float = 0.01
    #: Absolute delta merge trigger, reflecting the continuous integration of
    #: the delta store in state-of-the-art systems (see DESIGN.md).
    merge_entries: int = 16


LAYOUTS = (
    ("vanilla column-store", LayoutKind.NO_ORDER),
    ("col-store with delta (state-of-art)", LayoutKind.STATE_OF_ART),
    ("optimal column layout (Casper)", LayoutKind.CASPER),
)


def run(config: Figure1Config | None = None) -> dict[str, WorkloadRunResult]:
    """Run the Figure 1 comparison and return per-layout results."""
    if config is None:
        config = Figure1Config()
    tpch = TPCHConfig(
        num_rows=config.num_rows,
        chunk_size=config.num_rows,
        block_values=config.block_values,
    )
    constants = constants_for_block_values(config.block_values)
    training = figure1_workload(
        tpch, num_operations=config.num_operations, seed=3
    )
    evaluation = figure1_workload(
        tpch, num_operations=config.num_operations, seed=17
    )
    results: dict[str, WorkloadRunResult] = {}
    for name, kind in LAYOUTS:
        if kind is LayoutKind.CASPER:
            planner = CasperPlanner(
                sample_workload=training,
                block_values=config.block_values,
                ghost_fraction=config.ghost_fraction,
                constants=constants,
            )
            table = build_lineitem_table(tpch, planner.build_chunk)
        else:
            spec = LayoutSpec(
                kind=kind,
                block_values=config.block_values,
                ghost_fraction=config.ghost_fraction,
                merge_entries=config.merge_entries,
            )
            table = build_lineitem_table(tpch, layout_chunk_builder(spec))
        engine = StorageEngine(table, constants=constants)
        results[name] = run_workload(
            engine, evaluation, layout_name=name, constants=constants
        )
    return results


def report(results: dict[str, WorkloadRunResult]) -> str:
    """Format the Fig. 1 bars: per-operation latency and throughput."""
    rows = []
    for name, result in results.items():
        rows.append(
            (
                name,
                result.mean_latency_ns.get("point_query", 0.0) / 1000.0,
                result.mean_latency_ns.get("range_sum", 0.0) / 1000.0,
                result.mean_latency_ns.get("insert", 0.0) / 1000.0,
                result.throughput_ops,
            )
        )
    table = format_table(
        (
            "layout",
            "point query (us)",
            "range query / TPC-H Q6 (us)",
            "insert (us)",
            "throughput (op/s)",
        ),
        rows,
    )
    baseline = results[LAYOUTS[0][0]].throughput_ops
    delta = results[LAYOUTS[1][0]].throughput_ops
    casper = results[LAYOUTS[2][0]].throughput_ops
    summary = (
        f"\ndelta-store vs vanilla: {delta / baseline:.2f}x, "
        f"Casper vs delta-store: {casper / delta:.2f}x, "
        f"Casper vs vanilla: {casper / baseline:.2f}x"
    )
    return banner("Figure 1: hybrid workload motivation") + "\n" + table + summary


def main() -> None:
    """Run and print the experiment."""
    print(report(run()))


if __name__ == "__main__":
    main()
