"""Figure 13: per-operation latency drill-down.

For three representative workloads -- (a) hybrid with skewed point queries
and inserts (Q1/Q4/Q6), (b) read-only with point and range queries plus a few
updates (Q1/Q2/Q6), (c) update-only uniform (Q4/Q5/Q6) -- this experiment
reports the mean latency of each query type plus overall throughput for every
layout mode, which is where the paper shows Casper's three-orders-of-magnitude
cheaper inserts in (a) and its 2x+ advantage in (c).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...workload.generator import WorkloadMix
from ...workload.hap import HAPConfig
from ...workload.generator import (
    HYBRID_SKEWED,
    READ_ONLY_SKEWED,
    UPDATE_ONLY_UNIFORM,
)
from ..harness import LAYOUT_ORDER, compare_layouts
from ..reporting import banner, format_table

PANELS: tuple[tuple[str, WorkloadMix], ...] = (
    ("(a) hybrid (Q1, Q4, Q6), skewed", HYBRID_SKEWED),
    ("(b) read-only (Q1, Q2, Q6), skewed", READ_ONLY_SKEWED),
    ("(c) update-only (Q4, Q5, Q6), uniform", UPDATE_ONLY_UNIFORM),
)

#: Operation kinds reported per panel (engine result kinds).
PANEL_KINDS = {
    "(a) hybrid (Q1, Q4, Q6), skewed": ("point_query", "insert", "update"),
    "(b) read-only (Q1, Q2, Q6), skewed": ("point_query", "range_count", "update"),
    "(c) update-only (Q4, Q5, Q6), uniform": ("insert", "delete", "update"),
}


@dataclass(frozen=True)
class Figure13Config:
    """Scale knobs for the drill-down experiment."""

    num_rows: int = 131_072
    block_values: int = 1_024
    num_operations: int = 2_000
    partitions: int = 64
    ghost_fraction: float = 0.01


def run(config: Figure13Config | None = None) -> dict[str, dict]:
    """Run the three panels and return per-layout results."""
    if config is None:
        config = Figure13Config()
    hap = HAPConfig(
        num_rows=config.num_rows,
        chunk_size=config.num_rows,
        block_values=config.block_values,
    )
    output: dict[str, dict] = {}
    for title, mix in PANELS:
        output[title] = compare_layouts(
            hap,
            mix,
            num_operations=config.num_operations,
            partitions=config.partitions,
            ghost_fraction=config.ghost_fraction,
        )
    return output


def report(results: dict[str, dict]) -> str:
    """Format the three panels of Figure 13."""
    sections = []
    for title, per_layout in results.items():
        kinds = PANEL_KINDS[title]
        headers = ["layout"] + [f"{kind} (us)" for kind in kinds] + [
            "throughput (Kops)"
        ]
        rows = []
        for layout in LAYOUT_ORDER:
            result = per_layout[layout]
            rows.append(
                [layout.value]
                + [result.mean_latency_ns.get(kind, 0.0) / 1000.0 for kind in kinds]
                + [result.throughput_ops / 1000.0]
            )
        sections.append(banner(f"Figure 13{title}") + "\n" + format_table(headers, rows))
    return "\n\n".join(sections)


def main() -> None:
    """Run and print the experiment."""
    print(report(run()))


if __name__ == "__main__":
    main()
