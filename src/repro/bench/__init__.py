"""Benchmark harness: workload execution, micro-benchmarking, experiments."""

from .harness import (
    LAYOUT_ORDER,
    WorkloadRunResult,
    build_hap_database,
    build_hap_engine,
    compare_layouts,
    normalized_throughput,
    run_workload,
)
from .microbench import (
    MicrobenchResult,
    fit_cost_constants,
    measure_random_access_ns,
    measure_seq_line_ns,
)
from .reporting import banner, format_series, format_table

__all__ = [
    "LAYOUT_ORDER",
    "MicrobenchResult",
    "WorkloadRunResult",
    "banner",
    "build_hap_database",
    "build_hap_engine",
    "compare_layouts",
    "fit_cost_constants",
    "format_series",
    "format_table",
    "measure_random_access_ns",
    "measure_seq_line_ns",
    "normalized_throughput",
    "run_workload",
]
