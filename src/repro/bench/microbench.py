"""Micro-benchmarking of the cost-model constants (Section 4.5).

Every Casper deployment first establishes the random/sequential block access
costs by micro-benchmarking the machine it runs on.  This module measures

* the latency of dependent random reads over a large array (pointer chasing,
  which defeats the prefetcher and measures the DRAM round trip), and
* the per-block cost of a sequential scan,

and converts them into a :class:`~repro.storage.cost_accounting.CostConstants`
instance.  The defaults used by the rest of the repository are the paper's
reported values; fitting on the host is optional and mainly demonstrates the
calibration workflow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..storage.cost_accounting import (
    CACHE_LINE_BYTES,
    DEFAULT_BLOCK_BYTES,
    CostConstants,
)


@dataclass(frozen=True)
class MicrobenchResult:
    """Measured access costs on the current host."""

    random_access_ns: float
    seq_line_ns: float
    block_bytes: int

    def to_constants(self) -> CostConstants:
        """Convert the measurement into cost-model constants."""
        return CostConstants.for_block(
            self.block_bytes,
            random_ns=self.random_access_ns,
            seq_line_ns=self.seq_line_ns,
        )


def measure_random_access_ns(
    array_bytes: int = 64 * 1024 * 1024, accesses: int = 200_000, seed: int = 1
) -> float:
    """Latency of dependent random accesses (pointer chasing) in nanoseconds."""
    rng = np.random.default_rng(seed)
    slots = array_bytes // 8
    permutation = rng.permutation(slots).astype(np.int64)
    chain = np.empty(slots, dtype=np.int64)
    chain[permutation[:-1]] = permutation[1:]
    chain[permutation[-1]] = permutation[0]
    index = int(permutation[0])
    start = time.perf_counter_ns()
    for _ in range(accesses):
        index = int(chain[index])
    elapsed = time.perf_counter_ns() - start
    return elapsed / accesses


def measure_seq_line_ns(
    array_bytes: int = 64 * 1024 * 1024, repetitions: int = 5
) -> float:
    """Per-cache-line cost of a sequential scan in nanoseconds."""
    values = np.arange(array_bytes // 8, dtype=np.int64)
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter_ns()
        values.sum()
        elapsed = time.perf_counter_ns() - start
        best = min(best, elapsed)
    lines = array_bytes / CACHE_LINE_BYTES
    return best / lines


def fit_cost_constants(
    *,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    array_bytes: int = 64 * 1024 * 1024,
    accesses: int = 200_000,
) -> MicrobenchResult:
    """Measure the host and return the fitted constants."""
    random_ns = measure_random_access_ns(array_bytes=array_bytes, accesses=accesses)
    seq_ns = measure_seq_line_ns(array_bytes=array_bytes)
    return MicrobenchResult(
        random_access_ns=random_ns, seq_line_ns=seq_ns, block_bytes=block_bytes
    )
