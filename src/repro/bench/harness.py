"""Benchmark harness: run workloads against engines and collect metrics.

The harness drives a :class:`~repro.storage.engine.StorageEngine` (or a
:class:`~repro.api.database.Database` façade wrapping one) with a
:class:`~repro.workload.operations.Workload` and aggregates, per operation
kind, the mean simulated latency (block-access cost under the configured
constants) and wall-clock latency, plus the workload's overall throughput
(operations per second of simulated time), which is the paper's headline
metric (Figures 1, 12, 13, 15).

``build_hap_database`` constructs the HAP table under any of the six layout
modes of Section 7 behind the :class:`Database` façade, feeding the Casper
mode through the planner with a training workload sample;
``build_hap_engine`` remains as the engine-level compatibility wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api.database import Database
from ..api.policies import AdaptivePolicy, VectorizedPolicy
from ..core.constraints import SLAConstraints
from ..core.monitor import WorkloadMonitor
from ..core.optimizer import SolverBackend
from ..storage.cost_accounting import CostConstants, constants_for_block_values
from ..storage.engine import StorageEngine
from ..storage.errors import ValueNotFoundError
from ..storage.layouts import LayoutKind, LayoutSpec
from ..workload.hap import HAPConfig, generate_keys, generate_payload, make_workload
from ..workload.operations import Workload


@dataclass
class WorkloadRunResult:
    """Aggregated result of running one workload on one engine."""

    layout: str
    workload: str
    operations: int
    simulated_seconds: float
    wall_seconds: float
    mean_latency_ns: dict[str, float] = field(default_factory=dict)
    mean_wall_ns: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    p999_latency_ns: dict[str, float] = field(default_factory=dict)
    errors: int = 0
    #: Batch sizes dispatched, in order (empty on the sequential path).
    batch_sizes: list[int] = field(default_factory=list)

    @property
    def throughput_ops(self) -> float:
        """Operations per second of simulated time."""
        if self.simulated_seconds <= 0:
            return float("inf")
        return self.operations / self.simulated_seconds

    @property
    def wall_throughput_ops(self) -> float:
        """Operations per second of wall-clock time."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.operations / self.wall_seconds


def run_workload(
    engine: StorageEngine | Database,
    workload: Workload,
    *,
    layout_name: str = "",
    constants: CostConstants | None = None,
    batch_size: int | str | None = None,
) -> WorkloadRunResult:
    """Execute ``workload`` on ``engine`` and aggregate per-kind latencies.

    ``engine`` may be a bare :class:`StorageEngine` or a :class:`Database`
    façade (whose engine is used).  With ``batch_size`` set to an integer,
    operations are submitted in fixed slices through a
    :class:`~repro.api.policies.VectorizedPolicy`; ``batch_size="auto"``
    delegates slicing to an :class:`~repro.api.policies.AdaptivePolicy`,
    which tunes the size online -- the sizes actually dispatched are
    recorded in :attr:`WorkloadRunResult.batch_sizes`.  Either way runs of
    compatible operations resolve on the table's vectorized fast paths and
    the engine's access counter advances per the batch-equivalence contract;
    latencies are aggregated per batch under the ``"batch"`` kind
    (per-operation attribution is not available inside a vectorized probe).
    One caveat: failed (not-found) operations' partial charges stay in the
    per-batch tally, whereas the sequential path drops them from
    ``simulated_seconds``, so the two modes' reported throughput diverges
    slightly on workloads that generate misses.
    """
    if isinstance(engine, Database):
        engine = engine.engine
    constants = constants if constants is not None else engine.constants
    simulated: dict[str, list[float]] = {}
    wall: dict[str, list[float]] = {}
    errors = 0
    executed = 0
    batch_sizes: list[int] = []
    if batch_size is not None:
        if isinstance(batch_size, str) and batch_size != "auto":
            raise ValueError(
                f"batch_size must be a positive int, 'auto' or None, "
                f"got {batch_size!r}"
            )
        if batch_size == "auto":
            policy = AdaptivePolicy()
        else:
            policy = VectorizedPolicy(batch_size=int(batch_size))
        for _, outcome in policy.batches(engine, list(workload)):
            errors += outcome.errors
            executed += outcome.operations - outcome.errors
            simulated.setdefault("batch", []).append(
                outcome.simulated_ns(constants)
            )
            wall.setdefault("batch", []).append(outcome.wall_ns)
        batch_sizes = list(policy.chosen_batch_sizes)
    else:
        for operation in workload:
            try:
                outcome = engine.execute(operation)
            except ValueNotFoundError:
                errors += 1
                continue
            executed += 1
            simulated.setdefault(outcome.kind, []).append(
                outcome.simulated_ns(constants)
            )
            wall.setdefault(outcome.kind, []).append(outcome.wall_ns)
    total_simulated_ns = sum(sum(values) for values in simulated.values())
    total_wall_ns = sum(sum(values) for values in wall.values())
    result = WorkloadRunResult(
        layout=layout_name,
        workload=workload.name,
        operations=executed,
        simulated_seconds=total_simulated_ns * 1e-9,
        wall_seconds=total_wall_ns * 1e-9,
        errors=errors,
        batch_sizes=batch_sizes,
    )
    for kind, values in simulated.items():
        array = np.asarray(values)
        result.mean_latency_ns[kind] = float(array.mean())
        result.p999_latency_ns[kind] = float(np.percentile(array, 99.9))
        result.counts[kind] = int(array.shape[0])
        result.mean_wall_ns[kind] = float(np.asarray(wall[kind]).mean())
    return result


#: The layout comparison order used in the paper's Figures 12 and 13.
LAYOUT_ORDER: tuple[LayoutKind, ...] = (
    LayoutKind.CASPER,
    LayoutKind.EQUI_GV,
    LayoutKind.EQUI,
    LayoutKind.STATE_OF_ART,
    LayoutKind.SORTED,
    LayoutKind.NO_ORDER,
)


def build_hap_database(
    layout: LayoutKind,
    config: HAPConfig,
    *,
    training_workload: Workload | None = None,
    partitions: int = 64,
    ghost_fraction: float = 0.01,
    merge_threshold: float = 0.01,
    merge_entries: int | None = 16,
    sla: SLAConstraints | None = None,
    solver: SolverBackend | str = SolverBackend.DP,
    constants: CostConstants | None = None,
    monitor: WorkloadMonitor | bool | None = None,
) -> Database:
    """Build a HAP-table :class:`Database` under the requested layout mode.

    The Casper mode requires ``training_workload`` (the offline sample the
    planner learns the Frequency Model from) and keeps the planner attached
    so sessions can replan online; the other modes ignore it.  ``monitor``
    follows :class:`Database` semantics (default: attached exactly when a
    planner is; pass ``False`` for measurement runs that never replan).
    ``partitions`` controls the equi-width modes, matching the paper's setup
    where Casper is allowed at most as many partitions as the equi-width
    baselines.  ``merge_entries`` bounds the state-of-the-art delta store to a
    handful of buffered entries (continuous integration), which is what the
    paper's measurements of that design imply (its insert latency equals a
    full chunk reorganization, Fig. 13a); pass ``None`` to fall back to the
    fractional ``merge_threshold``.
    """
    constants = (
        constants
        if constants is not None
        else constants_for_block_values(config.block_values)
    )
    keys = generate_keys(config)
    payload = generate_payload(config)
    if layout is LayoutKind.CASPER:
        if training_workload is None:
            raise ValueError("the Casper layout requires a training workload")
        return Database.plan_for(
            training_workload,
            keys,
            payload,
            chunk_size=config.chunk_size,
            block_values=config.block_values,
            ghost_fraction=ghost_fraction,
            sla=sla,
            solver=solver,
            constants=constants,
            monitor=monitor,
        )
    spec = LayoutSpec(
        kind=layout,
        partitions=partitions,
        ghost_fraction=ghost_fraction,
        merge_threshold=merge_threshold,
        merge_entries=merge_entries,
        block_values=config.block_values,
    )
    return Database.from_rows(
        keys,
        payload,
        layout=spec,
        chunk_size=config.chunk_size,
        block_values=config.block_values,
        constants=constants,
        monitor=monitor,
    )


def build_hap_engine(
    layout: LayoutKind,
    config: HAPConfig,
    **kwargs,
) -> StorageEngine:
    """Compatibility wrapper: the engine of :func:`build_hap_database`.

    Matches the pre-session behaviour: no workload monitor is attached
    (callers holding only the engine cannot open sessions, so attribution
    would be pure per-operation overhead).  Pass ``monitor=True`` or an
    instance to opt in.
    """
    kwargs.setdefault("monitor", False)
    return build_hap_database(layout, config, **kwargs).engine


def compare_layouts(
    config: HAPConfig,
    profile: str,
    *,
    layouts: tuple[LayoutKind, ...] = LAYOUT_ORDER,
    num_operations: int = 2_000,
    training_operations: int | None = None,
    partitions: int = 64,
    ghost_fraction: float = 0.01,
    merge_entries: int | None = 16,
    training_seed: int = 7,
    run_seed: int = 42,
) -> dict[LayoutKind, WorkloadRunResult]:
    """Run one HAP workload profile across several layout modes.

    A *training* workload (a different random sample of the same profile) is
    used to tune the Casper layout; the *evaluation* workload is generated
    with a different seed, so Casper never sees the exact operations it is
    evaluated on.
    """
    training_operations = (
        training_operations if training_operations is not None else num_operations
    )
    training = make_workload(
        profile, config, num_operations=training_operations, seed=training_seed
    )
    results: dict[LayoutKind, WorkloadRunResult] = {}
    for layout in layouts:
        database = build_hap_database(
            layout,
            config,
            training_workload=training,
            partitions=partitions,
            ghost_fraction=ghost_fraction,
            merge_entries=merge_entries,
            # Layout comparison never replans mid-run; skip the per-op
            # attribution overhead so wall-clock numbers stay comparable.
            monitor=False,
        )
        evaluation = make_workload(
            profile, config, num_operations=num_operations, seed=run_seed
        )
        results[layout] = run_workload(
            database,
            evaluation,
            layout_name=layout.value,
            constants=database.constants,
        )
    return results


def normalized_throughput(
    results: dict[LayoutKind, WorkloadRunResult],
    baseline: LayoutKind = LayoutKind.STATE_OF_ART,
) -> dict[LayoutKind, float]:
    """Throughput of every layout normalized to the baseline (Fig. 12)."""
    base = results[baseline].throughput_ops
    return {
        layout: (result.throughput_ops / base if base > 0 else float("inf"))
        for layout, result in results.items()
    }
