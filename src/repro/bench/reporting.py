"""Plain-text reporting helpers for the experiment drivers.

Every ``repro.bench.experiments.figN`` module prints the rows/series the
corresponding paper figure plots.  These helpers keep the output aligned and
consistent so EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, precision: int = 3
) -> str:
    """Render ``rows`` as an aligned text table."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1e6 or abs(cell) < 1e-3:
                return f"{cell:.{precision}e}"
            return f"{cell:,.{precision}f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render an (x, y) series as two aligned columns under a heading."""
    rows = list(zip(xs, ys, strict=True))
    return f"# {name}\n" + format_table(("x", "y"), rows)


def banner(title: str) -> str:
    """A section banner for experiment output."""
    line = "=" * max(len(title), 8)
    return f"{line}\n{title}\n{line}"
