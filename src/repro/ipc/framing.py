"""Length-prefixed JSON control frames over a stream socket.

One frame is a small JSON object prefixed with a ``u32`` length::

    +-----------+----------------------+
    | length u32| JSON payload (UTF-8) |
    +-----------+----------------------+

This is the wire format both the replication cursor protocol
(:mod:`repro.replication.transport`) and the sharding dispatch protocol
(:mod:`repro.sharding.cluster`) speak; bulk data never travels in a frame
(replication ships records through the shared log directory, sharding
through shared-memory arenas), so frames stay small and human-debuggable.
No pickle anywhere -- a malicious or corrupt peer can at worst produce a
:class:`FrameError`, never execute code.

Robustness contract (fuzz-tested in ``tests/sharding``):

* the length prefix is bounded *before* any payload byte is read, so a
  garbage prefix (e.g. ``0xFFFFFFFF`` from a non-protocol peer) can never
  trigger an unbounded allocation or read -- the connection fails with
  :class:`FrameError` after at most 4 bytes;
* a zero length is rejected (the smallest legal payload is ``{}``);
* truncated payloads (EOF mid-frame), non-UTF-8 bytes, invalid JSON and
  non-object payloads all raise :class:`FrameError` rather than leaving
  the stream desynchronized silently.
"""

from __future__ import annotations

import json
import socket
import struct

_LENGTH = struct.Struct("<I")

#: Default upper bound on a frame.  Control frames are < 200 bytes; the
#: sharding dispatch frames carry per-operation descriptors and may reach
#: a few hundred KiB on large mixed batches, so the shared default leaves
#: headroom while still refusing garbage lengths outright.
DEFAULT_MAX_FRAME = 1 << 22


class FrameError(ConnectionError):
    """A frame could not be sent, received or decoded."""


def send_frame(
    sock: socket.socket, payload: dict, *, max_frame: int = DEFAULT_MAX_FRAME
) -> None:
    """Send one length-prefixed JSON frame.

    Refuses to send a frame the peer's matching ``max_frame`` would
    reject -- oversized payloads are a caller bug (bulk data belongs in
    the shared log directory / shared-memory arenas, not in frames).
    """
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if not data or len(data) > max_frame:
        raise FrameError(
            f"refusing to send frame of {len(data)} bytes "
            f"(bounds: 1..{max_frame})"
        )
    sock.sendall(_LENGTH.pack(len(data)) + data)


def recv_frame(
    sock: socket.socket, *, max_frame: int = DEFAULT_MAX_FRAME
) -> dict | None:
    """Receive one frame; ``None`` on a clean EOF at a frame boundary.

    The declared length is validated against ``max_frame`` before any
    payload byte is read.
    """
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length == 0 or length > max_frame:
        raise FrameError(
            f"frame length {length} outside accepted bounds 1..{max_frame}"
        )
    data = _recv_exact(sock, length, eof_ok=False)
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError("frame payload is not an object")
    return payload


def _recv_exact(sock: socket.socket, count: int, *, eof_ok: bool) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise FrameError(f"socket read failed: {exc}") from exc
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
