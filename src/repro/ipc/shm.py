"""Shared-memory arenas: zero-copy numpy transport between processes.

The sharding dispatcher ships operation arrays (keys, bounds, payload
rows) to its worker processes and receives result arrays (row ids,
counts, payload gathers) back.  Control frames stay small JSON
(:mod:`repro.ipc.framing`); the bulk ``int64`` arrays travel through one
:class:`ShmArena` per worker channel instead -- a fixed-size
:class:`multiprocessing.shared_memory.SharedMemory` block both sides map.

Usage protocol (enforced by the dispatch layer, not here):

* the arena is single-writer-at-a-time -- the dispatcher fills it, sends
  the frame referencing offsets, and does not touch it again until the
  reply arrives; the worker copies every referenced array *out* before
  executing, then reuses the arena from offset 0 for its reply;
* arrays that do not fit fall back to inline JSON in the frame (see
  :mod:`repro.sharding.codec`), so arena capacity bounds performance,
  never correctness.

The creating side owns the block and unlinks it on close.  Attaching
sides just close their mapping: spawned workers share the parent's
:mod:`multiprocessing.resource_tracker`, so their attach-time
registration is a set no-op there and the owner's ``unlink`` clears the
single tracked entry (see :meth:`ShmArena.attach`).
"""

from __future__ import annotations

from multiprocessing import shared_memory


class ShmArena:
    """A named fixed-size shared-memory block with owner semantics."""

    def __init__(
        self, shm: shared_memory.SharedMemory, *, owner: bool
    ) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, size: int) -> "ShmArena":
        """Allocate a new arena of ``size`` bytes (this side owns it)."""
        if size <= 0:
            raise ValueError("arena size must be positive")
        shm = shared_memory.SharedMemory(create=True, size=int(size))
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmArena":
        """Map an existing arena by name (the creator retains ownership).

        Pre-3.13, attaching registers the segment with the resource
        tracker as if this side created it.  Spawned workers inherit the
        *parent's* tracker process, where the registry is a name set, so
        the duplicate registration is a no-op and the owner's ``unlink``
        clears the single entry -- an explicit ``unregister`` here would
        instead remove the owner's entry and make that ``unlink`` trip a
        tracker ``KeyError``.  Only a process with its own tracker (not
        our topology) must deregister to protect the parent's memory.
        """
        return cls(shared_memory.SharedMemory(name=name), owner=False)

    @property
    def name(self) -> str:
        """System-wide name the other side attaches by."""
        return self._shm.name

    @property
    def size(self) -> int:
        """Capacity in bytes."""
        return self._shm.size

    @property
    def buf(self) -> memoryview:
        """The mapped memory."""
        return self._shm.buf

    def close(self) -> None:
        """Unmap (and, on the owning side, unlink) the block.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):
                pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
