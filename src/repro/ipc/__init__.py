"""Process-to-process plumbing shared by replication and sharding.

:mod:`repro.ipc.framing` carries the length-prefixed JSON control frames
both transports speak; :mod:`repro.ipc.shm` wraps the shared-memory
arenas the sharding dispatcher ships numpy payloads through.
"""

from .framing import (
    DEFAULT_MAX_FRAME,
    FrameError,
    recv_frame,
    send_frame,
)
from .shm import ShmArena

__all__ = [
    "DEFAULT_MAX_FRAME",
    "FrameError",
    "ShmArena",
    "recv_frame",
    "send_frame",
]
