"""Workload synthesis: operation mixes over a key domain.

The generator turns an operation *mix* (fractions of Q1-Q6 plus access
distributions) into a concrete :class:`~repro.workload.operations.Workload`.
It tracks the set of live keys so that deletes and updates always target
existing rows and inserts always introduce fresh keys, mimicking how the HAP
benchmark drives the storage engine.

Loaded keys are even integers (``0, 2, 4, ...``) so that inserted keys (odd
integers placed next to a sampled domain position) are guaranteed unique and
land wherever the insert distribution points, which is what lets the skewed
experiments direct inserts at a specific part of the domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .distributions import (
    DomainSampler,
    EarlySkewSampler,
    RecentSkewSampler,
    UniformSampler,
)
from .operations import (
    Aggregate,
    Delete,
    Insert,
    Operation,
    PointQuery,
    RangeQuery,
    Update,
    Workload,
)


@dataclass(frozen=True)
class WorkloadMix:
    """Operation mix: fractions per query type plus access distributions.

    Fractions need not sum exactly to one; they are normalized.  ``q3`` range
    queries compute a SUM aggregate, ``q2`` a COUNT (matching HAP).
    """

    name: str
    q1_point: float = 0.0
    q2_range_count: float = 0.0
    q3_range_sum: float = 0.0
    q4_insert: float = 0.0
    q5_delete: float = 0.0
    q6_update: float = 0.0
    read_sampler: DomainSampler = field(default_factory=UniformSampler)
    write_sampler: DomainSampler = field(default_factory=UniformSampler)
    range_selectivity: float = 0.001

    def fractions(self) -> dict[str, float]:
        """Normalized operation fractions."""
        raw = {
            "q1": self.q1_point,
            "q2": self.q2_range_count,
            "q3": self.q3_range_sum,
            "q4": self.q4_insert,
            "q5": self.q5_delete,
            "q6": self.q6_update,
        }
        total = sum(raw.values())
        if total <= 0:
            raise ValueError("at least one operation fraction must be positive")
        return {key: value / total for key, value in raw.items()}


class WorkloadGenerator:
    """Generate workloads against a known set of live keys."""

    def __init__(
        self,
        live_keys: np.ndarray | list[int],
        *,
        domain_low: int | None = None,
        domain_high: int | None = None,
        seed: int = 42,
    ) -> None:
        keys = np.unique(np.asarray(live_keys, dtype=np.int64))
        if keys.size == 0:
            raise ValueError("live_keys must not be empty")
        self._keys = keys
        self._rng = np.random.default_rng(seed)
        self.domain_low = int(domain_low) if domain_low is not None else int(keys[0])
        self.domain_high = (
            int(domain_high) if domain_high is not None else int(keys[-1])
        )
        self._inserted: set[int] = set()
        self._deleted: set[int] = set()

    # ------------------------------------------------------------------ #
    # Key selection helpers
    # ------------------------------------------------------------------ #

    def _existing_key(self, sampler: DomainSampler) -> int:
        """Pick a live key at a position governed by ``sampler``."""
        position = float(sampler.sample_unit(self._rng, 1)[0])
        index = min(int(position * self._keys.size), self._keys.size - 1)
        # Walk to a key that has not been deleted yet.
        for offset in range(self._keys.size):
            candidate = int(self._keys[(index + offset) % self._keys.size])
            if candidate not in self._deleted:
                return candidate
        raise RuntimeError("all keys have been deleted")

    def _fresh_key(self, sampler: DomainSampler) -> int:
        """Pick a previously-unused key near a sampled domain position."""
        span = max(self.domain_high - self.domain_low, 1)
        for _ in range(64):
            position = float(sampler.sample_unit(self._rng, 1)[0])
            base = self.domain_low + int(position * span)
            candidate = base | 1  # odd keys never collide with loaded even keys
            if candidate not in self._inserted:
                self._inserted.add(candidate)
                return candidate
            candidate = int(self._rng.integers(self.domain_low, self.domain_high)) | 1
            if candidate not in self._inserted:
                self._inserted.add(candidate)
                return candidate
        raise RuntimeError("could not find a fresh key")

    def _range(self, sampler: DomainSampler, selectivity: float) -> tuple[int, int]:
        span = max(self.domain_high - self.domain_low, 1)
        width = max(1, int(span * selectivity))
        position = float(sampler.sample_unit(self._rng, 1)[0])
        low = self.domain_low + int(position * max(span - width, 1))
        return low, low + width

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def generate(self, mix: WorkloadMix, num_operations: int) -> Workload:
        """Generate ``num_operations`` operations following ``mix``."""
        fractions = mix.fractions()
        labels = list(fractions.keys())
        probabilities = np.asarray([fractions[label] for label in labels])
        choices = self._rng.choice(len(labels), size=num_operations, p=probabilities)
        workload = Workload(name=mix.name)
        for choice in choices:
            label = labels[int(choice)]
            workload.append(self._make_operation(label, mix))
        return workload

    def generate_phases(
        self,
        phases: "list[tuple[WorkloadMix, int]]",
        *,
        name: str | None = None,
    ) -> Workload:
        """Generate a workload whose mix *shifts* across consecutive phases.

        ``phases`` is a list of ``(mix, num_operations)`` pairs; the phases
        share this generator's live-key bookkeeping, so later phases never
        delete rows an earlier phase already removed and inserts stay fresh
        across the whole sequence.  This models the drifting workloads of the
        paper's online loop (Fig. 10): a session that trains on the first
        phase sees the later phases as drift.
        """
        operations: list[Operation] = []
        labels = []
        for mix, num_operations in phases:
            operations.extend(self.generate(mix, num_operations).operations)
            labels.append(f"{mix.name}x{num_operations}")
        return Workload(
            operations=operations,
            name=name if name is not None else " -> ".join(labels),
        )

    def _make_operation(self, label: str, mix: WorkloadMix) -> Operation:
        if label == "q1":
            return PointQuery(key=self._existing_key(mix.read_sampler))
        if label == "q2":
            low, high = self._range(mix.read_sampler, mix.range_selectivity)
            return RangeQuery(low=low, high=high, aggregate=Aggregate.COUNT)
        if label == "q3":
            low, high = self._range(mix.read_sampler, mix.range_selectivity)
            return RangeQuery(low=low, high=high, aggregate=Aggregate.SUM)
        if label == "q4":
            return Insert(key=self._fresh_key(mix.write_sampler))
        if label == "q5":
            victim = self._existing_key(mix.write_sampler)
            self._deleted.add(victim)
            return Delete(key=victim)
        if label == "q6":
            old = self._existing_key(UniformSampler())
            self._deleted.add(old)
            new = self._fresh_key(UniformSampler())
            return Update(old_key=old, new_key=new)
        raise ValueError(f"unknown operation label: {label}")


# --------------------------------------------------------------------------- #
# The six workload profiles of Fig. 12 plus the SLA workload of Fig. 15.
# Every profile carries the paper's 1% of Q6 updates spread uniformly.
# --------------------------------------------------------------------------- #

HYBRID_SKEWED = WorkloadMix(
    name="hybrid, skewed",
    q1_point=0.49,
    q4_insert=0.50,
    q6_update=0.01,
    read_sampler=RecentSkewSampler(),
    write_sampler=RecentSkewSampler(),
)

HYBRID_RANGE_SKEWED = WorkloadMix(
    name="hybrid, range, skewed",
    q3_range_sum=0.49,
    q4_insert=0.50,
    q6_update=0.01,
    read_sampler=RecentSkewSampler(),
    write_sampler=RecentSkewSampler(),
    range_selectivity=0.002,
)

READ_ONLY_SKEWED = WorkloadMix(
    name="read-only, skewed",
    q1_point=0.94,
    q2_range_count=0.05,
    q6_update=0.01,
    read_sampler=RecentSkewSampler(),
)

READ_ONLY_UNIFORM = WorkloadMix(
    name="read-only, uniform",
    q1_point=0.94,
    q2_range_count=0.05,
    q6_update=0.01,
)

UPDATE_ONLY_SKEWED = WorkloadMix(
    name="update-only, skewed",
    q4_insert=0.80,
    q5_delete=0.19,
    q6_update=0.01,
    write_sampler=EarlySkewSampler(),
)

UPDATE_ONLY_UNIFORM = WorkloadMix(
    name="update-only, uniform",
    q4_insert=0.80,
    q5_delete=0.19,
    q6_update=0.01,
)

WRITE_HEAVY = WorkloadMix(
    name="write-heavy hybrid (Q1 40%, Q2 10%, Q4 25%, Q5 25%)",
    q1_point=0.40,
    q2_range_count=0.10,
    q4_insert=0.25,
    q5_delete=0.25,
)

SLA_HYBRID = WorkloadMix(
    name="hybrid (Q1 89%, Q4 10%, Q6 1%)",
    q1_point=0.89,
    q4_insert=0.10,
    q6_update=0.01,
    read_sampler=RecentSkewSampler(),
    write_sampler=RecentSkewSampler(),
)

FIGURE12_MIXES: tuple[WorkloadMix, ...] = (
    HYBRID_SKEWED,
    HYBRID_RANGE_SKEWED,
    READ_ONLY_SKEWED,
    READ_ONLY_UNIFORM,
    UPDATE_ONLY_SKEWED,
    UPDATE_ONLY_UNIFORM,
)
