"""TPC-H-like lineitem data and the Q6-style workload of Figure 1.

The paper's motivating experiment (Fig. 1) mixes transactional access
patterns (point queries and TPC-H-style inserts) with the analytical TPC-H
Q6 range query over ``lineitem``.  TPC-H data cannot be shipped, so this
module generates a synthetic ``lineitem`` table with the same shape:

* ``l_shipdate`` -- the selection key, an integer day in [0, 2525] covering
  the 7-year TPC-H date range (1992-01-01 .. 1998-12-31),
* ``l_quantity`` (1..50), ``l_discount`` (0..10, in percent),
  ``l_extendedprice`` (uniform), ``l_revenue`` = price * discount / 100.

Q6 selects one year of ship dates and a narrow discount/quantity band and
sums revenue; with the key column being ``l_shipdate`` the storage engine
evaluates the date range (the dominant filter) and the remaining predicates
are applied on the fetched payload, matching how Casper's multi-column range
queries evaluate the most selective filter first (Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.cost_accounting import DEFAULT_BLOCK_VALUES
from ..storage.table import ChunkBuilder, Table
from .operations import Aggregate, Insert, PointQuery, RangeQuery, Workload

#: Number of days in the TPC-H shipdate domain (1992-01-01 .. 1998-12-31).
SHIPDATE_DAYS = 2525

#: Days in one year (the width of the Q6 shipdate predicate).
Q6_RANGE_DAYS = 365

PAYLOAD_NAMES = ("l_quantity", "l_discount", "l_extendedprice", "l_revenue")


@dataclass(frozen=True)
class TPCHConfig:
    """Synthetic lineitem configuration (scaled down from SF-1's 6M rows)."""

    num_rows: int = 262_144
    chunk_size: int = 262_144
    block_values: int = DEFAULT_BLOCK_VALUES
    seed: int = 6


def generate_lineitem(config: TPCHConfig) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(shipdate_keys, payload)`` for a synthetic lineitem table.

    Ship dates are spread uniformly over the domain and made unique by
    scaling to an even-integer key space (day * 2 * rows_per_day + counter),
    which keeps the key column dense while preserving the date ordering.
    """
    rng = np.random.default_rng(config.seed)
    days = np.sort(rng.integers(0, SHIPDATE_DAYS, size=config.num_rows))
    # Unique, even, order-preserving keys derived from the day number.
    keys = days * (2 * _rows_per_day(config)) + 2 * np.arange(config.num_rows) % (
        2 * _rows_per_day(config)
    )
    keys = np.sort(keys).astype(np.int64)
    quantity = rng.integers(1, 51, size=config.num_rows)
    discount = rng.integers(0, 11, size=config.num_rows)
    price = rng.integers(1_000, 100_000, size=config.num_rows)
    revenue = price * discount // 100
    payload = np.column_stack((quantity, discount, price, revenue)).astype(np.int64)
    return keys, payload


def _rows_per_day(config: TPCHConfig) -> int:
    return max(1, config.num_rows // SHIPDATE_DAYS)


def day_to_key(day: int, config: TPCHConfig) -> int:
    """First key value corresponding to shipdate ``day``."""
    return int(day) * 2 * _rows_per_day(config)


def build_lineitem_table(config: TPCHConfig, chunk_builder: ChunkBuilder) -> Table:
    """Build the synthetic lineitem table with the given key-column layout."""
    keys, payload = generate_lineitem(config)
    return Table(
        keys,
        payload,
        chunk_size=config.chunk_size,
        chunk_builder=chunk_builder,
        payload_names=PAYLOAD_NAMES,
        block_values=config.block_values,
    )


def q6_range(config: TPCHConfig, *, year_start_day: int = 365) -> tuple[int, int]:
    """Key range corresponding to one year of ship dates (the Q6 predicate)."""
    low = day_to_key(year_start_day, config)
    high = day_to_key(year_start_day + Q6_RANGE_DAYS, config) - 1
    return low, high


def figure1_workload(
    config: TPCHConfig,
    *,
    num_operations: int = 3_000,
    point_fraction: float = 0.45,
    range_fraction: float = 0.10,
    insert_fraction: float = 0.45,
    seed: int = 11,
) -> Workload:
    """The Fig. 1 mix: point queries, TPC-H Q6 range queries, and inserts."""
    rng = np.random.default_rng(seed)
    keys, _ = generate_lineitem(config)
    fractions = np.asarray([point_fraction, range_fraction, insert_fraction])
    fractions = fractions / fractions.sum()
    choices = rng.choice(3, size=num_operations, p=fractions)
    workload = Workload(name="figure-1 hybrid (PQ + TPC-H Q6 + inserts)")
    max_key = int(keys[-1])
    next_fresh = max_key + 1
    for choice in choices:
        if choice == 0:
            key = int(keys[rng.integers(0, keys.shape[0])])
            workload.append(PointQuery(key=key))
        elif choice == 1:
            start_day = int(rng.integers(0, SHIPDATE_DAYS - Q6_RANGE_DAYS))
            low, high = q6_range(config, year_start_day=start_day)
            workload.append(
                RangeQuery(
                    low=low,
                    high=high,
                    aggregate=Aggregate.SUM,
                    columns=("l_revenue",),
                )
            )
        else:
            workload.append(Insert(key=next_fresh, payload=(1, 5, 10_000, 500)))
            next_fresh += 2
    return workload
