"""Access-pattern distributions used to synthesize workloads.

The paper's experiments use uniform and skewed access distributions over the
key domain: skewed workloads concentrate accesses on "more recent" data (the
upper end of the domain) and the robustness experiment (Fig. 16) uses point
queries targeting the latter part of the domain with inserts targeting the
first part.  This module provides seeded samplers for those shapes plus
Zipfian and hotspot distributions commonly used in HTAP benchmarks
(e.g. YCSB-style mixes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DomainSampler:
    """Base class: samples positions in ``[0, 1)`` and scales to a domain."""

    def sample_unit(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample ``size`` positions in ``[0, 1)``."""
        raise NotImplementedError

    def sample(
        self, rng: np.random.Generator, size: int, low: int, high: int
    ) -> np.ndarray:
        """Sample ``size`` integer keys in ``[low, high]``."""
        if high < low:
            raise ValueError("high must be >= low")
        unit = np.clip(self.sample_unit(rng, size), 0.0, np.nextafter(1.0, 0.0))
        span = high - low + 1
        return (low + np.floor(unit * span)).astype(np.int64)


@dataclass(frozen=True)
class UniformSampler(DomainSampler):
    """Uniform accesses over the whole domain."""

    def sample_unit(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.random(size)


@dataclass(frozen=True)
class RecentSkewSampler(DomainSampler):
    """Skew toward the end of the domain ("more recent data").

    ``exponent`` > 1 concentrates mass near 1.0; the paper's skewed workloads
    access recent data most frequently.
    """

    exponent: float = 3.0

    def sample_unit(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.random(size) ** (1.0 / self.exponent)


@dataclass(frozen=True)
class EarlySkewSampler(DomainSampler):
    """Skew toward the beginning of the domain (e.g. insert hot range)."""

    exponent: float = 3.0

    def sample_unit(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return 1.0 - rng.random(size) ** (1.0 / self.exponent)


@dataclass(frozen=True)
class ZipfSampler(DomainSampler):
    """Zipfian popularity over equal-width domain buckets."""

    theta: float = 0.99
    buckets: int = 1024

    def sample_unit(self, rng: np.random.Generator, size: int) -> np.ndarray:
        ranks = np.arange(1, self.buckets + 1, dtype=np.float64)
        weights = ranks ** (-self.theta)
        weights /= weights.sum()
        chosen = rng.choice(self.buckets, size=size, p=weights)
        jitter = rng.random(size)
        return (chosen + jitter) / self.buckets


@dataclass(frozen=True)
class HotspotSampler(DomainSampler):
    """A fraction of accesses hit a small hot region of the domain."""

    hot_fraction: float = 0.2
    hot_probability: float = 0.8
    hot_start: float = 0.0

    def sample_unit(self, rng: np.random.Generator, size: int) -> np.ndarray:
        in_hot = rng.random(size) < self.hot_probability
        positions = rng.random(size)
        hot = self.hot_start + positions * self.hot_fraction
        cold = positions
        return np.where(in_hot, np.clip(hot, 0.0, 1.0 - 1e-12), cold)


@dataclass(frozen=True)
class ShiftedSampler(DomainSampler):
    """Rotate another sampler's output by a fraction of the domain.

    Used by the robustness experiment (Fig. 16): a *rotational shift* moves
    every access by ``shift`` (mod 1) across the normalized domain.
    """

    base: DomainSampler
    shift: float = 0.0

    def sample_unit(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.mod(self.base.sample_unit(rng, size) + self.shift, 1.0)


def histogram_of(
    sampler: DomainSampler,
    *,
    bins: int,
    samples: int = 100_000,
    seed: int = 7,
) -> np.ndarray:
    """Empirical access histogram of a sampler over ``bins`` domain buckets."""
    rng = np.random.default_rng(seed)
    unit = sampler.sample_unit(rng, samples)
    hist, _edges = np.histogram(unit, bins=bins, range=(0.0, 1.0))
    return hist.astype(np.float64)
