"""Workload operation types.

Casper supports the five fundamental access patterns of Section 3: point
queries, range queries, inserts, deletes and updates.  The HAP benchmark's
six queries (Q1-Q6, Section 7.1) map onto these types; range queries carry an
aggregate kind to distinguish the count query (Q2) from the arithmetic sum
query (Q3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence


class OperationKind(Enum):
    """The five fundamental access patterns, plus vectorized batch forms.

    The batch kinds are not new access patterns: they group many point or
    range lookups into one operation so the engine can resolve them on the
    vectorized fast path (single ``searchsorted`` calls per chunk) instead of
    per-operation Python dispatch.
    """

    POINT_QUERY = "point_query"
    RANGE_QUERY = "range_query"
    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"
    MULTI_POINT_QUERY = "multi_point_query"
    MULTI_RANGE_COUNT = "multi_range_count"
    MULTI_INSERT = "multi_insert"
    MULTI_DELETE = "multi_delete"
    MULTI_UPDATE = "multi_update"


class Aggregate(Enum):
    """Aggregate evaluated by a range query."""

    COUNT = "count"
    SUM = "sum"


@dataclass(frozen=True)
class PointQuery:
    """Q1: fetch the row(s) whose key equals ``key``."""

    key: int
    columns: tuple[str, ...] | None = None

    kind = OperationKind.POINT_QUERY


@dataclass(frozen=True)
class RangeQuery:
    """Q2/Q3: aggregate over rows whose key lies in ``[low, high]``."""

    low: int
    high: int
    aggregate: Aggregate = Aggregate.COUNT
    columns: tuple[str, ...] | None = None

    kind = OperationKind.RANGE_QUERY

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError("range query low must be <= high")


@dataclass(frozen=True)
class Insert:
    """Q4: insert a row with the given key (payload optional)."""

    key: int
    payload: tuple[int, ...] | None = None

    kind = OperationKind.INSERT


@dataclass(frozen=True)
class Delete:
    """Q5: delete the row with the given key."""

    key: int

    kind = OperationKind.DELETE


@dataclass(frozen=True)
class Update:
    """Q6: change a row's key from ``old_key`` to ``new_key``."""

    old_key: int
    new_key: int

    kind = OperationKind.UPDATE


@dataclass(frozen=True)
class MultiPointQuery:
    """Batched Q1: fetch the rows for every key in ``keys`` in one operation."""

    keys: tuple[int, ...]
    columns: tuple[str, ...] | None = None

    kind = OperationKind.MULTI_POINT_QUERY


@dataclass(frozen=True)
class MultiRangeCount:
    """Batched Q2: count rows for every ``(low, high)`` pair in ``bounds``."""

    bounds: tuple[tuple[int, int], ...]

    kind = OperationKind.MULTI_RANGE_COUNT

    def __post_init__(self) -> None:
        for low, high in self.bounds:
            if low > high:
                raise ValueError("range low must be <= high")


@dataclass(frozen=True)
class MultiInsert:
    """Batched Q4: insert one row per key on the bulk-write fast path.

    ``payloads`` optionally carries one payload tuple per key; ``None``
    inserts zero payloads, as the per-row :class:`Insert` default does.
    """

    keys: tuple[int, ...]
    payloads: tuple[tuple[int, ...], ...] | None = None

    kind = OperationKind.MULTI_INSERT

    def __post_init__(self) -> None:
        if self.payloads is not None and len(self.payloads) != len(self.keys):
            raise ValueError("payloads must align with keys")


@dataclass(frozen=True)
class MultiDelete:
    """Batched Q5: delete one row per key on the bulk-write fast path."""

    keys: tuple[int, ...]

    kind = OperationKind.MULTI_DELETE


@dataclass(frozen=True)
class MultiUpdate:
    """Batched Q6: apply one ``old_key -> new_key`` correction per pair.

    Pairs are applied in submission order on a batch-routed path
    (:meth:`repro.storage.table.Table.bulk_update`), so the outcome --
    results and simulated access counts -- is exactly that of issuing the
    equivalent :class:`Update` operations one by one.
    """

    pairs: tuple[tuple[int, int], ...]

    kind = OperationKind.MULTI_UPDATE

    def __post_init__(self) -> None:
        for pair in self.pairs:
            if len(pair) != 2:
                raise ValueError("pairs must be (old_key, new_key) tuples")


Operation = (
    PointQuery
    | RangeQuery
    | Insert
    | Delete
    | Update
    | MultiPointQuery
    | MultiRangeCount
    | MultiInsert
    | MultiDelete
    | MultiUpdate
)

#: Kinds that mutate table state; the durability layer opens a commit
#: scope (WAL append + fsync policy) exactly when a dispatch contains one.
WRITE_KINDS = frozenset(
    {
        OperationKind.INSERT,
        OperationKind.DELETE,
        OperationKind.UPDATE,
        OperationKind.MULTI_INSERT,
        OperationKind.MULTI_DELETE,
        OperationKind.MULTI_UPDATE,
    }
)


def is_write(operation: Operation) -> bool:
    """Whether ``operation`` mutates table state (needs a commit scope)."""
    return operation.kind in WRITE_KINDS


@dataclass
class Workload:
    """An ordered sequence of operations plus a human-readable label."""

    operations: list[Operation] = field(default_factory=list)
    name: str = "workload"

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def append(self, operation: Operation) -> None:
        """Add an operation to the end of the workload."""
        self.operations.append(operation)

    def extend(self, operations: Sequence[Operation]) -> None:
        """Add several operations to the end of the workload."""
        self.operations.extend(operations)

    def counts_by_kind(self) -> dict[OperationKind, int]:
        """Number of operations of each kind."""
        counts: dict[OperationKind, int] = {}
        for operation in self.operations:
            counts[operation.kind] = counts.get(operation.kind, 0) + 1
        return counts

    def mix(self) -> dict[OperationKind, float]:
        """Fraction of operations of each kind."""
        total = len(self.operations)
        if total == 0:
            return {}
        return {
            kind: count / total for kind, count in self.counts_by_kind().items()
        }

    def subset(self, kinds: Sequence[OperationKind]) -> "Workload":
        """A new workload containing only operations of the given kinds."""
        wanted = set(kinds)
        return Workload(
            operations=[op for op in self.operations if op.kind in wanted],
            name=f"{self.name}[filtered]",
        )
