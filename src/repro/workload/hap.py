"""HAP: the Hybrid Access Patterns benchmark (Section 7.1).

The paper develops its own benchmark, based on ADAPT, with two tables -- a
narrow one with 16 columns and a wide one with 160 columns -- whose rows have
an 8-byte integer primary key ``a0`` and 4-byte payload attributes
``a1..ap``.  Six query templates exercise the storage engine:

* Q1 -- point query returning the contents of a row,
* Q2 -- aggregate range query counting rows in a key range,
* Q3 -- arithmetic range query summing a subset of attributes,
* Q4 -- insert of a new tuple,
* Q5 -- delete of a specific tuple,
* Q6 -- update that corrects a primary-key value.

This module builds the tables (synthetic data, loaded keys are even integers
so inserts can introduce fresh odd keys anywhere in the domain) and exposes
the workload profiles used in Figures 12-15.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.cost_accounting import DEFAULT_BLOCK_VALUES
from ..storage.table import ChunkBuilder, Table
from .generator import (
    FIGURE12_MIXES,
    HYBRID_RANGE_SKEWED,
    HYBRID_SKEWED,
    READ_ONLY_SKEWED,
    READ_ONLY_UNIFORM,
    SLA_HYBRID,
    UPDATE_ONLY_SKEWED,
    UPDATE_ONLY_UNIFORM,
    WRITE_HEAVY,
    WorkloadGenerator,
    WorkloadMix,
)
from .operations import Workload

#: Number of payload columns of the narrow and wide HAP tables.
NARROW_PAYLOAD_COLUMNS = 15
WIDE_PAYLOAD_COLUMNS = 159


@dataclass(frozen=True)
class HAPConfig:
    """Scaled-down HAP instance configuration.

    The paper loads 100M tuples; the default here is 256K tuples (still
    hundreds of blocks per chunk) so the full figure suite runs on a laptop.
    All sizes are configurable upward.
    """

    num_rows: int = 262_144
    payload_columns: int = NARROW_PAYLOAD_COLUMNS
    chunk_size: int = 262_144
    block_values: int = DEFAULT_BLOCK_VALUES
    seed: int = 1234

    @property
    def key_domain(self) -> tuple[int, int]:
        """Domain of primary-key values (loaded keys are ``0, 2, 4, ...``)."""
        return 0, 2 * self.num_rows - 2 if self.num_rows else 0


def generate_keys(config: HAPConfig) -> np.ndarray:
    """Loaded primary keys: dense even integers covering the domain."""
    return np.arange(config.num_rows, dtype=np.int64) * 2


def generate_payload(config: HAPConfig) -> np.ndarray:
    """Uniformly distributed 4-byte payload attributes."""
    rng = np.random.default_rng(config.seed)
    return rng.integers(
        0, 2**31 - 1, size=(config.num_rows, config.payload_columns), dtype=np.int64
    )


def build_table(config: HAPConfig, chunk_builder: ChunkBuilder) -> Table:
    """Build a HAP table whose key column uses ``chunk_builder``."""
    keys = generate_keys(config)
    payload = generate_payload(config)
    return Table(
        keys,
        payload,
        chunk_size=config.chunk_size,
        chunk_builder=chunk_builder,
        block_values=config.block_values,
    )


def narrow_config(**overrides) -> HAPConfig:
    """Configuration for the narrow (16-column) HAP table."""
    return HAPConfig(payload_columns=NARROW_PAYLOAD_COLUMNS, **overrides)


def wide_config(**overrides) -> HAPConfig:
    """Configuration for the wide (160-column) HAP table."""
    return HAPConfig(payload_columns=WIDE_PAYLOAD_COLUMNS, **overrides)


#: Named workload profiles (Fig. 12 order) plus the SLA workload (Fig. 15).
WORKLOAD_PROFILES: dict[str, WorkloadMix] = {
    "hybrid_skewed": HYBRID_SKEWED,
    "hybrid_range_skewed": HYBRID_RANGE_SKEWED,
    "read_only_skewed": READ_ONLY_SKEWED,
    "read_only_uniform": READ_ONLY_UNIFORM,
    "update_only_skewed": UPDATE_ONLY_SKEWED,
    "update_only_uniform": UPDATE_ONLY_UNIFORM,
    "write_heavy": WRITE_HEAVY,
    "sla_hybrid": SLA_HYBRID,
}


def make_workload(
    profile: str | WorkloadMix,
    config: HAPConfig,
    *,
    num_operations: int = 10_000,
    seed: int = 42,
) -> Workload:
    """Generate a HAP workload for ``profile`` against a table of ``config``."""
    if isinstance(profile, str):
        try:
            mix = WORKLOAD_PROFILES[profile]
        except KeyError as exc:
            raise KeyError(
                f"unknown HAP profile {profile!r}; "
                f"choose from {sorted(WORKLOAD_PROFILES)}"
            ) from exc
    else:
        mix = profile
    low, high = config.key_domain
    generator = WorkloadGenerator(
        generate_keys(config), domain_low=low, domain_high=high, seed=seed
    )
    return generator.generate(mix, num_operations)


def figure12_profiles() -> tuple[WorkloadMix, ...]:
    """The six workload mixes of Fig. 12 in presentation order."""
    return FIGURE12_MIXES
