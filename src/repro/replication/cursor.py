"""The replication cursor: where a follower is in the primary's log.

A :class:`ReplicationCursor` is deliberately minimal -- one segment path,
one byte offset, one LSN -- because the whole tailing protocol rests on a
single invariant the durability layer already provides:

    **a follower never advances its cursor past a record it has not
    applied, and never applies a record above the primary's durable
    (fsync-covered) LSN.**

The second half is what makes the first half safe.  Bytes at or below the
primary's ``synced_offset`` are never rewritten: a process kill preserves
them verbatim and a power-loss crash truncates only *above* them (see
``WalWriter._die``).  Since every applied record is durable, the cursor's
offset always sits at or below the synced offset, so re-scanning from it
after any primary restart reads exactly the bytes it read before -- even
though the un-synced tail beyond it may have been truncated and replaced
with different records under the same LSNs.  Records a scan *returned*
but the durable gate withheld are intentionally forgotten; the next poll
re-reads them (or their replacements) from the unchanged offset.

:class:`CursorExchange` is the primary's half of the handshake: the
watermarks a follower needs to gate application (``durable_lsn``) and to
anticipate rotation (``checkpoint_lsn``), returned from every
``register`` / ``exchange`` call and small enough to serialize as a JSON
frame on the socket transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


@dataclass
class ReplicationCursor:
    """A follower's position in the primary's WAL.

    ``segment`` is the file currently being tailed (``None`` before the
    first locate and after the segment vanished), ``offset`` the absolute
    byte offset of the next unapplied record, and ``scan_lsn`` the LSN of
    the last record scanned *in this segment* -- the ``previous_lsn`` seed
    that carries the monotonicity check across incremental re-scans of a
    growing file (0 at a fresh segment start, where the first record's
    LSN is trusted to the segment name instead).
    """

    segment: Path | None = None
    offset: int = 0
    scan_lsn: int = 0


@dataclass(frozen=True)
class CursorExchange:
    """The primary's reply to a watermark exchange.

    ``durable_lsn`` is the fsync-covered high watermark -- the follower's
    application gate; ``checkpoint_lsn`` the newest committed snapshot's
    LSN, after which a rotation handoff to segment
    ``wal-<checkpoint_lsn + 1>.log`` is expected.
    """

    durable_lsn: int
    checkpoint_lsn: int

    def to_wire(self) -> dict:
        """JSON-safe form for the socket transport."""
        return {
            "durable_lsn": self.durable_lsn,
            "checkpoint_lsn": self.checkpoint_lsn,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "CursorExchange":
        return cls(
            durable_lsn=int(payload["durable_lsn"]),
            checkpoint_lsn=int(payload["checkpoint_lsn"]),
        )
