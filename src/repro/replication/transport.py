"""Socket transport for the cursor protocol: watermarks over TCP.

The wire carries *control frames only* -- record bytes move through the
shared log directory, so a frame is a small JSON object prefixed with a
``u32`` length::

    +-----------+----------------------+
    | length u32| JSON payload (UTF-8) |
    +-----------+----------------------+

Requests name a verb (``register`` / ``exchange`` / ``release``) plus the
follower id and applied LSN; replies carry ``ok`` and, on success, the
:class:`~repro.replication.cursor.CursorExchange` watermarks.  No pickle
anywhere -- a malicious or corrupt peer can at worst produce a
:class:`~repro.replication.errors.TransportError`, never execute code.

:class:`PrimaryServer` wraps a :class:`~repro.replication.primary.Primary`
endpoint in an accept loop (one daemon thread per connection -- exchanges
are rare and tiny, so thread-per-connection is plenty); followers in other
processes connect a :class:`RemotePrimary`, which duck-types the in-process
endpoint so :class:`~repro.replication.follower.Follower` cannot tell the
difference.
"""

from __future__ import annotations

import socket
import threading

from ..ipc import framing
from .cursor import CursorExchange
from .errors import TransportError
from .primary import Primary

#: Upper bound on a control frame; real frames are < 200 bytes, so this
#: only guards against garbage lengths from a non-protocol peer.  The
#: shared framing layer (:mod:`repro.ipc.framing`) enforces the bound
#: before reading a single payload byte.
_MAX_FRAME = 1 << 16

VERBS = ("register", "exchange", "release")


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Send one length-prefixed JSON frame (cursor-protocol bounds)."""
    try:
        framing.send_frame(sock, payload, max_frame=_MAX_FRAME)
    except framing.FrameError as exc:
        raise TransportError(str(exc)) from exc


def recv_frame(sock: socket.socket) -> dict | None:
    """Receive one frame; ``None`` on a clean EOF at a frame boundary."""
    try:
        return framing.recv_frame(sock, max_frame=_MAX_FRAME)
    except framing.FrameError as exc:
        raise TransportError(str(exc)) from exc


class PrimaryServer:
    """Serve a :class:`Primary` endpoint's verbs over TCP.

    Binds immediately (so :attr:`address` is known before :meth:`start`),
    accepts on a daemon thread, and handles each connection on its own
    daemon thread -- a connection is one follower's long-lived exchange
    channel.  Usable as a context manager.
    """

    def __init__(
        self, primary: Primary, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.primary = primary
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is bound to (port resolves 0)."""
        name = self._listener.getsockname()
        return (name[0], name[1])

    def start(self) -> "PrimaryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._serve, name="replication-primary", daemon=True
            )
            self._thread.start()
        return self

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during stop()
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    request = recv_frame(conn)
                except TransportError:
                    return
                if request is None:
                    return
                try:
                    send_frame(conn, self._dispatch(request))
                except OSError:
                    return

    def _dispatch(self, request: dict) -> dict:
        verb = request.get("verb")
        follower = request.get("follower")
        if verb not in VERBS or not isinstance(follower, str):
            return {"ok": False, "error": f"bad request: {request!r}"}
        try:
            if verb == "release":
                self.primary.release(follower)
                return {"ok": True}
            applied = int(request.get("applied_lsn", 0))
            handler = (
                self.primary.register
                if verb == "register"
                else self.primary.exchange
            )
            reply = handler(follower, applied)
        except Exception as exc:  # surface primary-side failures to the peer
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        return {"ok": True, **reply.to_wire()}

    def stop(self) -> None:
        """Stop accepting and close the listener (idempotent).  Live
        per-connection threads die with their sockets' peers."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "PrimaryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class RemotePrimary:
    """Client half of the transport: the :class:`Primary` verb surface
    over a socket, for followers in another process.

    Connects lazily and reconnects after a dropped connection on the next
    verb call.  A single lock serializes frames on the one connection --
    a follower exchanges from one thread, so contention is nil.
    """

    def __init__(self, address: tuple[str, int], *, timeout: float = 5.0) -> None:
        self.address = (address[0], int(address[1]))
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    def _request(self, payload: dict) -> dict:
        with self._lock:
            for attempt in (0, 1):
                if self._sock is None:
                    self._sock = socket.create_connection(
                        self.address, timeout=self._timeout
                    )
                try:
                    send_frame(self._sock, payload)
                    reply = recv_frame(self._sock)
                    if reply is None:
                        raise TransportError("primary closed the connection")
                    break
                except (OSError, TransportError):
                    # One silent reconnect covers a primary restart between
                    # polls; a second failure is the caller's problem.
                    self.close()
                    if attempt:
                        raise
        if not reply.get("ok"):
            raise TransportError(
                f"primary rejected {payload.get('verb')}: {reply.get('error')}"
            )
        return reply

    def register(self, follower_id: str, applied_lsn: int) -> CursorExchange:
        return CursorExchange.from_wire(
            self._request(
                {
                    "verb": "register",
                    "follower": follower_id,
                    "applied_lsn": int(applied_lsn),
                }
            )
        )

    def exchange(self, follower_id: str, applied_lsn: int) -> CursorExchange:
        return CursorExchange.from_wire(
            self._request(
                {
                    "verb": "exchange",
                    "follower": follower_id,
                    "applied_lsn": int(applied_lsn),
                }
            )
        )

    def release(self, follower_id: str) -> None:
        self._request({"verb": "release", "follower": follower_id})

    def close(self) -> None:
        """Drop the connection (the next verb call reconnects)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
