"""Replication: WAL-shipping followers over the durability log.

The subsystem turns one durable database into a primary with read
replicas at bounded LSN lag:

* :class:`Follower` -- bootstraps a replica table from the newest
  snapshot, then tails the live WAL segments incrementally (byte-offset
  cursor, rotation handoff at checkpoints), applying only fsync-covered
  records;
* :class:`Primary` -- the watermark/retention endpoint on an existing
  :class:`~repro.durability.manager.DurabilityManager`;
* :class:`PrimaryServer` / :class:`RemotePrimary` -- the same endpoint
  verbs over a length-prefixed JSON socket protocol, for followers in
  separate processes (record bytes travel via the shared log directory;
  only control state crosses the socket).

The api layer wraps a follower as a read-only database:
``Database.follow(root, primary=...)`` +
:class:`~repro.api.session.FollowerSession`.
"""

from .cursor import CursorExchange, ReplicationCursor
from .errors import ReplicationError, RetentionGapError, TransportError
from .follower import Follower
from .primary import Primary
from .transport import PrimaryServer, RemotePrimary

__all__ = [
    "CursorExchange",
    "Follower",
    "Primary",
    "PrimaryServer",
    "RemotePrimary",
    "ReplicationCursor",
    "ReplicationError",
    "RetentionGapError",
    "TransportError",
]
