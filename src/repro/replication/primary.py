"""The primary endpoint: watermark export + retention pins for followers.

:class:`Primary` is a thin protocol adapter over an existing
:class:`~repro.durability.manager.DurabilityManager` -- it does not ship
data.  Record bytes travel through the shared log directory (followers
read WAL segments and snapshots straight off the filesystem); what the
endpoint exchanges is *control* state, in both directions:

* **outbound** (primary -> follower): the durable and checkpoint LSN
  watermarks (:class:`~repro.replication.cursor.CursorExchange`).  The
  durable watermark is the application gate -- a follower must never
  apply an appended-but-unsynced record, because a power-loss crash may
  truncate it away and the primary's next incarnation may write a
  *different* record under the same LSN;
* **inbound** (follower -> primary): the follower's applied LSN, which
  becomes its retention pin (:meth:`DurabilityManager.pin_lsn`) so
  checkpoint GC never deletes a segment the cursor still needs.

Same-process followers call the endpoint directly; cross-process
followers reach an identical verb surface through
:class:`~repro.replication.transport.RemotePrimary`.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from .cursor import CursorExchange

if TYPE_CHECKING:
    from ..durability.manager import DurabilityManager


class Primary:
    """Watermark/pin endpoint over one durability manager.

    All three verbs are cheap and thread-safe (the manager's pin lock is
    the only synchronization), so one endpoint serves any number of
    follower threads or transport connections.
    """

    def __init__(self, manager: "DurabilityManager") -> None:
        self.manager = manager

    @property
    def root(self) -> Path:
        """The shared log directory followers bootstrap and tail from."""
        return self.manager.root

    def _watermarks(self) -> CursorExchange:
        return CursorExchange(
            durable_lsn=self.manager.durable_lsn,
            checkpoint_lsn=self.manager.last_checkpoint_lsn,
        )

    def register(self, follower_id: str, applied_lsn: int) -> CursorExchange:
        """Announce a follower: pin retention at its applied LSN.

        Idempotent; re-registering after a follower restart simply moves
        the pin (possibly *backward*, to the snapshot the new incarnation
        bootstrapped from).
        """
        self.manager.pin_lsn(follower_id, applied_lsn)
        return self._watermarks()

    def exchange(self, follower_id: str, applied_lsn: int) -> CursorExchange:
        """One watermark exchange: advance the follower's pin to what it
        has applied, return the primary's current watermarks."""
        self.manager.pin_lsn(follower_id, applied_lsn)
        return self._watermarks()

    def release(self, follower_id: str) -> None:
        """Drop a departing follower's retention pin (idempotent)."""
        self.manager.release_pin(follower_id)
