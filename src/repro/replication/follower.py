"""The follower: snapshot bootstrap + incremental WAL tailing.

A :class:`Follower` keeps a read-only replica
:class:`~repro.storage.table.Table` current against a primary's log
directory:

1. **bootstrap** -- load the newest intact snapshot
   (:func:`load_latest_snapshot` + :func:`table_from_snapshot`) and place
   the cursor at its LSN;
2. **register** -- announce the cursor to the primary endpoint, which
   pins WAL retention at the applied LSN so checkpoint GC can never
   delete a segment the cursor still needs;
3. **tail** -- each :meth:`poll` exchanges watermarks with the primary,
   then incrementally re-scans the current segment from the cursor's
   byte offset (:func:`scan_segment` with ``start_offset``), applying
   each record through the same bulk-write paths recovery uses
   (:func:`apply_delta_log`) and handing off to the successor segment
   when a checkpoint rotation leaves the current one cleanly consumed.

The one rule that makes this safe against *any* primary crash is the
durable gate: a record is applied only once its LSN is at or below the
primary's fsync-covered watermark.  Un-synced records can be truncated by
a power-loss crash and replaced -- same LSNs, different contents -- by
the primary's next incarnation; durable bytes are immutable, so the
cursor offset (which only ever covers applied = durable records) stays
valid across primary restarts, and a follower restart simply re-runs the
bootstrap (re-applying the log above a *newer* snapshot is idempotent by
construction: it replays exactly the committed history).

Without a primary endpoint (``primary=None``) there is no durable
watermark to gate on; the follower applies every CRC-valid record it
scans.  That is the right semantics for tailing a *dead* primary's
directory (offline catch-up) but, against a live primary under the
``"interval"``/``"os"`` fsync policies, it may apply records a power
loss would retract -- use an endpoint whenever the primary is live.

Threading: :meth:`start` runs the poll loop on a daemon thread; every
table mutation happens under the ``replica_apply`` lock (declared
*outside* the chunk latches in :data:`repro.discipline.LOCK_ORDER`), so
read sessions on the replica table interleave with application under the
table's ordinary chunk-granular latches while cursor state stays
single-writer.
"""

from __future__ import annotations

import itertools
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING

from repro import discipline
from repro.discipline import guarded_class, requires_lock

from ..durability.errors import WalCorruptionError
from ..durability.recovery import apply_delta_log, table_from_snapshot
from ..durability.snapshot import load_latest_snapshot
from ..durability.wal import (
    MAGIC,
    decode_delta_log,
    scan_segment,
    segment_first_lsn,
)
from .cursor import ReplicationCursor
from .errors import ReplicationError, RetentionGapError

if TYPE_CHECKING:
    from ..storage.table import Table

_FOLLOWER_IDS = itertools.count(1)


def _default_follower_id() -> str:
    return f"follower-{os.getpid()}-{next(_FOLLOWER_IDS)}"


@guarded_class
class Follower:
    """A tailing replica of the database stored under ``root``.

    Parameters
    ----------
    root:
        The primary's log directory (``wal/`` + ``snapshots/``), shared
        via the filesystem.
    primary:
        Watermark endpoint: a :class:`~repro.replication.primary.Primary`
        (same process) or :class:`~repro.replication.transport.RemotePrimary`
        (socket).  ``None`` disables the durable gate and retention pin --
        offline tailing only; see the module docstring.
    follower_id:
        Stable name for the retention pin; generated when omitted.
    chunk_builder:
        Optional chunk builder for the replica table (defaults to the
        layout spec recorded in the snapshot manifest).
    poll_interval:
        Idle sleep between polls of the background thread.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        primary=None,
        follower_id: str | None = None,
        chunk_builder=None,
        poll_interval: float = 0.02,
    ) -> None:
        self.root = Path(root)
        self.wal_dir = self.root / "wal"
        self.follower_id = follower_id or _default_follower_id()
        self.poll_interval = float(poll_interval)
        snapshot = load_latest_snapshot(self.root / "snapshots")
        if snapshot is None:
            raise ReplicationError(
                f"no intact snapshot under {self.root / 'snapshots'}; "
                "a follower bootstraps from the primary's baseline snapshot"
            )
        self.table: "Table" = table_from_snapshot(
            snapshot, chunk_builder=chunk_builder
        )
        self.snapshot_lsn = snapshot.lsn
        self._apply_lock = discipline.make_lock("replica_apply")
        self._cursor = ReplicationCursor()
        self._applied_lsn = snapshot.lsn
        self._target_lsn = snapshot.lsn
        self._batches_applied = 0
        self._operations_applied = 0
        #: Transport failures the poll loop absorbed (it retries).
        self.transport_errors = 0
        self._primary = primary
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if primary is not None:
            # Register *before* the first scan: from here on checkpoint GC
            # keeps every segment above our applied LSN.  (Bootstrap itself
            # is pin-free but safe in practice: GC retains all segments
            # above the oldest kept snapshot, and we loaded the newest.)
            reply = primary.register(self.follower_id, self._applied_lsn)
            self._target_lsn = max(self._target_lsn, reply.durable_lsn)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def applied_lsn(self) -> int:
        """LSN of the last record applied to the replica table."""
        return self._applied_lsn

    @property
    def target_lsn(self) -> int:
        """Highest LSN the follower knows it should reach: the last
        exchanged durable watermark (or, without a primary endpoint, the
        highest LSN scanned from the log)."""
        return self._target_lsn

    @property
    def lag_lsn(self) -> int:
        """How many commits the replica trails its known target by."""
        return max(0, self._target_lsn - self._applied_lsn)

    @property
    def caught_up(self) -> bool:
        """Whether the replica has applied everything it may apply."""
        return self._applied_lsn >= self._target_lsn

    @property
    def batches_applied(self) -> int:
        """WAL records (commit scopes) applied since bootstrap."""
        return self._batches_applied

    @property
    def operations_applied(self) -> int:
        """Individual write operations applied since bootstrap."""
        return self._operations_applied

    # ------------------------------------------------------------------ #
    # Tailing
    # ------------------------------------------------------------------ #

    def poll(self) -> int:
        """One catch-up round: exchange watermarks, apply what is newly
        durable.  Returns the number of batches applied.

        Safe to call directly (synchronous catch-up) or from the
        background thread; application is serialized on ``replica_apply``.
        """
        limit = None
        if self._primary is not None:
            reply = self._primary.exchange(self.follower_id, self._applied_lsn)
            limit = reply.durable_lsn
        with self._apply_lock:
            if limit is not None:
                self._target_lsn = max(self._target_lsn, limit)
            return self._advance(limit)

    def reconnect(self, primary) -> None:
        """Point the follower at a (re)started primary endpoint.

        Re-registers the retention pin at the current applied LSN -- a
        restarted primary's manager starts with no pins, so a follower
        that survives its primary must re-announce itself before the next
        checkpoint GC runs.
        """
        self._primary = primary
        if primary is not None:
            reply = primary.register(self.follower_id, self._applied_lsn)
            with self._apply_lock:
                self._target_lsn = max(self._target_lsn, reply.durable_lsn)

    def catch_up(self) -> int:
        """Poll until one round applies nothing; returns total batches."""
        total = 0
        while True:
            applied = self.poll()
            total += applied
            if not applied:
                return total

    @requires_lock("replica_apply")
    def _advance(self, limit: int | None) -> int:
        """Apply records up to ``limit`` (``None`` = everything valid)."""
        batches = 0
        relocations = 0
        while True:
            if limit is not None and self._applied_lsn >= limit:
                break
            cursor = self._cursor
            if cursor.segment is None or not cursor.segment.exists():
                if relocations > 2 or not self._locate_segment():
                    break
                relocations += 1
                cursor = self._cursor
            try:
                if cursor.segment.stat().st_size < len(MAGIC):
                    break  # segment file just created; magic still in flight
                scan = scan_segment(
                    cursor.segment,
                    start_offset=cursor.offset,
                    previous_lsn=cursor.scan_lsn,
                )
            except FileNotFoundError:
                # Vanished between locate and scan -- rotation GC'd it (the
                # pin protocol makes this rare); try relocating once more.
                self._cursor = ReplicationCursor()
                continue
            except WalCorruptionError as exc:
                raise ReplicationError(
                    f"segment {cursor.segment.name} is not a valid WAL "
                    f"segment: {exc}"
                ) from exc
            progressed = self._apply_scan(scan, limit)
            batches += progressed
            if progressed:
                continue
            if scan.tail_status == "clean" and self._handoff():
                continue
            # "short"/"corrupt" tails on the live segment repair themselves
            # (more bytes / the writer's reopen truncation); a clean tail
            # with no successor means we are simply caught up.  Either way
            # this round is done.
            self._check_tail(scan)
            break
        return batches

    @requires_lock("replica_apply")
    def _apply_scan(self, scan, limit: int | None) -> int:
        """Apply a scan's records through the durable gate; advance the
        cursor only over records actually applied or already covered."""
        cursor = self._cursor
        batches = 0
        for (lsn, body), end in zip(scan.records, scan.ends):
            if limit is not None and lsn > limit:
                # Appended but not yet durable: do NOT advance the cursor --
                # a primary power loss may replace these exact bytes.
                break
            if lsn > self._applied_lsn:
                if lsn != self._applied_lsn + 1:
                    raise RetentionGapError(
                        f"replication gap: expected lsn "
                        f"{self._applied_lsn + 1}, found {lsn} in "
                        f"{cursor.segment.name}"
                    )
                self._operations_applied += apply_delta_log(
                    self.table, decode_delta_log(body)
                )
                self._applied_lsn = lsn
                self._batches_applied += 1
                batches += 1
            cursor.offset = end
            cursor.scan_lsn = lsn
            if limit is None:
                self._target_lsn = max(self._target_lsn, lsn)
        return batches

    @requires_lock("replica_apply")
    def _locate_segment(self) -> bool:
        """Point the cursor at the segment holding ``applied_lsn + 1``.

        The right segment is the one with the greatest first LSN at or
        below the next record we need.  No segments at all means the
        primary has not created one yet (wait); segments that all start
        *above* the next record mean the history was GC'd out from under
        an unpinned cursor (:class:`RetentionGapError`).
        """
        segments = self._segments()
        needed = self._applied_lsn + 1
        best = None
        for segment in segments:
            if segment_first_lsn(segment) <= needed:
                best = segment
            else:
                break
        if best is None:
            if segments:
                raise RetentionGapError(
                    f"records from lsn {needed} were garbage-collected "
                    f"(oldest surviving segment starts at "
                    f"{segment_first_lsn(segments[0])}); re-bootstrap the "
                    "follower from the latest snapshot"
                )
            return False
        self._cursor = ReplicationCursor(segment=best, offset=len(MAGIC))
        return True

    @requires_lock("replica_apply")
    def _handoff(self) -> bool:
        """Rotation handoff: at a cleanly-consumed segment end, move to
        the successor iff it continues exactly at ``applied_lsn + 1``."""
        current_first = segment_first_lsn(self._cursor.segment)
        for segment in self._segments():
            first = segment_first_lsn(segment)
            if first <= current_first:
                continue
            if first != self._applied_lsn + 1:
                # A successor that skips LSNs past a fully-consumed
                # predecessor means a rotated segment between them was
                # deleted under the cursor.
                raise RetentionGapError(
                    f"rotation handoff gap: consumed through "
                    f"{self._applied_lsn}, next segment starts at {first}"
                )
            self._cursor = ReplicationCursor(segment=segment, offset=len(MAGIC))
            return True
        return False

    @requires_lock("replica_apply")
    def _check_tail(self, scan) -> None:
        """A torn tail is legal only on the live (last) segment, where the
        writer's reopen truncation can still repair it."""
        if scan.tail_status == "corrupt":
            segments = self._segments()
            if segments and self._cursor.segment != segments[-1]:
                raise ReplicationError(
                    f"rotated segment {self._cursor.segment.name} has a "
                    "corrupt tail mid-history; replication cannot continue"
                )

    def _segments(self) -> list[Path]:
        return sorted(self.wal_dir.glob("wal-*.log"), key=segment_first_lsn)

    # ------------------------------------------------------------------ #
    # Background tailing
    # ------------------------------------------------------------------ #

    def start(self) -> "Follower":
        """Tail on a daemon thread until :meth:`stop` / :meth:`close`."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run,
                name=f"repro-{self.follower_id}",
                daemon=True,
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                applied = self.poll()
            except ReplicationError:
                raise  # gaps / corruption: die loudly, state is suspect
            except (ConnectionError, OSError):
                # Transport hiccup (primary restarting, socket reset):
                # count it and retry next tick.
                self.transport_errors += 1
                applied = 0
            if not applied:
                self._stop.wait(self.poll_interval)

    def stop(self) -> None:
        """Stop the background thread (idempotent; cursor state remains
        valid, :meth:`start` may be called again)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        """Stop tailing and release the retention pin (idempotent)."""
        self.stop()
        primary, self._primary = self._primary, None
        if primary is not None:
            try:
                primary.release(self.follower_id)
            except (ConnectionError, OSError, ReplicationError):
                pass  # primary already gone; its pins died with it
            closer = getattr(primary, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "Follower":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
