"""Exception hierarchy for the replication subsystem."""

from __future__ import annotations

from ..durability.errors import DurabilityError


class ReplicationError(DurabilityError):
    """Base class for replication-layer errors: a follower could not make
    progress for a reason more bytes will not fix (history gaps, protocol
    violations, corrupt rotated segments)."""


class RetentionGapError(ReplicationError):
    """The records a cursor needs next were garbage-collected on the
    primary: every surviving segment starts above ``applied_lsn + 1``.
    The pin protocol (:meth:`DurabilityManager.pin_lsn`) exists to make
    this impossible for registered followers; an unregistered follower
    that falls behind ``keep_segments`` worth of checkpoints must
    re-bootstrap from the latest snapshot."""


class TransportError(ReplicationError):
    """The watermark-exchange connection failed mid-frame (short read,
    malformed frame, or the primary reported an error verb)."""
