"""Concurrency discipline: declared invariants plus a debug-mode detector.

PR 5 made the engine concurrent under a small set of rules -- chunk-granular
RW latches, ascending-order multi-acquire, generation-checked copy-on-write
publishes, solver-outside-the-lock -- that until now lived only in comments
and probabilistic stress tests.  This module turns them into *data* that is
enforced twice:

* **statically** by :mod:`repro.analysis` (``python -m repro.analysis src/``),
  which parses the tree with :mod:`ast` and checks every latch bracket, lock
  nesting, guarded-attribute access and publish site against the tables
  declared here;
* **at runtime** (opt-in via ``REPRO_DEBUG_LATCHES=1``) by a debug layer
  that records per-thread held-lock sets, builds a lock-order graph with
  cycle detection (potential-deadlock reports carry both acquisition
  stacks), asserts latch requirements at decorated entry points, and runs
  an Eraser-lite lockset check over the ``GUARDED_BY`` attributes.

When the debug mode is disabled (the default) every hook here compiles out:
``requires_latch``/``requires_lock`` return the function unchanged,
``guarded_class`` returns the class unchanged, and the lock factories
return plain :mod:`threading` primitives -- the hot paths are bit-identical
to the undecorated code.

This module is dependency-free (stdlib only) so the static analyzer can
import the declaration tables without dragging in numpy.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass, field
from typing import Callable, Iterable

#: Environment variable that switches the runtime debug layer on.
DEBUG_ENV = "REPRO_DEBUG_LATCHES"

#: Debug-mode decisions taken at import time (decorator wrapping).  The
#: mutable module flag below can be flipped by tests for construction-time
#: choices (latch classes, lock factories), but already-imported decorated
#: functions keep their import-time shape.
DEBUG_AT_IMPORT = os.environ.get(DEBUG_ENV, "").strip() not in ("", "0", "false")

_debug = DEBUG_AT_IMPORT


def debug_enabled() -> bool:
    """Whether the runtime debug layer is active (construction-time checks)."""
    return _debug


def set_debug(enabled: bool) -> None:
    """Flip the debug flag (test hook).

    Affects *construction-time* choices -- latch classes picked by
    :class:`~repro.storage.latches.ChunkLatches`, lock factories -- but not
    decorators already applied at import time, which honour
    :data:`DEBUG_AT_IMPORT`.  Tests exercising the decorator wrappers use
    :func:`wrap_requires_latch` directly or a subprocess with the
    environment variable set.
    """
    global _debug
    _debug = bool(enabled)


class LatchDisciplineError(AssertionError):
    """A latch/lock discipline assertion failed in debug mode."""


# --------------------------------------------------------------------- #
# Declared model: lock order, lock attributes, guarded state
# --------------------------------------------------------------------- #

#: Rank of every chunk latch (the outermost tier of the partial order).
CHUNK_LATCH_RANK = 0

#: The declared acquisition partial order: a lock may only be acquired
#: while every held lock has a strictly *smaller* rank.  The durability
#: commit lock is the outermost of all (a durable write scope holds it
#: across chunk-latched applies *and* the WAL append; a checkpoint holds
#: it across whole-table chunk snapshots), with the WAL group-commit sync
#: lock just inside it -- hence the negative ranks.  Chunk latches are the
#: outermost *storage* tier; within the tier, :class:`ChunkLatches`
#: requires ascending chunk indices (check LO02).  This is the order the
#: sharding dispatcher inherits -- extend it here, not in comments.
LOCK_ORDER: dict[str, int] = {
    # Sharding tier (dispatcher side, outermost of all): the dispatcher
    # serializes rounds on ``shard_state`` and then talks to each worker
    # under that worker's ``shard_channel`` frame lock, while the workers'
    # own durability/storage locks live in *other processes* and never
    # interleave with these.  A dispatcher thread may also execute against
    # an in-process oracle database while holding ``shard_state`` (the
    # equality harness does), so the tier sits outside ``wal_commit``.
    "shard_state": -40,
    "shard_channel": -30,
    "wal_commit": -20,
    "wal_sync": -10,
    # Replication tier: the follower's applier lock is held across WAL
    # replay into the replica table (which takes chunk latches), so it
    # sits outside the chunk tier; the cursor-pin registry may be taken
    # under the commit lock (checkpoint GC) *or* under the applier lock
    # (watermark exchange), so it is the innermost durability lock.
    "replica_apply": -6,
    "replica_pins": -4,
    "chunk_latch": CHUNK_LATCH_RANK,
    "table_structure": 10,
    "table_payload": 20,
    "engine_stats": 30,
    "policy_state": 40,
    "monitor": 50,
    "reorg_state": 60,
    "reorg_wake": 70,
}

#: Rank assigned to locks the model does not know (they sort after every
#: declared lock, so acquiring a declared lock while holding one is an
#: order violation -- unknown locks must be innermost).
UNKNOWN_LOCK_RANK = 1_000

#: Maps ``(class name, attribute name)`` of a lock attribute to its order
#: name, so both the static walker and fixtures resolve ``with
#: self._state_lock:`` blocks to a ranked lock.  ``None`` class keys are
#: name-only fallbacks for attributes that are unambiguous repo-wide.
LOCK_ATTRIBUTES: dict[tuple[str | None, str], str] = {
    ("Table", "_structure_lock"): "table_structure",
    ("Table", "_payload_lock"): "table_payload",
    ("EngineStatistics", "_lock"): "engine_stats",
    ("WorkloadMonitor", "_lock"): "monitor",
    ("ReorgPolicy", "_state_lock"): "policy_state",
    ("Reorganizer", "_state"): "reorg_state",
    ("Reorganizer", "_wake"): "reorg_wake",
    ("DurabilityManager", "_commit_lock"): "wal_commit",
    ("DurabilityManager", "_pins_lock"): "replica_pins",
    ("WalWriter", "_sync_lock"): "wal_sync",
    ("Follower", "_apply_lock"): "replica_apply",
    ("ShardCluster", "_lock"): "shard_state",
    ("ShardedDatabase", "_lock"): "shard_state",
    ("ShardChannel", "_lock"): "shard_channel",
    (None, "commit_lock"): "wal_commit",
    (None, "_commit_lock"): "wal_commit",
    (None, "_sync_lock"): "wal_sync",
    (None, "_pins_lock"): "replica_pins",
    (None, "_apply_lock"): "replica_apply",
    (None, "_structure_lock"): "table_structure",
    (None, "_payload_lock"): "table_payload",
    (None, "_state_lock"): "policy_state",
    (None, "_state"): "reorg_state",
    (None, "_wake"): "reorg_wake",
    # Cross-object references in the sharding layer: a helper holding a
    # borrowed cluster/channel lock names the attribute unambiguously.
    (None, "_shard_state_lock"): "shard_state",
    (None, "_shard_channel_lock"): "shard_channel",
}

#: Chunk-touching methods and the latch mode each requires.  The
#: ``@requires_latch`` decorators across ``storage/column.py`` and
#: ``storage/delta_store.py`` must agree with this table (a test asserts
#: it), and the static latch-bracketing checker (LB01) treats any call to
#: one of these names on a chunk object as requiring the declared mode.
CHUNK_METHOD_MODES: dict[str, str] = {
    # Shared (read) mode: concurrent probes of one chunk.
    "point_query": "shared",
    "multi_point_query": "shared",
    "range_query": "shared",
    "multi_range_count": "shared",
    "range_rowids": "shared",
    "full_scan": "shared",
    # Exclusive (write) mode: structural mutation of one chunk.
    "insert": "exclusive",
    "delete": "exclusive",
    "update": "exclusive",
    "remove_one": "exclusive",
    "bulk_insert": "exclusive",
    "bulk_delete": "exclusive",
}

#: Latch-mode strength: exclusive satisfies a shared requirement.
_MODE_LEVEL = {"shared": 1, "exclusive": 2}

#: Guarded state: ``GUARDED_BY[class][attribute] = (lock name, mode)``.
#: Mode ``"rw"`` means *every* access (read or write) must hold the lock;
#: ``"write"`` means writes must hold it while unlocked reads are
#: tolerated (GIL-atomic reads of monotonic scalars / published
#: references, documented at each declaration site).  ``__init__`` /
#: ``__post_init__`` are exempt (the object is not yet shared).
GUARDED_BY: dict[str, dict[str, tuple[str, str]]] = {
    "Table": {
        # Payload growth is serialized; readers see rows only after the
        # chunk insert publishes their row ids, so reads stay unlocked.
        "_payload": ("table_payload", "write"),
        "_next_rowid": ("table_payload", "rw"),
        "_payload_capacity": ("table_payload", "rw"),
        # Fence/router refresh happens under the structure lock; unlocked
        # reads see either the old or the new published router state.
        "_chunk_bounds": ("table_structure", "write"),
        "_router": ("table_structure", "write"),
        # Generations move only under the owning chunk's exclusive latch.
        "_generations": ("chunk_latch:exclusive", "write"),
    },
    "EngineStatistics": {
        "operations": ("engine_stats", "write"),
        "simulated_ns": ("engine_stats", "write"),
        "wall_ns": ("engine_stats", "write"),
    },
    "WorkloadMonitor": {
        "_activity": ("monitor", "rw"),
    },
    "ReorgPolicy": {
        "_baselines": ("policy_state", "rw"),
        "_baselines_seeded": ("policy_state", "rw"),
        "_calls": ("policy_state", "rw"),
        "decisions": ("policy_state", "write"),
        "_database": ("policy_state", "write"),
    },
    "Reorganizer": {
        "requeues": ("reorg_state", "write"),
        "errors": ("reorg_state", "write"),
        "_failures": ("reorg_state", "rw"),
        "_reported": ("reorg_state", "rw"),
        "_sessions": ("reorg_state", "rw"),
        "_thread": ("reorg_state", "rw"),
        "_database": ("reorg_state", "write"),
        "_pending": ("reorg_wake", "rw"),
        "_pending_set": ("reorg_wake", "rw"),
        "_busy": ("reorg_wake", "rw"),
        "_stop": ("reorg_wake", "rw"),
    },
    "WalWriter": {
        # Framing state moves only inside a commit scope (the manager's
        # ``wal_commit`` lock, the decorated precondition of ``append``);
        # the sync path reads them unlocked to latch its fsync target.
        "_offset": ("wal_commit", "write"),
        "_appended_lsn": ("wal_commit", "write"),
        # The durable watermark moves only under the group-commit lock;
        # commit acknowledgement reads it unlocked (monotonic scalar).
        "_synced_offset": ("wal_sync", "write"),
        "_synced_lsn": ("wal_sync", "write"),
    },
    "DurabilityManager": {
        # Degradation latches and the checkpoint watermark flip only under
        # the commit lock; ``require_writable`` reads them unlocked (a
        # racing read at worst lets one already-in-flight scope commit,
        # which the failing append itself then refuses).
        "_read_only": ("wal_commit", "write"),
        "_last_checkpoint": ("wal_commit", "write"),
        # The active segment writer is swapped at checkpoint rotation
        # only; unlocked readers see the old or the new published writer.
        "wal": ("wal_commit", "write"),
        # Replication cursor pins: mutated by watermark exchanges, read
        # by checkpoint GC; every access holds the pin-registry lock.
        "_pins": ("replica_pins", "rw"),
    },
    "ShardChannel": {
        # The one connection to a shard worker: request/reply pairs (and
        # the close that invalidates the socket) hold the channel lock, so
        # frames from concurrent dispatcher threads never interleave.
        "_sock": ("shard_channel", "rw"),
    },
    "ShardCluster": {
        # Worker-process/channel registries: mutated at start/stop and on
        # worker death, read by every dispatch round.
        "_channels": ("shard_state", "rw"),
        "_processes": ("shard_state", "rw"),
    },
    "Follower": {
        # The cursor and the replay accounting move only under the
        # applier lock; the applied/target watermarks are read unlocked
        # by lag introspection (monotonic scalars within an incarnation).
        "_cursor": ("replica_apply", "rw"),
        "_applied_lsn": ("replica_apply", "write"),
        "_target_lsn": ("replica_apply", "write"),
        "_batches_applied": ("replica_apply", "write"),
        "_operations_applied": ("replica_apply", "write"),
    },
}

#: Container methods the checkers treat as *mutations* of a guarded
#: attribute (``self._pending.append(...)`` is a write to ``_pending``).
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "add",
        "discard",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "insert",
        "rebuild",
        "sort",
        "reverse",
    }
)

#: Solver / heavy-rebuild entry points that must never run under a latch
#: or any declared lock (check SL01): the expensive phases of a replan are
#: off-latch by design.
SOLVER_CALL_NAMES = frozenset(
    {
        "plan_chunk",
        "with_sample",
        "build_chunk",
        "build_chunk_from_plan",
        "evaluate_layout",
        "optimize_layout",
        "solve_bip",
        "solve_dp",
        "solve_greedy",
        "rebuild_chunk",
        "build_chunk_replacement",
        "maybe_reorganize",
        "decide_chunk",
    }
)


def mode_level(mode: str) -> int:
    """Numeric strength of a latch mode (exclusive > shared)."""
    try:
        return _MODE_LEVEL[mode]
    except KeyError:
        raise ValueError(f"unknown latch mode: {mode!r}") from None


def lock_rank(name: str) -> int:
    """Declared rank of a lock order name (unknown locks sort last)."""
    return LOCK_ORDER.get(name, UNKNOWN_LOCK_RANK)


# --------------------------------------------------------------------- #
# Violation recording
# --------------------------------------------------------------------- #


@dataclass
class DisciplineViolation:
    """One runtime discipline violation (recorded, not raised)."""

    check: str
    message: str
    stack: str = ""
    extra_stack: str = ""


_violations: list[DisciplineViolation] = []
_violations_lock = threading.Lock()


def violations() -> list[DisciplineViolation]:
    """All runtime violations recorded since the last :func:`clear`."""
    with _violations_lock:
        return list(_violations)


def clear_violations() -> None:
    """Forget recorded runtime violations (test hook)."""
    with _violations_lock:
        _violations.clear()
    _order_graph.reset()


def _record_violation(
    check: str, message: str, *, stack: str = "", extra_stack: str = ""
) -> DisciplineViolation:
    violation = DisciplineViolation(
        check=check, message=message, stack=stack, extra_stack=extra_stack
    )
    with _violations_lock:
        _violations.append(violation)
    return violation


def _stack() -> str:
    # Drop the innermost frames (this module's plumbing) for readability.
    return "".join(traceback.format_stack()[:-2])


# --------------------------------------------------------------------- #
# Per-thread held-lock state
# --------------------------------------------------------------------- #


class _ThreadState(threading.local):
    def __init__(self) -> None:  # noqa: B027 - threading.local init hook
        # key -> (mode level, group id, chunk index) for chunk latches
        self.latches: dict[object, tuple[int, int, int]] = {}
        # order name -> reentry count for tracked named locks
        self.locks: dict[str, int] = {}


_state = _ThreadState()


def held_latches() -> dict[object, tuple[int, int, int]]:
    """The calling thread's held chunk latches (debug mode)."""
    return dict(_state.latches)


def held_locks() -> dict[str, int]:
    """The calling thread's held tracked locks, name -> reentry count."""
    return dict(_state.locks)


def _held_keys() -> list[tuple[object, int]]:
    """(graph key, rank) pairs for everything the thread holds."""
    keys: list[tuple[object, int]] = [
        (key, CHUNK_LATCH_RANK) for key in _state.latches
    ]
    keys.extend((name, lock_rank(name)) for name in _state.locks)
    return keys


def holds_chunk_latch(mode: str = "shared") -> bool:
    """Whether the thread holds any chunk latch of at least ``mode``."""
    needed = mode_level(mode)
    return any(level >= needed for level, _, _ in _state.latches.values())


def holds_lock(name: str) -> bool:
    """Whether the thread holds the tracked lock called ``name``."""
    return _state.locks.get(name, 0) > 0


# --------------------------------------------------------------------- #
# Lock-order graph (cycle detection = potential deadlock)
# --------------------------------------------------------------------- #


@dataclass
class PotentialDeadlock:
    """A cycle in the lock-order graph: two sites acquire in both orders."""

    edge: tuple[object, object]
    cycle: list[object]
    stack: str
    reverse_stack: str


class LockOrderGraph:
    """Directed graph of observed ``held -> acquired`` lock pairs.

    Every acquisition adds one edge per currently-held lock.  An edge that
    closes a cycle is a *potential deadlock* -- some interleaving of the
    recorded acquisition sites can deadlock -- and is reported with the
    acquisition stack of both directions (Eraser-style: no actual deadlock
    has to occur for the order inversion to be caught).
    """

    def __init__(self) -> None:
        self._edges: dict[object, dict[object, str]] = {}
        self._lock = threading.Lock()
        self.cycles: list[PotentialDeadlock] = []

    def reset(self) -> None:
        with self._lock:
            self._edges.clear()
            self.cycles.clear()

    def edges(self) -> list[tuple[object, object]]:
        """All recorded (held, acquired) pairs."""
        with self._lock:
            return [
                (src, dst) for src, dsts in self._edges.items() for dst in dsts
            ]

    def _path(self, start: object, goal: object) -> list[object] | None:
        """A path start -> ... -> goal in the edge set, if one exists."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def note(
        self,
        held: Iterable[object],
        acquired: object,
        stack: str = "",
    ) -> list[PotentialDeadlock]:
        """Record edges ``held -> acquired``; return any new cycles."""
        found: list[PotentialDeadlock] = []
        with self._lock:
            for src in held:
                if src == acquired:
                    continue
                existing = self._edges.setdefault(src, {})
                if acquired in existing:
                    continue
                # Adding src -> acquired closes a cycle iff acquired
                # already reaches src.
                path = self._path(acquired, src)
                existing[acquired] = stack
                if path is not None:
                    reverse_stack = ""
                    if len(path) >= 2:
                        reverse_stack = self._edges.get(path[0], {}).get(
                            path[1], ""
                        )
                    found.append(
                        PotentialDeadlock(
                            edge=(src, acquired),
                            cycle=path + [acquired],
                            stack=stack,
                            reverse_stack=reverse_stack,
                        )
                    )
            self.cycles.extend(found)
        return found

    def has_cycles(self) -> bool:
        """Whether any recorded acquisition closed a cycle."""
        with self._lock:
            return bool(self.cycles)


_order_graph = LockOrderGraph()


def order_graph() -> LockOrderGraph:
    """The process-wide lock-order graph (debug mode)."""
    return _order_graph


def _check_order(new_key: object, new_rank: int, stack: str) -> None:
    held = _held_keys()
    for key, rank in held:
        if rank > new_rank or (rank == new_rank and rank != CHUNK_LATCH_RANK):
            _record_violation(
                "LO01",
                f"lock order violation: acquiring {new_key!r} (rank "
                f"{new_rank}) while holding {key!r} (rank {rank}); the "
                "declared order is repro.discipline.LOCK_ORDER",
                stack=stack,
            )
    cycles = _order_graph.note([key for key, _ in held], new_key, stack)
    for cycle in cycles:
        _record_violation(
            "LO03",
            f"potential deadlock: lock-order cycle {cycle.cycle!r}",
            stack=cycle.stack,
            extra_stack=cycle.reverse_stack,
        )


# --------------------------------------------------------------------- #
# Chunk-latch tracking (driven by DebugChunkLatches)
# --------------------------------------------------------------------- #


def note_latch_request(
    key: object, mode: str, *, group: int, index: int
) -> None:
    """Order checks for a chunk-latch acquisition about to block.

    Runs *before* the acquire so a potential deadlock is reported even if
    the acquisition would actually deadlock.  Same-group nesting must be
    ascending by chunk index (check LO02); re-acquisition of a held latch
    is always an error (the latches are not reentrant).
    """
    stack = _stack()
    if key in _state.latches:
        _record_violation(
            "LO02",
            f"re-acquisition of held chunk latch {index} (latches are not "
            "reentrant)",
            stack=stack,
        )
    for level, held_group, held_index in _state.latches.values():
        if held_group == group and held_index >= index:
            _record_violation(
                "LO02",
                f"non-ascending chunk-latch acquisition: chunk {index} "
                f"requested while holding chunk {held_index}; multi-chunk "
                "latching must use acquire_write_many (ascending order)",
                stack=stack,
            )
    _check_order(key, CHUNK_LATCH_RANK, stack)


def note_latch_acquired(
    key: object, mode: str, *, group: int, index: int
) -> None:
    """Record a successfully acquired chunk latch in the thread state."""
    _state.latches[key] = (mode_level(mode), group, index)


def note_latch_released(key: object) -> None:
    """Drop a chunk latch from the thread state."""
    _state.latches.pop(key, None)


def assert_held(key: object, mode: str) -> None:
    """Assert the thread holds chunk latch ``key`` with at least ``mode``."""
    held = _state.latches.get(key)
    needed = mode_level(mode)
    if held is None or held[0] < needed:
        raise LatchDisciplineError(
            f"thread {threading.current_thread().name!r} does not hold "
            f"chunk latch {key!r} in {mode} mode"
        )


# --------------------------------------------------------------------- #
# Tracked named locks
# --------------------------------------------------------------------- #


class TrackedLock:
    """A named, order-checked wrapper over a :class:`threading.Lock`.

    Participates in the per-thread held set and the lock-order graph.
    Only constructed in debug mode (:func:`make_lock` returns a plain
    ``threading.Lock`` otherwise).  Reentrant variants wrap an ``RLock``
    and only note the outermost acquisition.
    """

    def __init__(self, name: str, *, reentrant: bool = False) -> None:
        self.name = name
        self.rank = lock_rank(name)
        self._reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        first = _state.locks.get(self.name, 0) == 0
        if first:
            _check_order(self.name, self.rank, _stack())
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            _state.locks[self.name] = _state.locks.get(self.name, 0) + 1
        return ok

    def release(self) -> None:
        count = _state.locks.get(self.name, 0)
        if count <= 1:
            _state.locks.pop(self.name, None)
        else:
            _state.locks[self.name] = count - 1
        self._inner.release()

    def locked(self) -> bool:
        """Mirror ``threading.Lock.locked`` where the inner lock has it."""
        inner_locked = getattr(self._inner, "locked", None)
        if inner_locked is None:
            return _state.locks.get(self.name, 0) > 0
        return inner_locked()

    def _is_owned(self) -> bool:
        # threading.Condition adopts this for its ownership checks, which
        # keeps its probe-acquire fallback (and the spurious order-graph
        # edges it would note) out of the picture.
        return _state.locks.get(self.name, 0) > 0

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def make_lock(name: str) -> "threading.Lock | TrackedLock":
    """A mutex for the declared order slot ``name`` (tracked in debug)."""
    if debug_enabled():
        return TrackedLock(name)
    return threading.Lock()


def make_rlock(name: str) -> "threading.RLock | TrackedLock":
    """A reentrant mutex for order slot ``name`` (tracked in debug)."""
    if debug_enabled():
        return TrackedLock(name, reentrant=True)
    return threading.RLock()


def make_condition(name: str) -> threading.Condition:
    """A condition variable whose lock fills order slot ``name``."""
    if debug_enabled():
        return threading.Condition(TrackedLock(name))
    return threading.Condition(threading.Lock())


# --------------------------------------------------------------------- #
# Entry-point annotations
# --------------------------------------------------------------------- #

#: Name -> latch mode registry populated by ``@requires_latch`` at import.
LATCH_REQUIREMENTS: dict[str, str] = {}

#: Name -> lock order name registry populated by ``@requires_lock``.
LOCK_REQUIREMENTS: dict[str, str] = {}


def wrap_requires_latch(fn: Callable, mode: str) -> Callable:
    """The debug wrapper :func:`requires_latch` applies (test-accessible).

    Eraser-lite ownership refinement: a chunk column touched only by its
    creating thread (standalone unit tests, a rebuild in progress on the
    reorganizer thread) is exempt -- no data can race.  The first call
    from a second thread marks the instance shared, and from then on
    every call must hold a chunk latch of at least ``mode``.  Calls with
    no receiver (free functions) are always enforced.
    """
    import functools

    needed = mode_level(mode)

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        receiver = args[0] if args else None
        if receiver is not None:
            ident = threading.get_ident()
            owner = getattr(receiver, "_repro_owner", None)
            if owner is None:
                try:
                    object.__setattr__(receiver, "_repro_owner", ident)
                    object.__setattr__(receiver, "_repro_shared", False)
                    owner = ident
                except AttributeError:
                    pass  # slotted receiver: strict check below
            if owner is not None and not getattr(
                receiver, "_repro_shared", True
            ):
                if ident == owner:
                    return fn(*args, **kwargs)
                object.__setattr__(receiver, "_repro_shared", True)
        if not holds_chunk_latch(mode):
            raise LatchDisciplineError(
                f"{fn.__qualname__} requires a {mode} chunk latch "
                f"(mode level {needed}); thread "
                f"{threading.current_thread().name!r} holds none"
            )
        return fn(*args, **kwargs)

    return wrapper


def requires_latch(mode: str) -> Callable[[Callable], Callable]:
    """Declare that a method must run under a chunk latch of ``mode``.

    The declaration is the contract the static latch-bracketing checker
    (LB01) enforces at every call site; in debug mode the method
    additionally asserts at runtime that the calling thread holds a chunk
    latch of at least the declared mode.  Disabled, the function is
    returned unchanged (zero call overhead).
    """
    mode_level(mode)  # validate eagerly

    def decorate(fn: Callable) -> Callable:
        LATCH_REQUIREMENTS[fn.__name__] = mode
        if not DEBUG_AT_IMPORT:
            return fn
        return wrap_requires_latch(fn, mode)

    return decorate


def wrap_requires_lock(fn: Callable, name: str) -> Callable:
    """The debug wrapper :func:`requires_lock` applies (test-accessible)."""
    import functools

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if not holds_lock(name):
            raise LatchDisciplineError(
                f"{fn.__qualname__} requires lock {name!r}; thread "
                f"{threading.current_thread().name!r} does not hold it"
            )
        return fn(*args, **kwargs)

    return wrapper


def requires_lock(name: str) -> Callable[[Callable], Callable]:
    """Declare that a method must run under the named tracked lock."""

    def decorate(fn: Callable) -> Callable:
        LOCK_REQUIREMENTS[fn.__name__] = name
        if not DEBUG_AT_IMPORT:
            return fn
        return wrap_requires_lock(fn, name)

    return decorate


def assert_latched(latches, chunk_index: int, mode: str) -> None:
    """Assert the calling thread holds ``chunk_index``'s latch (debug).

    ``latches`` is a :class:`~repro.storage.latches.ChunkLatches`.  A
    no-op unless the latch set was built in debug mode; raise
    :class:`LatchDisciplineError` on a missing or too-weak hold.
    """
    checker = getattr(latches, "assert_latched", None)
    if checker is not None:
        checker(chunk_index, mode)


# --------------------------------------------------------------------- #
# Eraser-lite guarded-state instrumentation
# --------------------------------------------------------------------- #


def instrument_guarded(cls, spec: dict[str, tuple[str, str]]):
    """Instrument ``cls`` so GUARDED_BY accesses are lockset-checked.

    Eraser-lite: every instance starts *unshared* (owned by its creating
    thread; ``__init__`` runs free).  The first access from a second
    thread marks it shared; from then on, rebinding a guarded attribute
    (and, for ``"rw"`` attributes, any read) without holding the declared
    lock records a GS-R violation.  Container mutations that never rebind
    the attribute are the static checker's job (GS01) -- this runtime pass
    catches the rebinding/reading side, which is exactly the Eraser
    lockset discipline at attribute granularity.
    """
    rw_attrs = frozenset(a for a, (_, mode) in spec.items() if mode == "rw")
    all_attrs = frozenset(spec)

    def _check(self, name: str, kind: str) -> None:
        try:
            owner = object.__getattribute__(self, "_repro_owner")
        except AttributeError:
            return  # mid-construction
        ident = threading.get_ident()
        if not object.__getattribute__(self, "_repro_shared"):
            if ident == owner:
                return
            object.__setattr__(self, "_repro_shared", True)
        lock_name = spec[name][0]
        if lock_name.startswith("chunk_latch"):
            _, _, mode = lock_name.partition(":")
            if holds_chunk_latch(mode or "shared"):
                return
        elif holds_lock(lock_name):
            return
        _record_violation(
            "GS-R",
            f"lockset violation: {kind} of {cls.__name__}.{name} without "
            f"holding {lock_name!r} (object shared across threads)",
            stack=_stack(),
        )

    original_init = cls.__init__
    original_setattr = cls.__setattr__
    original_getattribute = cls.__getattribute__

    def __init__(self, *args, **kwargs):
        object.__setattr__(self, "_repro_owner", threading.get_ident())
        object.__setattr__(self, "_repro_shared", False)
        original_init(self, *args, **kwargs)

    def __setattr__(self, name, value):
        if name in all_attrs:
            _check(self, name, "write")
        original_setattr(self, name, value)

    def __getattribute__(self, name):
        if name in rw_attrs:
            _check(self, name, "read")
        return original_getattribute(self, name)

    cls.__init__ = __init__
    cls.__setattr__ = __setattr__
    cls.__getattribute__ = __getattribute__
    return cls


def guarded_class(cls):
    """Apply Eraser-lite instrumentation when debug mode is on at import.

    Disabled (the default), the class is returned unchanged -- the
    instrumentation compiles out entirely.
    """
    spec = GUARDED_BY.get(cls.__name__)
    if not DEBUG_AT_IMPORT or not spec:
        return cls
    return instrument_guarded(cls, spec)
