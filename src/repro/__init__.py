"""repro: a reproduction of "Optimal Column Layout for Hybrid Workloads".

The package reimplements Casper (Athanassoulis, Bogh, Idreos; PVLDB 12(13),
2019) in Python: an in-memory partitioned columnar storage engine with ghost
values, the Frequency Model and cost model that describe how a workload
touches a column chunk, an exact layout optimizer (with the paper's BIP
formulation available for cross-validation), workload generators for the HAP
benchmark, and a benchmark harness that regenerates every figure of the
paper's evaluation.

Quickstart
----------
>>> from repro import CasperPlanner, HAPConfig, StorageEngine, make_workload
>>> from repro.workload.hap import build_table
>>> config = HAPConfig(num_rows=16_384, chunk_size=16_384, block_values=256)
>>> sample = make_workload("hybrid_skewed", config, num_operations=500)
>>> planner = CasperPlanner(sample_workload=sample, block_values=256)
>>> table = build_table(config, planner.build_chunk)
>>> engine = StorageEngine(table)
>>> engine.insert(12345).kind
'insert'
"""

from .api import (
    AdaptivePolicy,
    Database,
    ExecutionPolicy,
    ReorgAction,
    ReorgDecision,
    ReorgPolicy,
    Reorganizer,
    SerialPolicy,
    Session,
    SessionReport,
    SessionResult,
    VectorizedPolicy,
)
from .core import (
    CasperPlanner,
    ChunkPlan,
    CostModel,
    FrequencyModel,
    LayoutSolution,
    PartitioningResult,
    SLAConstraints,
    SolverBackend,
    learn_from_distributions,
    learn_from_workload,
    optimize_layout,
    solve_bip,
    solve_dp,
    solve_greedy,
)
from .storage import (
    AccessCounter,
    CostConstants,
    DEFAULT_BLOCK_VALUES,
    DEFAULT_COST_CONSTANTS,
    DeltaStoreColumn,
    LayoutKind,
    LayoutSpec,
    PartitionedColumn,
    StorageEngine,
    Table,
    build_column,
    layout_chunk_builder,
)
from .workload import (
    HAPConfig,
    TPCHConfig,
    Workload,
    WorkloadGenerator,
    WorkloadMix,
    figure1_workload,
    make_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AccessCounter",
    "AdaptivePolicy",
    "CasperPlanner",
    "ChunkPlan",
    "CostConstants",
    "CostModel",
    "Database",
    "DEFAULT_BLOCK_VALUES",
    "DEFAULT_COST_CONSTANTS",
    "DeltaStoreColumn",
    "ExecutionPolicy",
    "FrequencyModel",
    "HAPConfig",
    "LayoutKind",
    "LayoutSolution",
    "LayoutSpec",
    "PartitionedColumn",
    "PartitioningResult",
    "ReorgAction",
    "ReorgDecision",
    "ReorgPolicy",
    "Reorganizer",
    "SLAConstraints",
    "SerialPolicy",
    "Session",
    "SessionReport",
    "SessionResult",
    "SolverBackend",
    "StorageEngine",
    "TPCHConfig",
    "VectorizedPolicy",
    "Table",
    "Workload",
    "WorkloadGenerator",
    "WorkloadMix",
    "build_column",
    "figure1_workload",
    "layout_chunk_builder",
    "learn_from_distributions",
    "learn_from_workload",
    "make_workload",
    "optimize_layout",
    "solve_bip",
    "solve_dp",
    "solve_greedy",
    "__version__",
]
