"""Checkpoint GC vs. live cursors: the delete-under-cursor race.

Before the retention floor existed, ``DurabilityManager.checkpoint``
deleted every WAL segment covered by the oldest kept snapshot -- which is
exactly the history a follower that bootstrapped from an *older* snapshot
still needs.  These tests pin the fix from both sides: a registered pin
(or the ``keep_segments`` fallback) keeps the cursor's segments alive
through repeated checkpoints, and an unprotected laggard fails loudly
with :class:`RetentionGapError` instead of silently serving a hole.
"""

import numpy as np
import pytest

from repro.api import Database
from repro.durability.manager import DurabilityConfig
from repro.durability.wal import segment_first_lsn
from repro.replication import Follower, Primary, RetentionGapError
from repro.workload.operations import MultiInsert


def payload_for(keys):
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys % 7, (keys * 3) % 11], axis=1)


def canonical(table):
    out = []
    for key in np.sort(table.scan()).tolist():
        for row in table.point_query(key):
            out.append((key, row.payload["a"], row.payload["b"]))
    return sorted(out)


def make_db(root, **config_kwargs):
    initial = np.arange(0, 100, 2, dtype=np.int64)
    return Database.from_rows(
        initial,
        payload_for(initial),
        chunk_size=32,
        payload_names=("a", "b"),
        durability=DurabilityConfig(root=root, **config_kwargs),
    )


def churn(db, start_key, rounds=3, batches=2):
    """``rounds`` x (ingest + checkpoint): each round rotates a segment
    and, with ``keep_snapshots=1``, makes every older one GC-eligible."""
    key = start_key
    for _ in range(rounds):
        for _ in range(batches):
            keys = tuple(key + 2 * i for i in range(10))
            key += 20
            db.engine.execute_batch(
                [MultiInsert(keys, tuple(map(tuple, payload_for(keys).tolist())))]
            )
        db.checkpoint()
    return key


class TestDeleteUnderCursorRegression:
    def test_pinned_cursor_survives_aggressive_checkpointing(self, tmp_path):
        db = make_db(tmp_path, keep_snapshots=1)
        primary = Primary(db.durability)
        # The follower bootstraps from the baseline snapshot (lsn 0) and
        # registers, but does not poll while the primary churns through
        # rotations -- the historical race window.
        follower = Follower(tmp_path, primary=primary, follower_id="lagger")
        churn(db, 1_000_001)
        # Every segment above the pin survived: the oldest surviving
        # segment still starts at the cursor's next record.
        segments = db.durability.segments()
        assert segment_first_lsn(segments[0]) == 1
        follower.catch_up()
        assert canonical(follower.table) == canonical(db.table)
        assert follower.applied_lsn == db.durability.durable_lsn
        follower.close()
        db.close()

    def test_released_pin_lets_gc_reclaim_the_history(self, tmp_path):
        db = make_db(tmp_path, keep_snapshots=1)
        primary = Primary(db.durability)
        follower = Follower(tmp_path, primary=primary, follower_id="lagger")
        key = churn(db, 1_000_001)
        follower.close()  # releases the pin
        churn(db, key, rounds=1)
        segments = db.durability.segments()
        assert segment_first_lsn(segments[0]) > 1  # history reclaimed
        db.close()

    def test_unpinned_laggard_fails_loudly_not_silently(self, tmp_path):
        db = make_db(tmp_path, keep_snapshots=1)
        # No primary endpoint: nothing pins retention for this follower.
        follower = Follower(tmp_path)
        churn(db, 1_000_001)
        with pytest.raises(RetentionGapError, match="re-bootstrap"):
            follower.catch_up()
        # Re-bootstrapping from the latest snapshot is the advertised
        # recovery: the fresh follower needs only surviving segments.
        rebooted = Follower(tmp_path)
        rebooted.catch_up()
        assert canonical(rebooted.table) == canonical(db.table)
        db.close()

    def test_keep_segments_fallback_covers_unregistered_followers(self, tmp_path):
        db = make_db(tmp_path, keep_snapshots=1, keep_segments=8)
        follower = Follower(tmp_path)  # never pins
        churn(db, 1_000_001)
        follower.catch_up()
        assert canonical(follower.table) == canonical(db.table)
        db.close()

    def test_pin_advances_with_the_cursor(self, tmp_path):
        db = make_db(tmp_path, keep_snapshots=1)
        primary = Primary(db.durability)
        follower = Follower(tmp_path, primary=primary, follower_id="f")
        key = churn(db, 1_000_001, rounds=2)
        follower.catch_up()
        assert db.durability.pins() == {"f": follower.applied_lsn}
        # With the pin advanced, the next checkpoint may reclaim the
        # now-covered history.
        churn(db, key, rounds=1)
        assert segment_first_lsn(db.durability.segments()[0]) > 1
        follower.close()
        db.close()

    def test_reconnect_repins_on_a_restarted_primary(self, tmp_path):
        db = make_db(tmp_path, keep_snapshots=1)
        follower = Follower(tmp_path, primary=Primary(db.durability), follower_id="f")
        key = churn(db, 1_000_001, rounds=1)
        follower.catch_up()
        db.close()
        # Primary restarts: its manager has no pins until the follower
        # re-announces itself.
        db2 = Database.open(DurabilityConfig(root=tmp_path, keep_snapshots=1))
        assert db2.durability.pins() == {}
        follower.reconnect(Primary(db2.durability))
        assert db2.durability.pins() == {"f": follower.applied_lsn}
        churn(db2, key, rounds=2)
        follower.catch_up()
        assert canonical(follower.table) == canonical(db2.table)
        follower.close()
        db2.close()
