"""Property tests: the follower is oracle-equal at every watermark.

The harness drives a random mixed workload on a durable primary while a
follower tails it, checking after **every** watermark exchange that the
replica equals the oracle prefix at the follower's applied LSN.  Crashes
of the primary are injected at the durability layer's named fault points
(reuse of :class:`FaultInjector`, both kill and power-loss flavors); the
follower must stay consistent *through* the crash -- polling a dead
primary's directory, then reconnecting to the reopened incarnation whose
recovery may have truncated and re-written the un-synced tail under the
same LSNs.  Follower "crashes" are modeled exactly as the real thing: the
process state vanishes and a fresh follower re-bootstraps from the latest
snapshot, which must be idempotent over the records the dead one had
already applied.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.database import Database
from repro.durability.faults import CRASH_POINTS, FaultInjector, InjectedCrash
from repro.durability.manager import DurabilityConfig
from repro.replication import Follower, Primary
from repro.workload.operations import (
    MultiDelete,
    MultiInsert,
    MultiUpdate,
    RangeQuery,
)

OP_KINDS = ("insert", "delete", "update", "read")

#: Batches of (op kind, choice index); the index picks delete/update
#: victims from the live key set, so specs stay valid whatever state
#: earlier batches left behind.
BATCH_SPECS = st.lists(
    st.lists(
        st.tuples(st.sampled_from(OP_KINDS), st.integers(0, 99)),
        min_size=1,
        max_size=3,
    ),
    min_size=2,
    max_size=6,
)


def payload_for(keys):
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys % 7, (keys * 3) % 11], axis=1)


def canonical_model(model):
    return sorted((key, a, b) for key, (a, b) in model.items())


def canonical_table(table):
    out = []
    for key in np.sort(table.scan()).tolist():
        for row in table.point_query(key):
            out.append((key, row.payload["a"], row.payload["b"]))
    return sorted(out)


def build_batch(spec_batch, model, next_key):
    """Materialize one batch of operations plus its post-state (fresh
    keys are odd and monotonic, so they never collide)."""
    scratch = dict(model)
    ops = []
    for kind, idx in spec_batch:
        if kind == "insert":
            keys = [next_key[0] + 2 * i for i in range(3)]
            next_key[0] += 6
            rows = payload_for(keys).tolist()
            ops.append(MultiInsert(tuple(keys), tuple(map(tuple, rows))))
            for key, row in zip(keys, rows, strict=True):
                scratch[key] = tuple(row)
        elif kind == "delete":
            live = sorted(scratch)
            key = live[idx % len(live)] if live else 10**9
            ops.append(MultiDelete((key,)))
            scratch.pop(key, None)
        elif kind == "update":
            live = sorted(scratch)
            old = live[idx % len(live)] if live else 10**9
            new = next_key[0]
            next_key[0] += 2
            ops.append(MultiUpdate(((old, new),)))
            if old in scratch:
                scratch[new] = scratch.pop(old)
        else:
            ops.append(RangeQuery(0, 1 << 40))
    return ops, scratch


def make_primary(root, faults=None):
    config = DurabilityConfig(root=root, faults=faults, retry_backoff_s=0.0)
    initial = np.arange(0, 100, 2, dtype=np.int64)
    db = Database.from_rows(
        initial,
        payload_for(initial),
        chunk_size=32,
        payload_names=("a", "b"),
        durability=config,
    )
    model = {
        int(key): tuple(row)
        for key, row in zip(
            initial.tolist(), payload_for(initial).tolist(), strict=True
        )
    }
    return db, model


def assert_at_watermark(follower, models):
    """The one property everything else exists for: after an exchange,
    the replica equals the primary's committed prefix at the applied
    watermark -- never a partial batch, never an un-durable record."""
    applied = follower.applied_lsn
    assert applied in models, f"applied lsn {applied} has no oracle state"
    assert canonical_table(follower.table) == canonical_model(models[applied])


class TestOracleEquality:
    @settings(max_examples=12, deadline=None)
    @given(spec=BATCH_SPECS, checkpoint_at=st.integers(0, 4))
    def test_every_exchanged_watermark_matches_the_oracle(
        self, spec, checkpoint_at
    ):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            db, model = make_primary(root)
            models = {0: model}
            next_key = [1_000_001]
            follower = Follower(
                root, primary=Primary(db.durability), follower_id="f"
            )
            assert_at_watermark(follower, models)
            for i, spec_batch in enumerate(spec):
                if i == checkpoint_at:
                    db.checkpoint()  # rotation handoff mid-stream
                ops, model = build_batch(spec_batch, model, next_key)
                db.engine.execute_batch(ops)
                models[db.durability.last_lsn] = model
                follower.catch_up()
                # fsync="always": every acked batch is durable, so the
                # follower must reach the head at every exchange.
                assert follower.applied_lsn == db.durability.durable_lsn
                assert follower.caught_up
                assert_at_watermark(follower, models)
            follower.table.check_invariants()
            follower.close()
            db.close()

    @settings(max_examples=10, deadline=None)
    @given(
        spec=BATCH_SPECS,
        crash_point=st.sampled_from(CRASH_POINTS),
        power_loss=st.booleans(),
        offset=st.integers(1, 3),
    )
    def test_consistent_through_primary_crash_and_restart(
        self, spec, crash_point, power_loss, offset
    ):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            faults = FaultInjector(power_loss=power_loss)
            db, model = make_primary(root, faults=faults)
            models = {0: model}
            next_key = [1_000_001]
            follower = Follower(
                root, primary=Primary(db.durability), follower_id="f"
            )
            # Arm only after the baseline snapshot has landed.
            faults.crash_at = crash_point
            faults.crash_hit = faults.hits[crash_point] + offset

            acked_lsn = 0
            crashed = False
            for i, spec_batch in enumerate(spec):
                if i == 1:
                    try:
                        db.checkpoint()
                    except InjectedCrash:
                        crashed = True
                        break
                ops, new_model = build_batch(spec_batch, model, next_key)
                try:
                    db.engine.execute_batch(ops)
                except InjectedCrash:
                    # The in-flight record (at acked_lsn + 1, if it landed
                    # at all) may or may not survive; recovery's last_lsn
                    # will tell.  Read-only batches never reach the WAL,
                    # so a crash here implies the batch wrote.
                    models[acked_lsn + 1] = new_model
                    crashed = True
                    break
                model = new_model
                acked_lsn = db.durability.last_lsn
                models[acked_lsn] = model
                follower.catch_up()
                assert_at_watermark(follower, models)

            # The follower outlives the crash: it may keep polling the
            # dead primary's directory (the endpoint's watermarks are the
            # last synced state) and must stay on a committed prefix.
            follower.catch_up()
            assert follower.applied_lsn <= db.durability.durable_lsn
            assert_at_watermark(follower, models)

            # Primary restarts.  Recovery may truncate the un-synced tail
            # (power loss) -- the next incarnation then re-appends
            # different records under the same LSNs, which is exactly what
            # the durable gate protects the follower against.
            if crashed:
                db2 = Database.open(root)
                model = dict(models[db2.recovery.last_lsn])
                follower.reconnect(Primary(db2.durability))
                for spec_batch in spec[:2]:
                    ops, model = build_batch(spec_batch, model, next_key)
                    db2.engine.execute_batch(ops)
                    models[db2.durability.last_lsn] = model
                    follower.catch_up()
                    assert follower.applied_lsn == db2.durability.durable_lsn
                    assert_at_watermark(follower, models)
                db2.close()
            follower.table.check_invariants()
            follower.close()


class TestFollowerRestart:
    @settings(max_examples=10, deadline=None)
    @given(
        spec=BATCH_SPECS,
        restart_after=st.integers(0, 4),
        checkpoint_at=st.integers(0, 4),
    )
    def test_retailing_after_follower_restart_is_idempotent(
        self, spec, restart_after, checkpoint_at
    ):
        """Killing a follower loses nothing but its process state: a
        fresh bootstrap lands on the same oracle prefix the dead one
        served, wherever in the stream (and relative to snapshots) the
        restart happens."""
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            db, model = make_primary(root)
            models = {0: model}
            next_key = [1_000_001]
            primary = Primary(db.durability)
            follower = Follower(root, primary=primary, follower_id="f")
            for i, spec_batch in enumerate(spec):
                if i == checkpoint_at:
                    db.checkpoint()
                ops, model = build_batch(spec_batch, model, next_key)
                db.engine.execute_batch(ops)
                models[db.durability.last_lsn] = model
                if i == restart_after:
                    # Abrupt death: no close(), no pin release -- the
                    # replacement re-registers under the same id, and its
                    # re-pin (possibly *backward*, to its bootstrap
                    # snapshot) supersedes the stale one.
                    follower = Follower(root, primary=primary, follower_id="f")
                    assert_at_watermark(follower, models)
                follower.catch_up()
                assert follower.applied_lsn == db.durability.durable_lsn
                assert_at_watermark(follower, models)
            follower.table.check_invariants()
            assert db.durability.pins() == {"f": follower.applied_lsn}
            follower.close()
            db.close()
