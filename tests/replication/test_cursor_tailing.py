"""Tailing-safe segment scans: the byte-offset cursor over a growing file.

These tests drive :func:`scan_segment` the way a follower does -- repeated
incremental scans of one segment from the last good offset -- and pin down
the tail classification that makes polling safe: a *short* tail (append in
flight) resumes, a *corrupt* tail (CRC / LSN-order failure) does not heal
with more bytes, and neither is confused with a clean end-of-segment.
"""

import pytest

from repro.durability.errors import WalCorruptionError
from repro.durability.wal import (
    MAGIC,
    frame_record,
    scan_segment,
    segment_name,
)


def write_segment(tmp_path, frames, *, name=None, magic=MAGIC):
    path = tmp_path / (name or segment_name(1))
    path.write_bytes(magic + b"".join(frames))
    return path


BODIES = [b"alpha", b"bravo-bravo", b"charlie"]
FRAMES = [frame_record(lsn, body) for lsn, body in enumerate(BODIES, start=1)]


class TestCleanScans:
    def test_full_scan_returns_absolute_record_ends(self, tmp_path):
        path = write_segment(tmp_path, FRAMES)
        scan = scan_segment(path)
        assert [lsn for lsn, _ in scan.records] == [1, 2, 3]
        assert [body for _, body in scan.records] == BODIES
        assert scan.tail_status == "clean"
        assert not scan.torn
        expected = len(MAGIC)
        ends = []
        for frame in FRAMES:
            expected += len(frame)
            ends.append(expected)
        assert list(scan.ends) == ends
        assert scan.valid_bytes == scan.file_bytes == ends[-1]

    def test_resume_from_a_record_end_yields_the_suffix(self, tmp_path):
        path = write_segment(tmp_path, FRAMES)
        first = scan_segment(path)
        scan = scan_segment(
            path, start_offset=first.ends[0], previous_lsn=first.records[0][0]
        )
        assert [lsn for lsn, _ in scan.records] == [2, 3]
        assert list(scan.ends) == list(first.ends[1:])

    def test_resume_at_eof_is_clean_and_empty(self, tmp_path):
        path = write_segment(tmp_path, FRAMES)
        first = scan_segment(path)
        scan = scan_segment(path, start_offset=first.ends[-1], previous_lsn=3)
        assert scan.records == []
        assert scan.tail_status == "clean"
        assert scan.resume_offset == first.ends[-1]


class TestShortTails:
    @pytest.mark.parametrize("cut", [1, 8, 15, -1])
    def test_incomplete_final_frame_is_short_not_corrupt(self, tmp_path, cut):
        partial = FRAMES[2][:cut]
        path = write_segment(tmp_path, [FRAMES[0], FRAMES[1], partial])
        scan = scan_segment(path)
        assert [lsn for lsn, _ in scan.records] == [1, 2]
        assert scan.tail_status == "short"
        assert scan.torn
        assert scan.resume_offset == len(MAGIC) + len(FRAMES[0]) + len(FRAMES[1])

    def test_short_tail_heals_when_the_bytes_arrive(self, tmp_path):
        path = write_segment(tmp_path, [FRAMES[0], FRAMES[1][:7]])
        scan = scan_segment(path)
        assert scan.tail_status == "short"
        with open(path, "ab") as handle:
            handle.write(FRAMES[1][7:])
        resumed = scan_segment(
            path, start_offset=scan.resume_offset, previous_lsn=1
        )
        assert resumed.records == [(2, BODIES[1])]
        assert resumed.tail_status == "clean"

    def test_growing_file_polled_record_by_record(self, tmp_path):
        """The follower's poll loop in miniature: write one frame, scan
        the delta, repeat -- never re-reading from the segment start."""
        path = tmp_path / segment_name(1)
        path.write_bytes(MAGIC)
        offset, previous = len(MAGIC), 0
        seen = []
        for frame in FRAMES:
            with open(path, "ab") as handle:
                handle.write(frame)
            scan = scan_segment(path, start_offset=offset, previous_lsn=previous)
            assert scan.tail_status == "clean"
            seen.extend(scan.records)
            offset = scan.resume_offset
            previous = scan.records[-1][0]
        assert seen == list(zip([1, 2, 3], BODIES))


class TestCorruptTails:
    def test_crc_failure_is_corrupt_not_short(self, tmp_path):
        damaged = bytearray(FRAMES[1])
        damaged[-1] ^= 0xFF
        path = write_segment(tmp_path, [FRAMES[0], bytes(damaged)])
        scan = scan_segment(path)
        assert scan.records == [(1, BODIES[0])]
        assert scan.tail_status == "corrupt"
        assert scan.torn

    def test_lsn_regression_is_corrupt(self, tmp_path):
        path = write_segment(tmp_path, [FRAMES[0], FRAMES[0]])
        scan = scan_segment(path)
        assert [lsn for lsn, _ in scan.records] == [1]
        assert scan.tail_status == "corrupt"

    def test_monotonicity_carries_across_resumed_scans(self, tmp_path):
        # Record 3 alone is CRC-valid; only the previous_lsn seed from the
        # earlier scan reveals that record 2 is missing in between.
        path = write_segment(tmp_path, [FRAMES[0], FRAMES[2]])
        first = scan_segment(path, start_offset=len(MAGIC))
        assert first.tail_status == "corrupt"
        resumed = scan_segment(path, start_offset=first.resume_offset, previous_lsn=1)
        assert resumed.records == []
        assert resumed.tail_status == "corrupt"

    def test_valid_in_isolation_when_unseeded(self, tmp_path):
        # Without a previous_lsn seed the first scanned record is trusted:
        # that is what lets a cursor resume mid-segment and at a fresh
        # segment whose first LSN only the name knows.
        path = write_segment(tmp_path, [FRAMES[0], FRAMES[2]])
        scan = scan_segment(
            path, start_offset=len(MAGIC) + len(FRAMES[0]), previous_lsn=0
        )
        assert scan.records == [(3, BODIES[2])]
        assert scan.tail_status == "clean"


class TestStructuralErrors:
    def test_bad_magic_raises(self, tmp_path):
        path = write_segment(tmp_path, [FRAMES[0]], magic=b"NOTAWAL!")
        with pytest.raises(WalCorruptionError, match="magic"):
            scan_segment(path)

    def test_offset_inside_magic_raises(self, tmp_path):
        path = write_segment(tmp_path, [FRAMES[0]])
        with pytest.raises(WalCorruptionError, match="inside the magic"):
            scan_segment(path, start_offset=3)
