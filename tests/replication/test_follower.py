"""Follower lifecycle: bootstrap, catch-up, handoff, sessions, transport."""

import threading
import time

import numpy as np
import pytest

from repro.api import Database, FollowerSession, VectorizedPolicy
from repro.api.reorg import ReorgPolicy
from repro.durability.errors import ReadOnlyError
from repro.replication import (
    Follower,
    Primary,
    PrimaryServer,
    RemotePrimary,
    TransportError,
)
from repro.workload.operations import (
    Insert,
    MultiDelete,
    MultiInsert,
    MultiPointQuery,
    PointQuery,
    RangeQuery,
    Update,
)


def payload_for(keys):
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys % 7, (keys * 3) % 11], axis=1)


def canonical(table):
    out = []
    for key in np.sort(table.scan()).tolist():
        for row in table.point_query(key):
            out.append((key, row.payload["a"], row.payload["b"]))
    return sorted(out)


def make_primary(root, **config_kwargs):
    initial = np.arange(0, 200, 2, dtype=np.int64)
    db = Database.from_rows(
        initial,
        payload_for(initial),
        chunk_size=64,
        payload_names=("a", "b"),
        durability=root if not config_kwargs else None,
    )
    if config_kwargs:
        from repro.durability.manager import DurabilityConfig

        db._attach_durability(
            DurabilityConfig(root=root, **config_kwargs), layout_spec=None
        )
    return db, Primary(db.durability)


def ingest(db, start_key, batches=3, rows=20):
    """Append ``batches`` insert batches; returns the next fresh key."""
    key = start_key
    for _ in range(batches):
        keys = tuple(key + 2 * i for i in range(rows))
        key += 2 * rows
        db.engine.execute_batch(
            [MultiInsert(keys, tuple(map(tuple, payload_for(keys).tolist())))]
        )
    return key


class TestBootstrapAndCatchUp:
    def test_follower_matches_primary_after_catch_up(self, tmp_path):
        db, primary = make_primary(tmp_path)
        ingest(db, 1_000_001)
        with Follower(tmp_path, primary=primary) as follower:
            applied = follower.catch_up()
            assert applied == 3
            assert canonical(follower.table) == canonical(db.table)
            assert follower.caught_up
            assert follower.applied_lsn == db.durability.durable_lsn
            assert follower.batches_applied == 3
            assert follower.operations_applied == 60
            follower.table.check_invariants()
        db.close()

    def test_bootstrap_from_later_snapshot_skips_replayed_history(self, tmp_path):
        db, primary = make_primary(tmp_path)
        ingest(db, 1_000_001)
        db.checkpoint()
        next_key = ingest(db, 2_000_001, batches=2)
        with Follower(tmp_path, primary=primary) as follower:
            assert follower.snapshot_lsn == 3
            assert follower.catch_up() == 2  # only the post-snapshot records
            assert canonical(follower.table) == canonical(db.table)
            # Keep tailing across a further rotation.
            db.checkpoint()
            ingest(db, next_key, batches=2)
            follower.catch_up()
            assert canonical(follower.table) == canonical(db.table)
        db.close()

    def test_empty_directory_refuses_bootstrap(self, tmp_path):
        from repro.replication import ReplicationError

        with pytest.raises(ReplicationError, match="snapshot"):
            Follower(tmp_path)

    def test_offline_tailing_without_an_endpoint(self, tmp_path):
        # A dead primary's directory: no watermarks to exchange, every
        # CRC-valid record is applied.
        db, _ = make_primary(tmp_path)
        ingest(db, 1_000_001)
        expected = canonical(db.table)
        db.close()
        with Follower(tmp_path) as follower:
            follower.catch_up()
            assert canonical(follower.table) == expected
            assert follower.caught_up
            assert follower.target_lsn == 3

    def test_durable_gate_withholds_unsynced_records(self, tmp_path):
        db, primary = make_primary(tmp_path, fsync="os")
        ingest(db, 1_000_001, batches=2)
        assert db.durability.durable_lsn == 0  # appended, nothing fsynced
        with Follower(tmp_path, primary=primary) as follower:
            assert follower.catch_up() == 0
            assert follower.applied_lsn == 0
            db.sync()
            assert follower.catch_up() == 2
            assert canonical(follower.table) == canonical(db.table)
        db.close()


class TestTransactionalReplication:
    """Atomic transaction commit records replicate whole or not at all."""

    def make_transactional_primary(self, root):
        initial = np.arange(0, 200, 2, dtype=np.int64)
        db = Database.from_rows(
            initial,
            payload_for(initial),
            chunk_size=64,
            payload_names=("a", "b"),
            durability=root,
            enable_transactions=True,
        )
        return db, Primary(db.durability)

    def test_commit_applies_whole_and_aborts_ship_nothing(self, tmp_path):
        db, primary = self.make_transactional_primary(tmp_path)
        engine = db.engine
        txn = engine.begin_transaction()
        engine.transactional_insert(txn, 1_000_001, (3, 4))
        engine.transactional_delete(txn, 0)
        engine.transactional_update(txn, 2, 1_000_003)
        engine.commit(txn)
        with Follower(tmp_path, primary=primary) as follower:
            # The whole write set is one atomic WAL record, applied as
            # one unit under the replica lock: one batch, oracle-equal.
            assert follower.catch_up() == 1
            assert canonical(follower.table) == canonical(db.table)
            # Aborts log nothing, so there is nothing to ship.
            txn = engine.begin_transaction()
            engine.transactional_insert(txn, 1_000_005, (1, 2))
            engine.abort(txn)
            assert follower.catch_up() == 0
            assert canonical(follower.table) == canonical(db.table)
            # The follower stays oracle-equal at the next watermark too.
            txn = engine.begin_transaction()
            engine.transactional_delete(txn, 4)
            engine.transactional_insert(txn, 1_000_007, (5, 6))
            engine.commit(txn)
            assert follower.catch_up() == 1
            assert canonical(follower.table) == canonical(db.table)
            follower.table.check_invariants()
        db.close()


class TestFollowerSession:
    def test_follow_database_serves_reads_at_the_watermark(self, tmp_path):
        db, primary = make_primary(tmp_path)
        ingest(db, 1_000_001, batches=1, rows=5)
        fdb = Database.follow(tmp_path, primary=primary, start=False)
        with fdb.session(execution=VectorizedPolicy(batch_size=8)) as session:
            assert isinstance(session, FollowerSession)
            outcome = session.execute(
                [
                    PointQuery(1_000_001),
                    MultiPointQuery((0, 2, 4)),
                    RangeQuery(0, 100),
                ]
            )
            assert outcome.results[0] is not None
            assert outcome.errors == 0
            assert session.applied_lsn == 1
            assert session.caught_up and session.lag_lsn == 0
        fdb.close()
        db.close()

    def test_writes_are_refused_up_front(self, tmp_path):
        db, primary = make_primary(tmp_path)
        fdb = Database.follow(tmp_path, primary=primary, start=False)
        rows_before = fdb.num_rows
        with fdb.session() as session:
            for op in (Insert(999_999), Update(0, 999_999), MultiDelete((0,))):
                with pytest.raises(ReadOnlyError, match="read-only"):
                    session.execute([PointQuery(0), op])
            assert fdb.num_rows == rows_before  # nothing partially applied
        fdb.close()
        db.close()

    def test_reorg_is_rejected_on_follower_databases(self, tmp_path):
        db, primary = make_primary(tmp_path)
        fdb = Database.follow(tmp_path, primary=primary, start=False)
        with pytest.raises(ValueError, match="reorganize"):
            fdb.session(reorg=ReorgPolicy())
        fdb.close()
        db.close()

    def test_lag_introspection_and_refresh(self, tmp_path):
        db, primary = make_primary(tmp_path)
        ingest(db, 1_000_001, batches=4)
        fdb = Database.follow(
            tmp_path, primary=primary, start=False, catch_up=False
        )
        with fdb.session() as session:
            # Registration alone learned the durable watermark; nothing
            # has been applied yet.
            assert session.lag_lsn == 4
            assert not session.caught_up
            assert session.refresh() == 4
            assert session.lag_lsn == 0
            assert session.caught_up
        fdb.close()
        db.close()

    def test_close_releases_the_pin(self, tmp_path):
        db, primary = make_primary(tmp_path)
        fdb = Database.follow(
            tmp_path, primary=primary, follower_id="f1", start=False
        )
        assert db.durability.pins() == {"f1": 0}
        fdb.close()
        assert db.durability.pins() == {}
        db.close()


class TestTransport:
    def test_remote_follower_over_the_socket(self, tmp_path):
        db, primary = make_primary(tmp_path)
        ingest(db, 1_000_001)
        with PrimaryServer(primary) as server:
            remote = RemotePrimary(server.address)
            with Follower(tmp_path, primary=remote, follower_id="remote") as f:
                f.catch_up()
                assert canonical(f.table) == canonical(db.table)
                assert db.durability.pins() == {"remote": f.applied_lsn}
            assert db.durability.pins() == {}
        db.close()

    def test_malformed_frames_get_error_replies_not_crashes(self, tmp_path):
        import socket

        from repro.replication.transport import recv_frame, send_frame

        db, primary = make_primary(tmp_path)
        with PrimaryServer(primary) as server:
            with socket.create_connection(server.address, timeout=5) as sock:
                send_frame(sock, {"verb": "detonate", "follower": "x"})
                reply = recv_frame(sock)
                assert reply["ok"] is False and "bad request" in reply["error"]
                # The connection survives a bad verb.
                send_frame(sock, {"verb": "exchange", "follower": "x", "applied_lsn": 0})
                assert recv_frame(sock)["ok"] is True
        db.close()

    def test_remote_primary_surfaces_rejections(self, tmp_path):
        db, primary = make_primary(tmp_path)
        with PrimaryServer(primary) as server:
            remote = RemotePrimary(server.address)
            with pytest.raises(TransportError, match="rejected"):
                remote._request({"verb": "nope", "follower": "x"})
            remote.close()
        db.close()

    def test_remote_primary_reconnects_after_a_drop(self, tmp_path):
        db, primary = make_primary(tmp_path)
        with PrimaryServer(primary) as server:
            remote = RemotePrimary(server.address)
            remote.exchange("f", 0)
            remote._sock.close()  # simulate a dropped connection
            assert remote.exchange("f", 1).durable_lsn == db.durability.durable_lsn
            remote.close()
        db.close()


class TestThreadedTailing:
    @pytest.mark.concurrency
    def test_background_tailer_with_concurrent_replica_reads(
        self, tmp_path, tight_switch_interval
    ):
        db, primary = make_primary(tmp_path)
        fdb = Database.follow(tmp_path, primary=primary, poll_interval=0.002)
        stop = threading.Event()
        failures = []

        def read_loop():
            with fdb.session(execution=VectorizedPolicy(batch_size=16)) as s:
                while not stop.is_set():
                    outcome = s.execute(
                        [MultiPointQuery(tuple(range(0, 64, 2))), RangeQuery(0, 10**9)]
                    )
                    if outcome.errors:
                        failures.append(outcome.errors)

        readers = [threading.Thread(target=read_loop) for _ in range(2)]
        for reader in readers:
            reader.start()
        try:
            key = 1_000_001
            for round_no in range(6):
                key = ingest(db, key, batches=2, rows=16)
                if round_no == 3:
                    db.checkpoint()  # rotation handoff while tailing
            target = db.durability.durable_lsn
            deadline = time.time() + 10
            while time.time() < deadline and fdb.follower.applied_lsn < target:
                time.sleep(0.005)
        finally:
            stop.set()
            for reader in readers:
                reader.join()
        assert not failures
        assert fdb.follower.caught_up
        assert fdb.follower.applied_lsn == db.durability.durable_lsn
        assert canonical(fdb.table) == canonical(db.table)
        fdb.table.check_invariants()
        fdb.close()
        db.close()
