"""Tests for the layout solvers: exact DP, BIP (scipy/HiGHS) and greedy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bip_solver import solve_bip
from repro.core.cost_model import CostModel
from repro.core.dp_solver import PartitioningResult, brute_force, solve_dp
from repro.core.frequency_model import FrequencyModel
from repro.core.greedy_solver import solve_greedy
from repro.storage.cost_accounting import CostConstants


def random_model(rng, n, *, read_heavy=False, write_heavy=False):
    model = FrequencyModel(n)
    for name in ("pq", "rs", "sc", "re", "de", "in", "udf", "utf", "udb", "utb"):
        model.histograms[name][:] = rng.integers(0, 20, n)
    if read_heavy:
        model.ins[:] = 0
        model.de[:] = 0
    if write_heavy:
        model.pq[:] = 0
        model.rs[:] = 0
        model.sc[:] = 0
        model.re[:] = 0
    return model


def cost_model(model):
    return CostModel(model, CostConstants(random_read=10, random_write=10, seq_read=3, seq_write=3))


class TestDPSolver:
    def test_read_only_workload_yields_fine_partitions(self):
        model = FrequencyModel(16)
        model.pq[:] = 5
        result = solve_dp(cost_model(model))
        assert result.num_partitions == 16

    def test_insert_only_workload_yields_single_partition(self):
        model = FrequencyModel(16)
        model.ins[:] = 5
        result = solve_dp(cost_model(model))
        assert result.num_partitions == 1

    def test_result_structure(self):
        model = FrequencyModel(8)
        model.pq[:] = 1
        result = solve_dp(cost_model(model))
        assert isinstance(result, PartitioningResult)
        assert result.vector[-1]
        assert result.boundary_blocks[-1] == 8
        assert result.partition_widths().sum() == 8
        assert result.solve_seconds >= 0

    def test_cost_matches_cost_model(self):
        rng = np.random.default_rng(5)
        model = random_model(rng, 20)
        cm = cost_model(model)
        result = solve_dp(cm)
        assert result.cost == pytest.approx(cm.total_cost(result.vector))

    def test_max_partition_blocks_respected(self):
        model = FrequencyModel(16)
        model.ins[:] = 5  # wants one big partition
        result = solve_dp(cost_model(model), max_partition_blocks=4)
        assert result.partition_widths().max() <= 4

    def test_max_partitions_respected(self):
        model = FrequencyModel(16)
        model.pq[:] = 5  # wants 16 partitions
        result = solve_dp(cost_model(model), max_partitions=3)
        assert result.num_partitions <= 3

    def test_joint_constraints(self):
        model = FrequencyModel(12)
        model.pq[:] = 1
        result = solve_dp(cost_model(model), max_partitions=4, max_partition_blocks=4)
        assert result.num_partitions <= 4
        assert result.partition_widths().max() <= 4

    def test_infeasible_constraints_rejected(self):
        model = FrequencyModel(16)
        with pytest.raises(ValueError):
            solve_dp(cost_model(model), max_partitions=2, max_partition_blocks=2)

    def test_invalid_constraint_values(self):
        model = FrequencyModel(8)
        with pytest.raises(ValueError):
            solve_dp(cost_model(model), max_partitions=0)
        with pytest.raises(ValueError):
            solve_dp(cost_model(model), max_partition_blocks=0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000), n=st.integers(2, 11))
    def test_dp_matches_brute_force(self, seed, n):
        rng = np.random.default_rng(seed)
        cm = cost_model(random_model(rng, n))
        assert solve_dp(cm).cost == pytest.approx(brute_force(cm).cost)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100_000), n=st.integers(4, 10))
    def test_constrained_dp_matches_brute_force(self, seed, n):
        rng = np.random.default_rng(seed)
        cm = cost_model(random_model(rng, n))
        half = max(2, (n + 1) // 2)
        kwargs = dict(max_partitions=half, max_partition_blocks=half)
        assert solve_dp(cm, **kwargs).cost == pytest.approx(brute_force(cm, **kwargs).cost)


class TestBIPSolver:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100_000), n=st.integers(2, 10))
    def test_bip_matches_dp(self, seed, n):
        rng = np.random.default_rng(seed)
        cm = cost_model(random_model(rng, n))
        assert solve_bip(cm).cost == pytest.approx(solve_dp(cm).cost)

    def test_bip_with_sla_bounds(self):
        rng = np.random.default_rng(1)
        cm = cost_model(random_model(rng, 8, read_heavy=True))
        dp = solve_dp(cm, max_partitions=3, max_partition_blocks=4)
        bip = solve_bip(cm, max_partitions=3, max_partition_blocks=4)
        assert bip.cost == pytest.approx(dp.cost)
        assert bip.num_partitions <= 3

    def test_bip_rejects_large_instances(self):
        cm = cost_model(FrequencyModel(128))
        with pytest.raises(ValueError):
            solve_bip(cm)


class TestGreedySolver:
    def test_greedy_is_feasible_and_not_much_worse_than_dp(self):
        rng = np.random.default_rng(11)
        cm = cost_model(random_model(rng, 24))
        greedy = solve_greedy(cm)
        optimal = solve_dp(cm)
        assert greedy.vector[-1]
        assert greedy.cost >= optimal.cost - 1e-6
        assert greedy.cost <= optimal.cost * 1.5

    def test_greedy_respects_constraints(self):
        rng = np.random.default_rng(13)
        cm = cost_model(random_model(rng, 16, read_heavy=True))
        result = solve_greedy(cm, max_partitions=4, max_partition_blocks=8)
        assert result.num_partitions <= 4
        assert result.partition_widths().max() <= 8


class TestBruteForce:
    def test_rejects_large_instances(self):
        cm = cost_model(FrequencyModel(25))
        with pytest.raises(ValueError):
            brute_force(cm)
