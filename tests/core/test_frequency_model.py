"""Tests for the Frequency Model and its learning paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency_model import (
    HISTOGRAM_NAMES,
    BlockMapper,
    FrequencyModel,
    learn_from_distributions,
    learn_from_workload,
)
from repro.workload.operations import (
    Delete,
    Insert,
    PointQuery,
    RangeQuery,
    Update,
    Workload,
)


class TestFrequencyModel:
    def test_all_histograms_initialized(self):
        model = FrequencyModel(16)
        assert set(model.histograms) == set(HISTOGRAM_NAMES)
        for histogram in model.histograms.values():
            assert histogram.shape == (16,)
            assert histogram.sum() == 0

    def test_invalid_block_count(self):
        with pytest.raises(ValueError):
            FrequencyModel(0)

    def test_invalid_histogram_shape(self):
        with pytest.raises(ValueError):
            FrequencyModel(4, {"pq": np.zeros(3)})

    def test_record_point_query(self):
        model = FrequencyModel(8)
        model.record_point_query(3)
        assert model.pq[3] == 1

    def test_record_point_query_clamped(self):
        model = FrequencyModel(8)
        model.record_point_query(100)
        model.record_point_query(-5)
        assert model.pq[7] == 1
        assert model.pq[0] == 1

    def test_record_range_query_paper_example(self):
        # Fig. 7b: a range starting in block 1, scanning 2-3, ending in 4.
        model = FrequencyModel(8)
        model.record_range_query(1, 4)
        assert model.rs[1] == 1
        assert model.sc[2] == 1 and model.sc[3] == 1
        assert model.re[4] == 1

    def test_record_range_query_single_block(self):
        model = FrequencyModel(8)
        model.record_range_query(2, 2)
        assert model.rs[2] == 1
        assert model.re.sum() == 0
        assert model.sc.sum() == 0

    def test_record_update_forward_and_backward(self):
        # Fig. 7f/7g: 3 -> 16 is a forward ripple, 55 -> 17 a backward one.
        model = FrequencyModel(8)
        model.record_update(0, 3)
        model.record_update(5, 3)
        assert model.udf[0] == 1 and model.utf[3] == 1
        assert model.udb[5] == 1 and model.utb[3] == 1

    def test_record_insert_and_delete(self):
        model = FrequencyModel(8)
        model.record_insert(3)
        model.record_delete(5)
        assert model.ins[3] == 1
        assert model.de[5] == 1

    def test_total_operations(self):
        model = FrequencyModel(8)
        model.record_point_query(0)
        model.record_range_query(1, 3)
        model.record_insert(2)
        model.record_delete(2)
        model.record_update(1, 5)
        assert model.total_operations() == 5

    def test_copy_is_independent(self):
        model = FrequencyModel(8)
        model.record_insert(1)
        clone = model.copy()
        clone.record_insert(1)
        assert model.ins[1] == 1
        assert clone.ins[1] == 2

    def test_scaled(self):
        model = FrequencyModel(4)
        model.record_point_query(1)
        assert model.scaled(3.0).pq[1] == 3.0

    def test_merged(self):
        first, second = FrequencyModel(4), FrequencyModel(4)
        first.record_insert(0)
        second.record_insert(0)
        assert first.merged(second).ins[0] == 2
        with pytest.raises(ValueError):
            first.merged(FrequencyModel(8))

    def test_coarsened_preserves_mass(self):
        model = FrequencyModel(10)
        model.pq[:] = np.arange(10)
        coarse = model.coarsened(3)
        assert coarse.num_blocks == 4
        assert coarse.pq.sum() == model.pq.sum()

    def test_coarsened_factor_one_is_copy(self):
        model = FrequencyModel(10)
        assert model.coarsened(1).num_blocks == 10
        with pytest.raises(ValueError):
            model.coarsened(0)


class TestBlockMapper:
    def test_block_of_maps_sorted_positions(self):
        values = np.arange(0, 200, 2)
        mapper = BlockMapper(values, block_values=10)
        assert mapper.num_blocks == 10
        assert mapper.block_of(0) == 0
        assert mapper.block_of(21) == 1
        assert mapper.block_of(198) == 9
        assert mapper.block_of(10_000) == 9

    def test_block_range(self):
        values = np.arange(0, 200, 2)
        mapper = BlockMapper(values, block_values=10)
        assert mapper.block_range(0, 18) == (0, 0)
        assert mapper.block_range(0, 58) == (0, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockMapper(np.asarray([3, 1]), 4)
        with pytest.raises(ValueError):
            BlockMapper(np.empty(0), 4)
        with pytest.raises(ValueError):
            BlockMapper(np.arange(4), 0)


class TestLearnFromWorkload:
    def test_counts_match_operations(self):
        values = np.arange(0, 2_000, 2)
        workload = Workload(
            operations=[
                PointQuery(key=100),
                PointQuery(key=1_500),
                RangeQuery(low=0, high=500),
                Insert(key=777),
                Delete(key=200),
                Update(old_key=100, new_key=1_999),
            ]
        )
        model = learn_from_workload(workload, values, block_values=100)
        assert model.pq.sum() == 2
        assert model.rs.sum() == 1
        assert model.ins.sum() == 1
        assert model.de.sum() == 1
        assert model.udf.sum() + model.udb.sum() == 1

    def test_skewed_accesses_land_in_skewed_blocks(self):
        values = np.arange(0, 2_000, 2)
        workload = Workload(
            operations=[PointQuery(key=1_900 + 2 * i) for i in range(20)]
        )
        model = learn_from_workload(workload, values, block_values=100)
        assert model.pq[-1] == 20
        assert model.pq[:-1].sum() == 0

    def test_rejects_unknown_operation(self):
        values = np.arange(10)
        with pytest.raises(TypeError):
            learn_from_workload(Workload(operations=["bogus"]), values, block_values=2)


class TestLearnFromDistributions:
    def test_histograms_assigned(self):
        model = learn_from_distributions(
            4,
            point_queries=np.asarray([1.0, 2.0, 3.0, 4.0]),
            inserts=np.asarray([4.0, 3.0, 2.0, 1.0]),
            updates_from=np.asarray([1.0, 1.0, 1.0, 1.0]),
            updates_to=np.asarray([2.0, 0.0, 0.0, 2.0]),
        )
        assert model.pq.tolist() == [1, 2, 3, 4]
        assert model.ins.tolist() == [4, 3, 2, 1]
        # Updates are split between forward and backward ripples.
        assert (model.udf + model.udb).tolist() == [1, 1, 1, 1]
        assert (model.utf + model.utb).tolist() == [2, 0, 0, 2]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            learn_from_distributions(4, point_queries=np.ones(3))
