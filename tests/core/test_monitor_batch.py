"""Property tests: batched observation is equivalent to per-op observation.

The monitor's ``observe_batch`` is the hot-path ingest (one vectorized
attribution pass per access record); ``observe`` and ``observe_workload``
are thin wrappers over it.  These tests pin the contract the engine relies
on:

* per-chunk **counts** are byte-identical between per-operation dispatch
  (``engine.execute`` one op at a time) and batched dispatch
  (``engine.execute_batch``), including the per-element expansion of the
  ``Multi*`` forms and duplicate runs straddling chunk boundaries;
* the bounded **samples** retain identical sliding windows -- runs keep
  submission order within a record, and paired update records interleave
  source_i/target_i exactly as per-pair dispatch does, so the windows
  agree element-for-element even when a run overflows the sample limit;
* single-record logs ingested via ``observe_batch`` match element-wise
  ``observe`` calls exactly, truncation included.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import WorkloadMonitor
from repro.storage.access_log import AccessLog
from repro.storage.engine import StorageEngine
from repro.storage.errors import ValueNotFoundError
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import Table, layout_chunk_builder
from repro.workload.operations import (
    Delete,
    Insert,
    MultiDelete,
    MultiInsert,
    MultiPointQuery,
    MultiRangeCount,
    MultiUpdate,
    PointQuery,
    RangeQuery,
    Update,
)

KEY_DOMAIN = 64


def keys_strategy():
    """Key multisets with duplicate runs likely to straddle chunk bounds."""
    return st.lists(
        st.integers(min_value=0, max_value=KEY_DOMAIN),
        min_size=8,
        max_size=48,
    )


def operations_strategy():
    key = st.integers(min_value=0, max_value=KEY_DOMAIN)
    bounds = st.tuples(key, key).map(lambda p: (min(p), max(p)))
    point = st.builds(PointQuery, key=key)
    range_query = bounds.map(lambda p: RangeQuery(low=p[0], high=p[1]))
    insert = st.builds(Insert, key=key)
    delete = st.builds(Delete, key=key)
    update = st.builds(Update, old_key=key, new_key=key)
    multi_point = st.lists(key, min_size=0, max_size=6).map(
        lambda ks: MultiPointQuery(keys=tuple(ks))
    )
    multi_range = st.lists(bounds, min_size=0, max_size=4).map(
        lambda bs: MultiRangeCount(bounds=tuple(bs))
    )
    multi_insert = st.lists(key, min_size=0, max_size=6).map(
        lambda ks: MultiInsert(keys=tuple(ks))
    )
    multi_delete = st.lists(key, min_size=0, max_size=6).map(
        lambda ks: MultiDelete(keys=tuple(ks))
    )
    multi_update = st.lists(
        st.tuples(key, key), min_size=0, max_size=4
    ).map(lambda ps: MultiUpdate(pairs=tuple(ps)))
    return st.lists(
        st.one_of(
            point,
            range_query,
            insert,
            delete,
            update,
            multi_point,
            multi_range,
            multi_insert,
            multi_delete,
            multi_update,
        ),
        min_size=1,
        max_size=24,
    )


def make_table(table_keys) -> Table:
    spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=4, block_values=8)
    # A small chunk size forces several chunks and lets duplicate runs in
    # the drawn key multiset straddle the chunk boundaries.
    return Table(
        np.asarray(table_keys, dtype=np.int64),
        chunk_size=8,
        chunk_builder=layout_chunk_builder(spec),
        block_values=8,
    )


def run_per_op(table_keys, operations, sample_limit):
    monitor = WorkloadMonitor(sample_limit=sample_limit)
    engine = StorageEngine(make_table(table_keys), monitor=monitor)
    for operation in operations:
        try:
            engine.execute(operation)
        except ValueNotFoundError:
            pass
    return monitor


def run_batched(table_keys, operations, sample_limit):
    monitor = WorkloadMonitor(sample_limit=sample_limit)
    engine = StorageEngine(make_table(table_keys), monitor=monitor)
    engine.execute_batch(operations)
    return monitor


def counts_by_chunk(monitor):
    return {
        chunk: monitor.operation_counts(chunk)
        for chunk in monitor.observed_chunks()
    }


def sample_sequences(monitor):
    return {
        chunk: monitor.recorded_workload(chunk).operations
        for chunk in monitor.observed_chunks()
    }


class TestEngineDispatchEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(table_keys=keys_strategy(), operations=operations_strategy())
    def test_counts_identical_per_op_vs_batched(self, table_keys, operations):
        per_op = run_per_op(table_keys, operations, sample_limit=4_096)
        batched = run_batched(table_keys, operations, sample_limit=4_096)
        assert counts_by_chunk(per_op) == counts_by_chunk(batched)

    @settings(max_examples=60, deadline=None)
    @given(table_keys=keys_strategy(), operations=operations_strategy())
    def test_samples_identical_per_op_vs_batched(self, table_keys, operations):
        # Records preserve submission order and paired update records
        # interleave source/target per pair, so the retained windows agree
        # element-for-element between the two dispatch paths.
        per_op = run_per_op(table_keys, operations, sample_limit=4_096)
        batched = run_batched(table_keys, operations, sample_limit=4_096)
        assert sample_sequences(per_op) == sample_sequences(batched)

    @settings(max_examples=40, deadline=None)
    @given(
        table_keys=keys_strategy(),
        operations=operations_strategy(),
        limit=st.integers(min_value=0, max_value=7),
    )
    def test_truncated_samples_match(self, table_keys, operations, limit):
        # Sliding-window truncation keeps the same most-recent entries on
        # both paths, so even tiny limits yield identical windows.
        per_op = run_per_op(table_keys, operations, sample_limit=limit)
        batched = run_batched(table_keys, operations, sample_limit=limit)
        assert counts_by_chunk(per_op) == counts_by_chunk(batched)
        assert sample_sequences(per_op) == sample_sequences(batched)
        for chunk in per_op.observed_chunks():
            assert len(per_op.recorded_workload(chunk)) <= limit

    @settings(max_examples=60, deadline=None)
    @given(table_keys=keys_strategy(), operations=operations_strategy())
    def test_observe_workload_matches_batched_dispatch(
        self, table_keys, operations
    ):
        # Offline seeding must attribute exactly what executing the same
        # workload through the batch executor would (write ops mutate the
        # table but never its routing fences, so attribution agrees).
        batched = run_batched(table_keys, operations, sample_limit=512)
        seeded = WorkloadMonitor(sample_limit=512)
        seeded.observe_workload(make_table(table_keys), operations)
        assert counts_by_chunk(seeded) == counts_by_chunk(batched)


class TestSingleRecordEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        table_keys=keys_strategy(),
        record_keys=st.lists(
            st.integers(min_value=0, max_value=KEY_DOMAIN),
            min_size=1,
            max_size=20,
        ),
        kind=st.sampled_from(
            ["point_query", "insert", "delete", "update_source", "update_target"]
        ),
        limit=st.integers(min_value=0, max_value=8),
    )
    def test_point_record_matches_elementwise_observe(
        self, table_keys, record_keys, kind, limit
    ):
        table = make_table(table_keys)
        per_op = WorkloadMonitor(sample_limit=limit)
        for key in record_keys:
            per_op.observe(table, kind, key)
        batched = WorkloadMonitor(sample_limit=limit)
        log = AccessLog()
        log.record(kind, record_keys)
        batched.observe_batch(table, log)
        assert counts_by_chunk(per_op) == counts_by_chunk(batched)
        for chunk in per_op.observed_chunks():
            # Single-kind records preserve submission order, so the
            # retained windows are identical sequences, truncation and all.
            assert (
                per_op.recorded_workload(chunk).operations
                == batched.recorded_workload(chunk).operations
            )

    @settings(max_examples=40, deadline=None)
    @given(
        table_keys=keys_strategy(),
        record_bounds=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=KEY_DOMAIN),
                st.integers(min_value=0, max_value=KEY_DOMAIN),
            ).map(lambda p: (min(p), max(p))),
            min_size=1,
            max_size=12,
        ),
        kind=st.sampled_from(["range_count", "range_sum"]),
        limit=st.integers(min_value=0, max_value=8),
    )
    def test_range_record_matches_elementwise_observe(
        self, table_keys, record_bounds, kind, limit
    ):
        table = make_table(table_keys)
        per_op = WorkloadMonitor(sample_limit=limit)
        for low, high in record_bounds:
            per_op.observe(table, kind, low, high)
        batched = WorkloadMonitor(sample_limit=limit)
        log = AccessLog()
        log.record(
            kind,
            [low for low, _ in record_bounds],
            [high for _, high in record_bounds],
        )
        batched.observe_batch(table, log)
        assert counts_by_chunk(per_op) == counts_by_chunk(batched)
        for chunk in per_op.observed_chunks():
            assert (
                per_op.recorded_workload(chunk).operations
                == batched.recorded_workload(chunk).operations
            )


@pytest.mark.concurrency
class TestConcurrentFlush:
    """Two writer threads flushing one monitor.

    The monitor's ingest lock serializes whole-record ingestion, so (a) no
    count update is lost to a racing increment, (b) each record's entries
    stay contiguous and in submission order inside the shared ring buffer,
    and (c) the paired-update source_i/target_i interleave survives even
    when truncation replaces the window mid-stress -- the regression the
    concurrent-flush fix targets.
    """

    @staticmethod
    def _single_chunk_table() -> Table:
        # One chunk: every key attributes to chunk 0, so both threads
        # contend on one ChunkActivity (the worst case for the window).
        spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=4, block_values=8)
        return Table(
            np.arange(0, 64, 2, dtype=np.int64),
            chunk_size=1_024,
            chunk_builder=layout_chunk_builder(spec),
            block_values=8,
        )

    @staticmethod
    def _flush_point_records(monitor, table, keys_per_record, records, barrier):
        barrier.wait(timeout=30.0)
        for record_keys in keys_per_record[:records]:
            log = AccessLog()
            log.record("point_query", record_keys)
            monitor.observe_batch(table, log)

    def test_counts_exact_with_two_writer_threads(self, tight_switch_interval):
        table = self._single_chunk_table()
        monitor = WorkloadMonitor(sample_limit=64)
        records, width = 40, 8
        streams = [
            [[100 * t + i for i in range(width)] for _ in range(records)]
            for t in (1, 2)
        ]
        barrier = threading.Barrier(2)
        threads = [
            threading.Thread(
                target=self._flush_point_records,
                args=(monitor, table, stream, records, barrier),
            )
            for stream in streams
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        counts = monitor.operation_counts(0)
        assert counts == {"point_query": 2 * records * width}

    def test_sequence_equality_per_thread_with_two_writers(
        self, tight_switch_interval
    ):
        # Disjoint key ranges per thread: filtering the shared window by
        # origin must reproduce each thread's exact submission sequence --
        # the same sequence-equality contract the single-threaded property
        # tests pin, now under concurrent flushes (no truncation here, so
        # nothing may be lost either).
        table = self._single_chunk_table()
        monitor = WorkloadMonitor(sample_limit=4_096)
        records, width = 30, 8
        streams = [
            [
                [1_000 * t + r * width + i for i in range(width)]
                for r in range(records)
            ]
            for t in (1, 2)
        ]
        barrier = threading.Barrier(2)
        threads = [
            threading.Thread(
                target=self._flush_point_records,
                args=(monitor, table, stream, records, barrier),
            )
            for stream in streams
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        window = [op.key for op in monitor.recorded_workload(0).operations]
        assert len(window) == 2 * records * width
        for t, stream in zip((1, 2), streams):
            submitted = [key for record in stream for key in record]
            observed = [key for key in window if key // 1_000 == t]
            assert observed == submitted

    def test_paired_update_interleave_survives_truncation(
        self, tight_switch_interval
    ):
        # Each thread flushes one paired update record whose interleaved
        # source/target entries exceed the window; after both land, the
        # retained window must be a clean suffix of one thread's interleave
        # -- never a torn mix of half-written entries.
        table = self._single_chunk_table()
        limit = 7
        pairs = 8

        def interleave(base: int) -> list[tuple[int, int]]:
            ops = []
            for i in range(pairs):
                source, target = base + i, base + 500 + i
                ops.append((source, source))
                ops.append((target, target))
            return ops

        expectations = []
        for base in (1_000, 3_000):
            expectations.append(interleave(base)[-limit:])

        monitor = WorkloadMonitor(sample_limit=limit)
        barrier = threading.Barrier(2)

        def flush(base: int) -> None:
            barrier.wait(timeout=30.0)
            log = AccessLog()
            log.record(
                "update",
                [base + i for i in range(pairs)],
                [base + 500 + i for i in range(pairs)],
            )
            monitor.observe_batch(table, log)

        threads = [
            threading.Thread(target=flush, args=(base,))
            for base in (1_000, 3_000)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        window = [
            (op.old_key, op.new_key)
            for op in monitor.recorded_workload(0).operations
        ]
        assert window in expectations, (
            "truncated window must be one record's clean interleave suffix"
        )
        counts = monitor.operation_counts(0)
        assert counts == {
            "update_source": 2 * pairs,
            "update_target": 2 * pairs,
        }
